//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this in-tree crate
//! replaces `serde` with a small value-tree design covering what the
//! workspace uses: `#[derive(Serialize, Deserialize)]` on structs and
//! enums (including `#[serde(default)]`, `#[serde(transparent)]` and
//! `#[serde(from/into)]` container attributes), plus impls for the
//! primitive, `String`, `Vec`, `Option` and small-tuple types.
//!
//! [`Serialize`] lowers a value into a [`Value`] tree; `serde_json`
//! renders that tree as text and parses text back into it for
//! [`Deserialize`]. Object fields keep declaration order so output is
//! stable and human-diffable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An in-memory JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; the `Vec` preserves insertion (declaration) order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object fields, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field by name in an object's field list.
///
/// Used by the derive-generated code; lookup is linear, matching the
/// small structs the workspace serialises.
pub fn find_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialisation/deserialisation error: a plain message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Error for a field absent from the input (and without a default).
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// Error for an enum variant name not in the expected set.
    pub fn unknown_variant(got: &str, expected: &[&str]) -> Self {
        Error(format!(
            "unknown variant `{got}`, expected one of {}",
            expected
                .iter()
                .map(|v| format!("`{v}`"))
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }

    /// Error for a value of the wrong JSON type.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error(format!(
            "invalid type: expected {expected}, found {}",
            got.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can lower itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A value that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the
    /// tree and the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("boolean", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(Error::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::invalid_type("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::invalid_type("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_decoding() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(usize::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(i32::from_value(&Value::I64(-4)).unwrap(), -4);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn unknown_variant_message_names_the_variant() {
        let e = Error::unknown_variant("Quantum", &["Spectral", "MaxFlow"]);
        let msg = e.to_string();
        assert!(msg.contains("Quantum") && msg.contains("variant"));
    }
}
