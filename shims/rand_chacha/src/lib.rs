//! Offline shim for `rand_chacha`: a ChaCha8-based deterministic
//! generator implementing the shim `rand` traits. The keystream is a
//! faithful ChaCha8 block function, so streams are high quality and
//! reproducible across platforms, which is what the workspace's seeded
//! experiments need.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha8 deterministic random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u64; 8],
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            state[i] = state[i].wrapping_add(input[i]);
        }
        for i in 0..8 {
            self.buffer[i] = (state[2 * i] as u64) | ((state[2 * i + 1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index >= 8 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            key[i] = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 8],
            index: 8, // force refill on first draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let xs: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let first = xs[0];
        assert!(xs.iter().any(|&x| x != first));
    }
}
