//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! without `syn`/`quote`: the input `TokenStream` is walked directly
//! and the generated impls are assembled as source strings. Supported
//! shapes — everything this workspace derives on:
//!
//! - structs with named fields (`#[serde(default)]` per field);
//! - tuple structs (single-field ones serialise as their inner value,
//!   which also covers `#[serde(transparent)]` newtypes);
//! - enums with unit variants (serialised as the variant-name string)
//!   and single-payload variants (externally tagged:
//!   `{"Variant": value}`);
//! - the `#[serde(from = "T", into = "T")]` container attributes.
//!
//! Generics are intentionally unsupported and rejected with a clear
//! panic, as no derived type in the workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    has_default: bool,
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
    transparent: bool,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

/// Container-level `#[serde(...)]` switches found while skipping
/// attributes.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    transparent: bool,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consumes leading attributes starting at `i`, returning any serde
/// switches they carried and the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (SerdeAttrs, usize) {
    let mut attrs = SerdeAttrs::default();
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        let TokenTree::Group(g) = &tokens[i + 1] else {
            panic!("expected [..] after # in attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(args.stream(), &mut attrs);
            }
        }
        i += 2;
    }
    (attrs, i)
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let name = id.to_string();
                // `name = "literal"` or a bare switch
                if i + 2 < toks.len() && is_punct(&toks[i + 1], '=') {
                    let lit = toks[i + 2].to_string();
                    let ty = lit.trim_matches('"').to_string();
                    match name.as_str() {
                        "from" => attrs.from_ty = Some(ty),
                        "into" => attrs.into_ty = Some(ty),
                        other => panic!("unsupported serde attribute `{other} = ...`"),
                    }
                    i += 3;
                } else {
                    match name.as_str() {
                        "default" => attrs.default = true,
                        "transparent" => attrs.transparent = true,
                        other => panic!("unsupported serde attribute `{other}`"),
                    }
                    i += 1;
                }
            }
            t if is_punct(t, ',') => i += 1,
            other => panic!("unexpected token in serde attribute: {other}"),
        }
    }
}

/// Advances past one type, honouring `<...>` nesting, stopping at a
/// top-level comma (or end of tokens). Returns the index of that comma
/// or `tokens.len()`.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            t if is_punct(t, '<') => angle += 1,
            t if is_punct(t, '>') => angle = angle.saturating_sub(1),
            t if is_punct(t, ',') && angle == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (container_attrs, mut i) = skip_attrs(&tokens, 0);

    // visibility
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive input is neither struct nor enum at {}", tokens[i]);
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("shim serde_derive does not support generic types ({name})");
    }

    let kind = if is_enum {
        let TokenTree::Group(body) = &tokens[i] else {
            panic!("expected enum body for {name}");
        };
        Kind::Enum(parse_variants(body.stream()))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => Kind::Unit,
            other => panic!("unexpected struct body for {name}: {other:?}"),
        }
    };

    Item {
        name,
        kind,
        transparent: container_attrs.transparent,
        from_ty: container_attrs.from_ty,
        into_ty: container_attrs.into_ty,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, next) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        if is_ident(&tokens[i], "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "expected `:` after field {fname}"
        );
        i = skip_type(&tokens, i + 1);
        i += 1; // past the comma (or off the end)
        fields.push(Field {
            name: fname,
            has_default: attrs.default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // each element may start with attributes or a visibility marker
        let (_, next) = skip_attrs(&tokens, i);
        i = next;
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        i = skip_type(&tokens, i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, next) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut has_payload = false;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                match g.delimiter() {
                    Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        assert!(
                            n == 1,
                            "shim serde_derive supports exactly one payload field, variant {vname} has {n}"
                        );
                        has_payload = true;
                        i += 1;
                    }
                    Delimiter::Brace => {
                        panic!("shim serde_derive does not support struct variants ({vname})")
                    }
                    _ => {}
                }
            }
        }
        // skip to the comma separating variants (covers `= discr`)
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant {
            name: vname,
            has_payload,
        });
    }
    variants
}

// ---- code generation -------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into_ty {
        format!(
            "let repr: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&repr)"
        )
    } else {
        match &item.kind {
            Kind::Named(fields) => {
                if item.transparent {
                    assert!(fields.len() == 1, "transparent needs exactly one field");
                    format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
                } else {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                                n = f.name
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
            }
            Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::Tuple(n) => {
                let entries: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", entries.join(", "))
            }
            Kind::Unit => format!("::serde::Value::Str(\"{name}\".to_string())"),
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        if v.has_payload {
                            format!(
                                "{name}::{v}(inner) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(inner))]),",
                                v = v.name
                            )
                        } else {
                            format!(
                                "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                                v = v.name
                            )
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.from_ty {
        format!(
            "let repr: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
             Ok(::core::convert::From::from(repr))"
        )
    } else {
        match &item.kind {
            Kind::Named(fields) => {
                if item.transparent {
                    assert!(fields.len() == 1, "transparent needs exactly one field");
                    format!(
                        "Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
                        f = fields[0].name
                    )
                } else {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let fallback = if f.has_default {
                                "::core::default::Default::default()".to_string()
                            } else {
                                format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
                            };
                            format!(
                                "{n}: match ::serde::find_field(fields, \"{n}\") {{\n\
                                     Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                     None => {fallback},\n\
                                 }},",
                                n = f.name
                            )
                        })
                        .collect();
                    format!(
                        "let fields = v.as_object().ok_or_else(|| ::serde::Error::invalid_type(\"object\", v))?;\n\
                         Ok({name} {{\n{}\n}})",
                        inits.join("\n")
                    )
                }
            }
            Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
            Kind::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::Error::invalid_type(\"array\", v))?;\n\
                     if items.len() != {n} {{\n\
                         return Err(::serde::Error::custom(\"wrong tuple length\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Kind::Unit => format!(
                "match v {{\n\
                     ::serde::Value::Str(s) if s == \"{name}\" => Ok({name}),\n\
                     other => Err(::serde::Error::invalid_type(\"unit struct string\", other)),\n\
                 }}"
            ),
            Kind::Enum(variants) => {
                let expected: Vec<String> =
                    variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| !v.has_payload)
                    .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                    .collect();
                let payload_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| v.has_payload)
                    .map(|v| {
                        format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),",
                            v = v.name
                        )
                    })
                    .collect();
                format!(
                    "const EXPECTED: &[&str] = &[{expected}];\n\
                     match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => Err(::serde::Error::unknown_variant(other, EXPECTED)),\n\
                         }},\n\
                         ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                             let (tag, payload) = &fields[0];\n\
                             match tag.as_str() {{\n\
                                 {payload_arms}\n\
                                 other => Err(::serde::Error::unknown_variant(other, EXPECTED)),\n\
                             }}\n\
                         }}\n\
                         other => Err(::serde::Error::invalid_type(\"enum variant\", other)),\n\
                     }}",
                    expected = expected.join(", "),
                    unit_arms = unit_arms.join("\n"),
                    payload_arms = payload_arms.join("\n"),
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
