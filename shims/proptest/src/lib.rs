//! Offline shim for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use, with two deliberate simplifications:
//!
//! - **deterministic seeding** — each test derives its RNG seed from
//!   the test name, so failures reproduce exactly on every run;
//! - **no shrinking** — a failing case reports the assertion directly
//!   rather than a minimised input.
//!
//! Supported surface: `proptest! { fn name(x in strategy) { .. } }`
//! with an optional `#![proptest_config(..)]` header, range strategies
//! over primitives, strategy tuples, `Just`, `any::<bool>()`,
//! `collection::vec`, `prop_map`/`prop_flat_map`, `prop_oneof!`, and
//! the `prop_assert*` macros.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The deterministic RNG driving generation.

    /// A splitmix64-based generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator whose stream is a pure function of
        /// `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value and
        /// draws from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from at least one arm.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Boxes a strategy for use as a [`Union`] arm (used by
    /// [`prop_oneof!`](crate::prop_oneof) so arm types unify).
    pub fn boxed_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod arbitrary {
    //! Canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, reachable through
    /// [`any`](crate::arbitrary::any).
    pub trait Arbitrary {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: a fair coin.
    #[derive(Debug, Clone, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open element-count range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy producing vectors of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Each case runs in a Result-returning closure so test
                // bodies can `return Ok(())` to accept a case early,
                // matching upstream proptest.
                #[allow(clippy::redundant_closure_call)]
                let case: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = case {
                    panic!("property case failed: {msg}");
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn flat_map_and_vec_compose(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_picks_only_listed_values(c in prop_oneof![Just('a'), Just('b')]) {
            prop_assert!(c == 'a' || c == 'b');
        }
    }
}
