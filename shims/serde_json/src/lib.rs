//! Offline shim for `serde_json`.
//!
//! Parses JSON text into the shim [`serde::Value`] tree and prints the
//! tree back out (compact or pretty, two-space indent). Floats are
//! written with Rust's shortest round-tripping formatter, so
//! `from_str(&to_string(x))` reproduces every finite `f64` exactly.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A parse or conversion error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Deserialises a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem or shape
/// mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

/// Serialises `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for the value shapes this shim produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value shapes this shim produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // keep integral floats recognisable as numbers (they
                // re-parse as integers, which Deserialize widens back)
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("expected a JSON keyword"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(mag).map(|m| -m) {
                        return Ok(Value::I64(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(3)),
            ("b".to_string(), Value::F64(1.5)),
            (
                "c".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".to_string(), Value::Str("x \"y\"\nz".to_string())),
            ("e".to_string(), Value::I64(-7)),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -2.5e17] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{ nope }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn vec_of_ints_round_trips() {
        let xs = vec![1i32, -2, 3];
        let s = to_string(&xs).unwrap();
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
