//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! the multi-consumer `Receiver: Clone` semantics the engine's worker
//! pool relies on, layered over `std::sync::mpsc`. Cloned receivers
//! share one underlying queue behind a mutex; each message is delivered
//! to exactly one receiver. Workers hold the lock only while blocked in
//! `recv`, which matches the engine's usage (jobs execute outside the
//! receive call).

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer, multi-consumer FIFO channel.

    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Manual impl: the payload need not be Debug (matches upstream).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half; cloneable, each message goes to exactly one
    /// receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the queue is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn each_message_is_delivered_once() {
            let (tx, rx) = unbounded::<u32>();
            // the collect is load-bearing: all receivers must be
            // cloned and spawned before the sends below begin
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let r = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = r.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
