//! Offline shim for `criterion`.
//!
//! Runs each benchmark closure a fixed number of timed iterations and
//! prints the mean wall-clock time per iteration. There is no
//! statistical analysis, warm-up calibration, or HTML report — just
//! enough for `cargo bench` to execute the workspace's benches and
//! print comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records total elapsed time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per case (criterion's sample count is
    /// reused as our iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Times `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iterations.max(1) as f64;
        println!(
            "bench {:<50} {:>12.1} ns/iter ({} iters)",
            format!("{}/{}", self.name, id.0),
            mean_ns,
            b.iterations
        );
        self
    }

    /// Times `f` with no external input.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iterations.max(1) as f64;
        println!(
            "bench {:<50} {:>12.1} ns/iter ({} iters)",
            format!("{}/{}", self.name, id),
            mean_ns,
            b.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's builder.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a group-running function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
