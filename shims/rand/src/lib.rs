//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides exactly the subset of the `rand 0.8` API the workspace
//! uses: [`RngCore`], [`SeedableRng`], and the [`Rng`] extension with
//! `gen_range` over primitive ranges plus `gen_bool`. Generators are
//! deterministic given a seed, which is all the repo's experiments and
//! property tests rely on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Widening multiply keeps bias negligible for the span
                // sizes used here (all far below 2^64).
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples a value of a type with a uniform standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding a 64-bit state through
    /// splitmix64 (matching upstream's seeding helper in spirit).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// `rand::rngs` module with a small default generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast xoshiro256**-style generator standing in for
    /// upstream's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // avoid the all-zero state
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&y));
            let z = rng.gen_range(-3..9i32);
            assert!((-3..9).contains(&z));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
