//! Cut-strategy face-off: spectral vs max-flow vs Kernighan–Lin.
//!
//! Runs the identical workload through the pipeline once per cut
//! strategy (the comparison behind the paper's Figs. 3–5), prints the
//! resulting energy split and stage timings, and cross-checks the cut
//! quality of each strategy against the exact Stoer–Wagner global
//! minimum cut on the compressed components.
//!
//! Run with: `cargo run --release --example strategy_faceoff`

use copmecs::baselines::stoer_wagner;
use copmecs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = NetgenSpec::new(600, 2600)
        .components(5)
        .seed(99)
        .generate()?;
    let scenario =
        Scenario::new(SystemParams::default()).with_user(UserWorkload::new("phone", graph.clone()));

    println!(
        "workload: {} functions, {} edges, 5 components\n",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "local E", "tx E", "E+T", "offloaded", "time(ms)"
    );

    for kind in [
        StrategyKind::Spectral,
        StrategyKind::MaxFlow,
        StrategyKind::KernighanLin,
    ] {
        let offloader = Offloader::builder().strategy(kind).build();
        let report = offloader.solve(&scenario)?;
        let t = &report.evaluation.totals;
        println!(
            "{:>18} {:>10.2} {:>10.2} {:>10.2} {:>12} {:>10.2}",
            report.strategy,
            t.local_energy,
            t.tx_energy,
            t.objective(),
            report.plan[0].count_on(Side::Remote),
            report.timings.total().as_secs_f64() * 1e3,
        );
    }

    // --- ground truth on the compressed components -------------------
    println!("\ncut quality on compressed components (lower = better):");
    let compressor = Compressor::new(CompressionConfig::default());
    let outcome = compressor.compress(&graph);
    println!(
        "{:>6} {:>10} {:>11} {:>10} {:>10} {:>12}",
        "comp", "spec-sign", "spec-sweep", "max-flow", "KL", "exact (SW)"
    );
    for (i, comp) in outcome.components.iter().enumerate() {
        let q = comp.quotient.graph();
        if q.node_count() < 2 {
            continue;
        }
        let sign = SpectralBisector::new().bisect(q)?.cut_weight;
        let sweep = SpectralBisector::new()
            .split_rule(SplitRule::Sweep)
            .bisect(q)?
            .cut_weight;
        let mf = copmecs::baselines::MaxFlowBisector::new()
            .bisect(q)?
            .cut_weight(q);
        let kl = copmecs::baselines::KernighanLin::new()
            .bisect(q)?
            .cut_weight(q);
        let exact = stoer_wagner(q)?.cut_weight;
        println!("{i:>6} {sign:>10.2} {sweep:>11.2} {mf:>10.2} {kl:>10.2} {exact:>12.2}");
    }
    println!("\n(spec-sweep chases raw minimum weight and matches the exact cut;");
    println!(" the default sign split trades some weight for balanced module");
    println!(" separation, which wins once the pipeline objective is priced.)");
    Ok(())
}
