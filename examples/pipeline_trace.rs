//! Pipeline telemetry: record a full multi-user solve as a trace.
//!
//! Attaches an [`mec_obs::Recorder`] to the offloader, solves a small
//! three-user scenario, and prints what the instrumentation saw: stage
//! spans with durations, the label-propagation α trajectory, Lanczos
//! iteration counts, the greedy evaluated/accepted ratio, and the
//! stage-latency histograms from the recorder's metrics registry.
//! Finally exports the whole trace as JSON (the same format the
//! experiments binary writes with `--trace-out`).
//!
//! Run with: `cargo run --example pipeline_trace`
//!
//! Pass `--collapsed-out PATH` to also write the span tree in
//! collapsed-stack format for `scripts/flamegraph.sh` (inferno /
//! flamegraph.pl input), and `--chrome-trace-out PATH` to export the
//! trace in Chrome trace-event format (load via `chrome://tracing` or
//! `ui.perfetto.dev`).

use copmecs::obs::FieldValue;
use copmecs::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. a small multi-user crowd ---------------------------------
    let scenario = Scenario::new(SystemParams::default()).with_users((0..3).map(|i| {
        let g = NetgenSpec::new(300, 900)
            .seed(40 + i)
            .generate()
            .expect("workloads are generable");
        UserWorkload::new(format!("u{i}"), g)
    }));

    // --- 2. solve with a recorder attached ---------------------------
    let recorder = Arc::new(Recorder::new());
    let report = Offloader::builder()
        .strategy(StrategyKind::Spectral)
        .trace_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .build()
        .solve(&scenario)?;
    println!(
        "solved: {} users, E+T = {:.3}\n",
        report.plan.len(),
        report.evaluation.totals.objective()
    );

    // --- 3. stage spans ----------------------------------------------
    println!("stage spans:");
    for s in recorder.spans() {
        let ms = s.duration_ns().unwrap_or(0) as f64 / 1e6;
        let indent = if s.parent == 0 { "" } else { "  " };
        println!("  {indent}{:<20} {ms:>8.3} ms", s.name);
    }

    // --- 4. label propagation: the α trajectory ----------------------
    println!("\nlabel propagation rounds (first component):");
    let mut seen = 0;
    for e in recorder
        .events()
        .iter()
        .filter(|e| e.name == "labelprop.round")
    {
        let field = |k: &str| {
            e.fields
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| match v {
                    FieldValue::U64(u) => *u as f64,
                    FieldValue::I64(i) => *i as f64,
                    FieldValue::F64(x) => *x,
                    FieldValue::Str(_) => f64::NAN,
                })
        };
        println!(
            "  round {:>2}: α = {:.3}, {} updates, {} labels",
            field("round").unwrap_or(0.0),
            field("alpha").unwrap_or(0.0),
            field("updates").unwrap_or(0.0),
            field("labels").unwrap_or(0.0),
        );
        seen += 1;
        if seen >= 6 {
            println!(
                "  … ({} rounds total)",
                recorder.counter_value("labelprop.rounds")
            );
            break;
        }
    }

    // --- 5. eigensolver and greedy counters --------------------------
    println!("\ncounters:");
    for name in [
        "labelprop.rounds",
        "compress.components",
        "lanczos.iterations",
        "lanczos.solves",
        "spectral.bisections",
        "greedy.evaluated",
        "greedy.accepted",
    ] {
        println!("  {name:<22} {}", recorder.counter_value(name));
    }
    let evaluated = recorder.counter_value("greedy.evaluated");
    let accepted = recorder.counter_value("greedy.accepted");
    if evaluated > 0 {
        println!(
            "  greedy acceptance      {:.1}%",
            100.0 * accepted as f64 / evaluated as f64
        );
    }

    // --- 6. live histograms from the metrics registry ----------------
    println!("\nstage latency distributions:");
    let snap = recorder.metrics().snapshot();
    for name in [
        "stage.compression_nanos",
        "stage.cutting_nanos",
        "stage.greedy_nanos",
        "pipeline.solve_nanos",
        "lanczos.iterations",
    ] {
        if let Some(h) = snap.histogram(name) {
            println!(
                "  {name:<26} count {:>3}  p50 {:>10}  p99 {:>10}  max {:>10}",
                h.count(),
                h.value_at_quantile(0.50),
                h.value_at_quantile(0.99),
                h.max(),
            );
        }
    }

    // --- 7. JSON export (what --trace-out writes) --------------------
    let json = recorder.to_json_string();
    println!(
        "\ntrace JSON: {} bytes, {} spans, {} events retained, {} dropped",
        json.len(),
        recorder.spans().len(),
        recorder.events().len(),
        recorder.dropped_events()
    );

    // --- 8. flamegraph / Chrome-tracing exports ----------------------
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--collapsed-out" {
            let path = args.next().ok_or("--collapsed-out needs a path")?;
            let collapsed = recorder.to_collapsed_stacks();
            std::fs::write(&path, &collapsed)?;
            println!(
                "collapsed stacks written to {path} ({} frames) — render with \
                 scripts/flamegraph.sh {path}",
                collapsed.lines().count()
            );
        } else if a == "--chrome-trace-out" {
            let path = args.next().ok_or("--chrome-trace-out needs a path")?;
            let chrome = recorder.to_chrome_trace_string();
            std::fs::write(&path, &chrome)?;
            println!(
                "chrome trace written to {path} ({} bytes) — load via \
                 chrome://tracing or ui.perfetto.dev",
                chrome.len()
            );
        }
    }
    Ok(())
}
