//! Deployment parameter study: when does offloading pay?
//!
//! Sweeps radio bandwidth against edge-server capacity for a fixed
//! 16-user crowd and prints the offloaded work fraction as a phase
//! diagram — the planning table an operator would actually look at
//! before provisioning a cell.
//!
//! Run with: `cargo run --release --example parameter_study`

use copmecs::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bandwidths = [5.0, 10.0, 20.0, 40.0, 80.0];
    let capacities = [100.0, 300.0, 1000.0, 3000.0, 10000.0];
    let users = 16usize;

    let pool: Vec<Arc<Graph>> = (0..4)
        .map(|i| {
            Ok::<_, Box<dyn std::error::Error>>(Arc::new(
                NetgenSpec::new(250, 900).seed(70 + i).generate()?,
            ))
        })
        .collect::<Result<_, _>>()?;
    let offloader = Offloader::new();

    println!("offloaded work fraction, {users} users, 250-function apps\n");
    print!("{:>22}", "server capacity →");
    for c in capacities {
        print!("{c:>9.0}");
    }
    println!();
    println!("{}", "-".repeat(22 + 9 * capacities.len()));

    let mut rows = Vec::new();
    for b in bandwidths {
        print!("bandwidth {b:>6.0}      ");
        let mut row = Vec::new();
        for cap in capacities {
            let params = SystemParams {
                bandwidth: b,
                server_capacity: cap,
                ..SystemParams::default()
            };
            let scenario = Scenario::new(params)
                .with_users((0..users).map(|i| {
                    UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % pool.len()]))
                }));
            let report = offloader.solve(&scenario)?;
            let mut remote = 0.0;
            let mut total = 0.0;
            for (user, plan) in scenario.users().iter().zip(&report.plan) {
                remote += plan.node_weight_on(user.graph(), Side::Remote);
                total += user.graph().total_node_weight();
            }
            let frac = remote / total;
            row.push(frac);
            print!("{:>8.0}%", 100.0 * frac);
        }
        rows.push(row);
        println!();
    }

    // sanity narrative: fractions must not decrease along either axis
    println!("\nreading the diagram:");
    println!("  → capacity axis: more server never means less offloading");
    println!("  ↓ bandwidth axis: a faster radio unlocks coupled functions");
    let corner_low = rows[0][0];
    let corner_high = rows[rows.len() - 1][capacities.len() - 1];
    println!(
        "\nworst cell offloads {:.0}% of work; best cell {:.0}% — provision\naccordingly.",
        100.0 * corner_low,
        100.0 * corner_high
    );
    Ok(())
}
