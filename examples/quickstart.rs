//! Quickstart: offload a small hand-built camera app.
//!
//! Builds the application of the paper's Fig. 1 style by hand (a
//! capture pipeline whose camera/preview functions are pinned to the
//! device), runs the full spectral offloading pipeline, and prints
//! where each function ended up and what it costs.
//!
//! Run with: `cargo run --example quickstart`

use copmecs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. model the application (the "Soot step" by hand) ----------
    let mut app = ApplicationBuilder::new("camera-app");
    let pipeline = app.begin_component("pipeline");
    let names = [
        // (name, compute weight, kind)
        ("capture", 2.0, FunctionKind::SensorRead),
        ("denoise", 35.0, FunctionKind::Pure),
        ("detect_faces", 80.0, FunctionKind::Pure),
        ("extract_features", 60.0, FunctionKind::Pure),
        ("match_gallery", 45.0, FunctionKind::Pure),
        ("render_overlay", 5.0, FunctionKind::UserInterface),
    ];
    let ids: Vec<_> = names
        .iter()
        .map(|(n, w, k)| app.add_function(pipeline, *n, *w, *k))
        .collect::<Result<_, _>>()?;
    // the hot pipeline moves big frames; the tail results are tiny
    app.add_call(ids[0], ids[1], 120.0)?; // raw frame
    app.add_call(ids[1], ids[2], 110.0)?; // denoised frame
    app.add_call(ids[2], ids[3], 90.0)?; // face crops
    app.add_call(ids[3], ids[4], 8.0)?; // feature vectors
    app.add_call(ids[4], ids[5], 1.0)?; // match labels
    let application = app.build();

    // --- 2. extract the function data-flow graph ---------------------
    let extracted = application.extract();
    println!("function data-flow graph:");
    println!(
        "  {} functions, {} edges, {} pinned to the device",
        extracted.graph.node_count(),
        extracted.graph.edge_count(),
        application.pinned_functions().count(),
    );

    // --- 3. run the paper's pipeline ---------------------------------
    let scenario = Scenario::new(SystemParams::default())
        .with_user(UserWorkload::new("alice", extracted.graph.clone()));
    let report = Offloader::builder()
        .strategy(StrategyKind::Spectral)
        .build()
        .solve(&scenario)?;

    println!("\nplacement ({} strategy):", report.strategy);
    for (fid, f) in application.functions() {
        let side = report.plan[0].side(extracted.node_of(fid));
        println!("  {:<18} -> {side}", f.name);
    }

    // --- 4. compare against not offloading at all --------------------
    let all_local = scenario.evaluate(&[scenario.users()[0].all_local_plan()])?;
    let t = &report.evaluation.totals;
    println!("\ncosts (E = energy, T = time, objective = E + T):");
    println!(
        "  offloaded:  E = {:>8.3}  T = {:>8.3}  E+T = {:>8.3}",
        t.energy,
        t.time,
        t.objective()
    );
    println!(
        "  all-local:  E = {:>8.3}  T = {:>8.3}  E+T = {:>8.3}",
        all_local.totals.energy,
        all_local.totals.time,
        all_local.totals.objective()
    );
    let saved = 100.0 * (1.0 - t.objective() / all_local.totals.objective());
    println!("  offloading saves {saved:.1}% of the combined objective");
    Ok(())
}
