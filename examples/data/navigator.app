# A turn-by-turn navigation app, profiled at function level.
# Weights are relative compute units; volumes are relative data units.
app navigator

component sensing
  fn read_gps        2   sensor
  fn read_compass    1   sensor
  fn fuse_position  18   pure
  fn snap_to_road   25   pure

component routing
  fn build_query     3   pure
  fn plan_route     90   pure
  fn rerank_routes  40   pure
  fn eta_model      35   pure

component guidance
  fn next_maneuver  12   pure
  fn speak_prompt    6   io
  fn draw_map       20   ui
  fn draw_overlay    8   ui

component telemetry
  fn batch_events    4   pure
  fn compress_batch 15   pure
  fn write_journal   3   io

call read_gps      -> fuse_position   30
call read_compass  -> fuse_position   10
call fuse_position -> snap_to_road    12
call snap_to_road  -> build_query      4
call build_query   -> plan_route       5
call plan_route    -> rerank_routes   22
call rerank_routes -> eta_model       14
call eta_model     -> next_maneuver    3
call next_maneuver -> speak_prompt     1
call next_maneuver -> draw_overlay     2
call snap_to_road  -> draw_map        16
call draw_map      -> draw_overlay     6
call fuse_position -> batch_events     2
call batch_events  -> compress_batch   8
call compress_batch -> write_journal    2
