//! Multi-user contention on one edge server ("campus" scenario).
//!
//! A growing crowd of users shares a single MEC server. With few users
//! the server is effectively free and almost everything offloads; as
//! the crowd grows, each user's capacity share shrinks and the greedy
//! stage pulls work back onto the devices — the effect behind the
//! paper's Figs. 6–8. Also contrasts the three server allocation
//! policies on the same workload.
//!
//! Run with: `cargo run --release --example multi_user_campus`

use copmecs::prelude::*;

fn scenario(users: usize, policy: AllocationPolicy) -> Scenario {
    let params = SystemParams {
        allocation: policy,
        ..SystemParams::default()
    };
    let mut s = Scenario::new(params);
    for i in 0..users {
        // a mix of app shapes across the crowd
        let spec = match i % 3 {
            0 => SyntheticAppSpec::face_recognition(),
            1 => SyntheticAppSpec::email_client(),
            _ => SyntheticAppSpec::mobile_game(),
        };
        let app = spec.seed(1000 + i as u64).build();
        s = s.with_user(UserWorkload::new(format!("user{i}"), app.extract().graph));
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let offloader = Offloader::builder()
        .strategy(StrategyKind::Spectral)
        .build();
    // one execution context across every solve below: the serial
    // backend's cut arena stays warm, so repeated solves skip the
    // cold-start allocations of the spectral stage
    let mut ctx = offloader.exec_ctx();

    println!("== crowd growth (EqualShare policy) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "users", "E", "T", "E+T", "offloaded%"
    );
    for users in [1usize, 4, 16, 64, 128] {
        let s = scenario(users, AllocationPolicy::EqualShare);
        let report = offloader.solve_with(&mut ctx, &s)?;
        let (remote, total): (usize, usize) = report
            .plan
            .iter()
            .map(|p| (p.count_on(Side::Remote), p.len()))
            .fold((0, 0), |(r, t), (pr, pt)| (r + pr, t + pt));
        let tt = &report.evaluation.totals;
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>9.1}%",
            users,
            tt.energy,
            tt.time,
            tt.objective(),
            100.0 * remote as f64 / total as f64
        );
    }

    println!("\n== allocation policies at 32 users ==");
    println!("{:>20} {:>12} {:>12} {:>12}", "policy", "E", "T", "E+T");
    for (name, policy) in [
        ("equal-share", AllocationPolicy::EqualShare),
        ("proportional", AllocationPolicy::ProportionalToLoad),
        ("fifo", AllocationPolicy::Fifo),
    ] {
        let s = scenario(32, policy);
        let report = offloader.solve_with(&mut ctx, &s)?;
        let tt = &report.evaluation.totals;
        println!(
            "{:>20} {:>12.2} {:>12.2} {:>12.2}",
            name,
            tt.energy,
            tt.time,
            tt.objective()
        );
    }

    println!("\nnote: energy E is policy-independent for a fixed plan; the");
    println!("policies differ in T, which changes which plan the greedy picks.");
    Ok(())
}
