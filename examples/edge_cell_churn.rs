//! Live churn on one edge cell: phones joining and leaving, with the
//! operator re-planning placement after every event.
//!
//! Demonstrates [`OffloadSession`]: compression and minimum cuts run
//! once per user at join time; each re-plan only re-runs the greedy
//! placement, so reacting to churn is milliseconds even for sizeable
//! crowds.
//!
//! Run with: `cargo run --release --example edge_cell_churn`

use copmecs::core::OffloadSession;
use copmecs::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a modest cell: contention will bite as the crowd grows
    let params = SystemParams {
        server_capacity: 600.0,
        ..SystemParams::default()
    };
    let mut session = OffloadSession::new(params);

    println!(
        "{:<28} {:>6} {:>12} {:>11} {:>12}",
        "event", "users", "E+T", "offloaded%", "replan (ms)"
    );

    let report_line = |event: &str, session: &mut OffloadSession| {
        let t0 = Instant::now();
        let report = session.replan().expect("replan succeeds");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let total: usize = report.plan.iter().map(|p| p.len()).sum();
        let frac = if total == 0 {
            0.0
        } else {
            100.0 * report.offloaded_count() as f64 / total as f64
        };
        println!(
            "{:<28} {:>6} {:>12.1} {:>10.1}% {:>12.2}",
            event,
            session.user_count(),
            report.evaluation.totals.objective(),
            frac,
            ms
        );
    };

    // morning: phones trickle in
    for i in 0..12u64 {
        let app = match i % 3 {
            0 => SyntheticAppSpec::face_recognition(),
            1 => SyntheticAppSpec::mobile_game(),
            _ => SyntheticAppSpec::email_client(),
        };
        let g = Arc::new(app.seed(500 + i).build().extract().graph);
        session.join(format!("phone-{i}"), g)?;
        if i % 4 == 3 {
            report_line(&format!("{} phones joined", i + 1), &mut session);
        }
    }

    // a heavy user upgrades their app (same name, new graph)
    let upgraded = Arc::new(
        SyntheticAppSpec::face_recognition()
            .seed(999)
            .build()
            .extract()
            .graph,
    );
    session.join("phone-0", upgraded)?;
    report_line("phone-0 upgraded app", &mut session);

    // evening: half the crowd leaves
    for i in (0..12u64).filter(|i| i % 2 == 0) {
        session.leave(&format!("phone-{i}"));
    }
    report_line("even phones left", &mut session);

    println!("\nper-user cost of the final plan:");
    let final_report = session.replan()?;
    for (i, cost) in final_report.evaluation.per_user.iter().enumerate() {
        println!(
            "  user {}: energy {:>8.2}, time {:>8.2}",
            i,
            cost.energy(),
            cost.time()
        );
    }
    Ok(())
}
