//! File-based workflow: load a profiled application from a spec file,
//! inspect its structure, and decide its offloading plan.
//!
//! This is the workflow a real adopter follows: profile the app once,
//! commit `*.app` to the repo, re-run placement whenever the deployment
//! parameters change.
//!
//! Run with: `cargo run --release --example spec_file_workflow`

use copmecs::app::Application;
use copmecs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/navigator.app");
    let app = Application::from_spec_str(&std::fs::read_to_string(spec_path)?)?;

    println!("loaded '{}' from {spec_path}", app.name());
    println!(
        "  {} components, {} functions ({} pinned), {} calls",
        app.component_count(),
        app.function_count(),
        app.pinned_functions().count(),
        app.call_count()
    );

    let extracted = app.extract();
    let g = &extracted.graph;
    println!(
        "  graph: density {:.3}, clustering {:.3}, pinned coupling {:.0}%",
        g.density(),
        g.clustering_coefficient(),
        100.0 * g.pinned_coupling_fraction()
    );

    // two deployments: a congested cell vs a fast one
    for (label, bandwidth) in [
        ("congested cell (b = 8)", 8.0),
        ("fast cell (b = 60)", 60.0),
    ] {
        let params = SystemParams {
            bandwidth,
            ..SystemParams::default()
        };
        let scenario =
            Scenario::new(params).with_user(UserWorkload::new("driver", extracted.graph.clone()));
        let report = Offloader::new().solve(&scenario)?;
        println!("\n== {label} ==");
        for (fid, f) in app.functions() {
            let side = report.plan[0].side(extracted.node_of(fid));
            if side == Side::Remote {
                println!("  offload {:<16} ({} units)", f.name, f.compute_weight);
            }
        }
        let t = &report.evaluation.totals;
        println!(
            "  E = {:.2}, T = {:.2}, objective = {:.2}",
            t.energy,
            t.time,
            t.objective()
        );
    }

    println!("\ntip: `app.to_dot()` renders the call structure for graphviz.");
    Ok(())
}
