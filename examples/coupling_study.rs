//! Loosely vs highly coupled applications.
//!
//! The paper's abstract claims the algorithm "is effective in handling
//! programs with loosely coupled as well as highly coupled functions".
//! This example generates both shapes with the synthetic app model,
//! shows how differently the compression stage treats them (highly
//! coupled functions fuse into few super-nodes; loose ones barely
//! merge), and how the radio budget decides when each regime benefits:
//! loose apps offload even on a scarce radio, coupled apps need a fast
//! one — and compression is what keeps their hot pairs co-located
//! either way.
//!
//! Run with: `cargo run --release --example coupling_study`

use copmecs::app::CouplingProfile;
use copmecs::labelprop::CompressionStats;
use copmecs::prelude::*;

fn study(profile: CouplingProfile, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let app = SyntheticAppSpec::new(label, 4, 40)
        .profile(profile)
        .seed(7)
        .build();
    let graph = std::sync::Arc::new(app.extract().graph);

    // compression behaviour
    let compressor = Compressor::new(CompressionConfig::default());
    let stats: CompressionStats = compressor.compress(&graph).stats;
    println!("\n== {label} ==");
    println!(
        "  compression: {} offloadable nodes -> {} super-nodes ({:.0}% reduction), {} edges -> {}",
        stats.offloadable_nodes,
        stats.compressed_nodes,
        100.0 * stats.node_reduction(),
        stats.offloadable_edges,
        stats.compressed_edges,
    );

    // end-to-end offloading vs all-local, on two radio budgets
    for (radio, bandwidth) in [("scarce radio (b=20)", 20.0), ("fast radio (b=80)", 80.0)] {
        let params = SystemParams {
            bandwidth,
            ..SystemParams::default()
        };
        let scenario = Scenario::new(params).with_user(UserWorkload::new("u", graph.clone()));
        let report = Offloader::new().solve(&scenario)?;
        let all_local = scenario.evaluate_all_local()?;
        let got = report.evaluation.totals.objective();
        let base = all_local.totals.objective();
        println!(
            "  {radio}: offloaded {}/{}; E+T {:.0} vs all-local {:.0} ({:.1}% saved)",
            report.plan[0].count_on(Side::Remote),
            report.plan[0].len(),
            got,
            base,
            100.0 * (1.0 - got / base),
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    study(
        CouplingProfile::LooselyCoupled,
        "loosely-coupled (email-like)",
    )?;
    study(
        CouplingProfile::HighlyCoupled,
        "highly-coupled (vision-like)",
    )?;
    study(CouplingProfile::Mixed, "mixed (game-like)")?;
    println!("\ntakeaway: loose apps offload on any radio; coupled apps need a");
    println!("fast one — and compression keeps their hot pairs together so the");
    println!("cut only ever pays for the light edges.");
    Ok(())
}
