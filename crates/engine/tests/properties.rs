//! Property tests: every parallel engine result must equal its serial
//! equivalent, for arbitrary data, partitionings and worker counts.

use mec_engine::{Cluster, Dataset, ParallelCsr, ParallelLaplacian};
use mec_linalg::{CsrMatrix, SymOp};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_map_filter_reduce_match_serial(
        data in proptest::collection::vec(-1000i64..1000, 0..200),
        partitions in 1usize..12,
        workers in 1usize..6,
    ) {
        let cluster = Arc::new(Cluster::new(workers).unwrap());
        let d = Dataset::from_vec(cluster, data.clone(), partitions);
        prop_assert_eq!(d.collect(), data.clone());
        prop_assert_eq!(d.count(), data.len());
        let mapped = d.map(|x| x * 3 - 1);
        let serial_mapped: Vec<i64> = data.iter().map(|x| x * 3 - 1).collect();
        prop_assert_eq!(&mapped.collect()[..], &serial_mapped[..]);
        let filtered = mapped.filter(|x| x % 2 == 0);
        let serial_filtered: Vec<i64> =
            serial_mapped.iter().copied().filter(|x| x % 2 == 0).collect();
        prop_assert_eq!(&filtered.collect()[..], &serial_filtered[..]);
        let sum = filtered.reduce(0, |a, b| a + b);
        prop_assert_eq!(sum, serial_filtered.iter().sum::<i64>());
    }

    #[test]
    fn stage_results_keep_input_order_under_contention(
        n in 1usize..150,
        workers in 1usize..8,
    ) {
        let cluster = Cluster::new(workers).unwrap();
        let out = cluster
            .run_stage((0..n).collect(), |i, x: usize| {
                // jitter to shuffle completion order
                if x.is_multiple_of(3) {
                    std::thread::yield_now();
                }
                (i, x * x)
            })
            .unwrap();
        for (i, (idx, sq)) in out.into_iter().enumerate() {
            prop_assert_eq!(i, idx);
            prop_assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn parallel_laplacian_matches_serial_for_any_blocking(
        n in 2usize..60,
        blocks in 1usize..10,
        seed in 0u64..200,
    ) {
        // ring + chords graph (the filter drops self-loops; the chord
        // never is one because n / 2 > 0 whenever it is pushed)
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + ((seed as usize + i) % 5) as f64))
            .filter(|(a, b, _)| a != b)
            .collect();
        if n > 4 {
            edges.push((0, n / 2, 2.5));
        }
        let serial = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let cluster = Arc::new(Cluster::new(3).unwrap());
        let par = ParallelLaplacian::from_edges(cluster, n, &edges, blocks).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + seed as usize) % 11) as f64 - 5.0).collect();
        let mut ys = vec![0.0; n];
        let mut yp = vec![0.0; n];
        serial.apply(&x, &mut ys);
        par.apply(&x, &mut yp);
        for (a, b) in ys.iter().zip(&yp) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_csr_matches_serial_for_any_blocking(
        n in 1usize..50,
        blocks in 1usize..8,
    ) {
        let mut triplets = vec![];
        for i in 0..n {
            triplets.push((i, i, 2.0 + (i % 3) as f64));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
                triplets.push((i + 1, i, -1.0));
            }
        }
        let m = CsrMatrix::from_triplets(n, &triplets).unwrap();
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let par = ParallelCsr::new(cluster, &m, blocks).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut ys = vec![0.0; n];
        let mut yp = vec![0.0; n];
        m.apply(&x, &mut ys);
        par.apply(&x, &mut yp);
        for (a, b) in ys.iter().zip(&yp) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn zip_with_matches_serial(
        data in proptest::collection::vec(-50i32..50, 1..80),
        pl in 1usize..6,
        pr in 1usize..6,
    ) {
        let cluster = Arc::new(Cluster::new(3).unwrap());
        let left = Dataset::from_vec(Arc::clone(&cluster), data.clone(), pl);
        let doubled: Vec<i32> = data.iter().map(|x| x * 2).collect();
        let right = Dataset::from_vec(cluster, doubled, pr);
        let combined = left.zip_with(&right, |a, b| a + b);
        let expected: Vec<i32> = data.iter().map(|x| x * 3).collect();
        prop_assert_eq!(combined.collect(), expected);
    }
}
