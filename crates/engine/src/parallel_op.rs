//! The cluster-backed Laplacian operator.
//!
//! This is the piece that substitutes the paper's "matrix
//! multiplications on Spark" (§IV, Fig. 9): the CSR rows of a graph
//! Laplacian are sharded into row blocks, and every `y = L x` product
//! runs one task per block on the [`Cluster`].

use crate::apply_scratch::{self, ApplyScratch};
use crate::{Cluster, EngineError};
use mec_linalg::SymOp;
use std::sync::{Arc, Mutex};

/// One contiguous block of Laplacian rows in CSR form.
#[derive(Debug)]
struct RowBlock {
    /// First row this block covers.
    start: usize,
    /// Per-row offsets into `columns` / `weights`, block-local
    /// (`offsets[0] == 0`).
    offsets: Vec<usize>,
    columns: Vec<u32>,
    weights: Vec<f64>,
    /// Weighted degree of each row (the Laplacian diagonal).
    degrees: Vec<f64>,
}

impl RowBlock {
    fn apply(&self, x: &[f64], out: &mut Vec<f64>) {
        let rows = self.offsets.len() - 1;
        out.clear();
        out.resize(rows, 0.0);
        mec_linalg::kernels::csr_laplacian_matvec_deg(
            &self.offsets,
            &self.columns,
            &self.weights,
            &self.degrees,
            x,
            self.start,
            out,
        );
    }
}

/// A graph-Laplacian [`SymOp`] whose matrix-vector products are
/// distributed over a [`Cluster`].
///
/// Built from the adjacency edge list of an undirected weighted graph;
/// rows are split into `blocks` shards. Each `apply` broadcasts `x` to
/// the workers (one `Arc` clone per task), runs one task per shard and
/// reassembles `y` in shard order — the same stage structure Spark
/// would use for a block-partitioned `L·x`.
#[derive(Debug, Clone)]
pub struct ParallelLaplacian {
    cluster: Arc<Cluster>,
    blocks: Arc<Vec<RowBlock>>,
    dim: usize,
    /// Recycled broadcast / gather buffers (see [`apply_scratch`]);
    /// shared by clones, which keeps repeated products allocation-free
    /// no matter which handle runs them.
    scratch: Arc<Mutex<ApplyScratch>>,
}

impl ParallelLaplacian {
    /// Builds the operator for a graph with `n` nodes and the given
    /// undirected weighted `edges`, sharded into `blocks` row blocks.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoPartitions`] when `blocks == 0`.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `≥ n` or an edge weight is not
    /// finite (these are programmer errors — graphs validated by
    /// `mec-graph` cannot trigger them).
    pub fn from_edges(
        cluster: Arc<Cluster>,
        n: usize,
        edges: &[(usize, usize, f64)],
        blocks: usize,
    ) -> Result<Self, EngineError> {
        if blocks == 0 {
            return Err(EngineError::NoPartitions);
        }
        // adjacency in CSR
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(a, b, w) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert!(w.is_finite(), "edge weight must be finite");
            adj[a].push((u32::try_from(b).expect("node id fits u32"), w));
            adj[b].push((u32::try_from(a).expect("node id fits u32"), w));
        }
        let b = blocks.min(n.max(1));
        let rows_per = n.div_ceil(b.max(1)).max(1);
        let mut shards = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + rows_per).min(n);
            let mut offsets = vec![0usize];
            let mut columns = Vec::new();
            let mut weights = Vec::new();
            let mut degrees = Vec::new();
            for row in adj[start..end].iter() {
                let mut deg = 0.0;
                for &(c, w) in row {
                    columns.push(c);
                    weights.push(w);
                    deg += w;
                }
                degrees.push(deg);
                offsets.push(columns.len());
            }
            shards.push(RowBlock {
                start,
                offsets,
                columns,
                weights,
                degrees,
            });
            start = end;
        }
        if shards.is_empty() {
            shards.push(RowBlock {
                start: 0,
                offsets: vec![0],
                columns: vec![],
                weights: vec![],
                degrees: vec![],
            });
        }
        Ok(ParallelLaplacian {
            cluster,
            blocks: Arc::new(shards),
            dim: n,
            scratch: ApplyScratch::shared(),
        })
    }

    /// Number of row blocks (= tasks per matrix-vector product).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The cluster this operator runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }
}

impl SymOp for ParallelLaplacian {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "x length mismatch");
        assert_eq!(y.len(), self.dim, "y length mismatch");
        // broadcast: one shared (pooled) copy of x for the whole
        // stage; each task also carries its pooled output buffer
        let (xs, inputs) = apply_scratch::checkout(&self.scratch, x, self.blocks.len());
        let blocks = Arc::clone(&self.blocks);
        let xs_stage = Arc::clone(&xs);
        let pieces = self
            .cluster
            .run_stage(inputs, move |_, (bi, mut out)| {
                blocks[bi].apply(&xs_stage, &mut out);
                (blocks[bi].start, out)
            })
            .expect("laplacian stage does not panic");
        apply_scratch::retire(&self.scratch, xs, pieces, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_linalg::{smallest_eigenpairs, CsrMatrix, LanczosOptions};

    fn cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(4).unwrap())
    }

    fn ring_edges(n: usize) -> Vec<(usize, usize, f64)> {
        (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64))
            .collect()
    }

    #[test]
    fn rejects_zero_blocks() {
        assert_eq!(
            ParallelLaplacian::from_edges(cluster(), 4, &ring_edges(4), 0).unwrap_err(),
            EngineError::NoPartitions
        );
    }

    #[test]
    fn matches_serial_laplacian() {
        let n = 57;
        let edges = ring_edges(n);
        let serial = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let par = ParallelLaplacian::from_edges(cluster(), n, &edges, 5).unwrap();
        assert_eq!(par.dim(), n);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut ys = vec![0.0; n];
        let mut yp = vec![0.0; n];
        serial.apply(&x, &mut ys);
        par.apply(&x, &mut yp);
        for (a, b) in ys.iter().zip(&yp) {
            assert!((a - b).abs() < 1e-12, "serial {a} vs parallel {b}");
        }
    }

    #[test]
    fn block_count_respects_request() {
        let par = ParallelLaplacian::from_edges(cluster(), 100, &ring_edges(100), 8).unwrap();
        assert_eq!(par.block_count(), 8);
        // more blocks than rows clamps
        let par2 = ParallelLaplacian::from_edges(cluster(), 3, &ring_edges(3), 10).unwrap();
        assert!(par2.block_count() <= 3);
    }

    #[test]
    fn eigensolver_runs_on_parallel_backend() {
        let n = 64;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let par = ParallelLaplacian::from_edges(cluster(), n, &edges, 6).unwrap();
        let opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let pairs = smallest_eigenpairs(&par, 2, &opts).unwrap();
        assert!(pairs[0].value.abs() < 1e-8);
        let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!((pairs[1].value - expected).abs() < 1e-7);
    }

    #[test]
    fn empty_graph_operator() {
        let par = ParallelLaplacian::from_edges(cluster(), 0, &[], 3).unwrap();
        assert_eq!(par.dim(), 0);
        let mut y: Vec<f64> = vec![];
        par.apply(&[], &mut y);
    }

    #[test]
    fn stage_metrics_grow_with_applications() {
        let c = cluster();
        let par = ParallelLaplacian::from_edges(Arc::clone(&c), 20, &ring_edges(20), 4).unwrap();
        let before = c.metrics().stages;
        let x = vec![1.0; 20];
        let mut y = vec![0.0; 20];
        par.apply(&x, &mut y);
        par.apply(&x, &mut y);
        assert_eq!(c.metrics().stages, before + 2);
    }
}
