//! The persistent worker pool.

use crate::metrics::Metrics;
use crate::{EngineError, MetricsSnapshot};
use crossbeam::channel::{unbounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing stages of tasks.
///
/// The cluster is the engine's only scheduling primitive: a *stage* is
/// a batch of independent tasks; [`run_stage`](Cluster::run_stage)
/// submits them all, waits for completion, and reassembles results in
/// task order, so callers observe deterministic output regardless of
/// which worker ran what.
///
/// Workers live until the cluster is dropped.
#[derive(Debug)]
pub struct Cluster {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    metrics: Arc<Metrics>,
}

impl Cluster {
    /// Spawns a cluster with `workers` threads.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<Self, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        let (sender, receiver) = unbounded::<Job>();
        let metrics = Arc::new(Metrics::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("mec-engine-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("worker thread spawn failed")
            })
            .collect();
        Ok(Cluster {
            sender: Some(sender),
            workers: handles,
            worker_count: workers,
            metrics,
        })
    }

    /// Spawns a cluster sized to the machine (`available_parallelism`,
    /// at least 2 workers).
    pub fn with_default_parallelism() -> Result<Self, EngineError> {
        let n = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(2)
            .max(2);
        Cluster::new(n)
    }

    /// Number of worker threads.
    #[inline]
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Runs one stage: applies `f(index, input)` to every input on the
    /// pool and returns the results in input order.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerFailed`] if any task panicked; the first
    /// failed task index is reported.
    pub fn run_stage<T, R>(
        &self,
        inputs: Vec<T>,
        f: impl Fn(usize, T) -> R + Send + Sync + 'static,
    ) -> Result<Vec<R>, EngineError>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        let n = inputs.len();
        self.metrics.record_stage();
        if n == 0 {
            return Ok(vec![]);
        }
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, Option<R>)>();
        let sender = self
            .sender
            .as_ref()
            .expect("cluster sender alive until drop");
        for (i, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let metrics = Arc::clone(&self.metrics);
            let job: Job = Box::new(move || {
                let start = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f(i, input))).ok();
                metrics.record_task(start.elapsed().as_nanos() as u64);
                // receiver may be gone if the caller bailed early
                let _ = tx.send((i, out));
            });
            sender.send(job).expect("workers outlive the cluster");
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut failed: Option<usize> = None;
        for _ in 0..n {
            let (i, out) = rx.recv().expect("every task sends exactly once");
            match out {
                Some(r) => slots[i] = Some(r),
                None => failed = Some(failed.map_or(i, |p| p.min(i))),
            }
        }
        if let Some(task) = failed {
            return Err(EngineError::WorkerFailed { task });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    /// Current execution counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // closing the channel lets every worker's recv() fail and exit
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_workers() {
        assert_eq!(Cluster::new(0).unwrap_err(), EngineError::NoWorkers);
    }

    #[test]
    fn stage_results_are_in_input_order() {
        let c = Cluster::new(4).unwrap();
        let out = c
            .run_stage((0..100).collect(), |i, x: i32| {
                // jitter completion order
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * 2
            })
            .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_stage_is_fine() {
        let c = Cluster::new(2).unwrap();
        let out: Vec<i32> = c.run_stage(Vec::<i32>::new(), |_, x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_task_reports_failure_not_hang() {
        let c = Cluster::new(2).unwrap();
        let err = c
            .run_stage(vec![1, 2, 3], |i, x: i32| {
                if i == 1 {
                    panic!("boom");
                }
                x
            })
            .unwrap_err();
        assert_eq!(err, EngineError::WorkerFailed { task: 1 });
        // cluster still works after a panic
        let ok = c.run_stage(vec![5], |_, x: i32| x + 1).unwrap();
        assert_eq!(ok, vec![6]);
    }

    #[test]
    fn metrics_count_stages_and_tasks() {
        let c = Cluster::new(2).unwrap();
        c.run_stage(vec![1, 2, 3], |_, x: i32| x).unwrap();
        c.run_stage(vec![1], |_, x: i32| x).unwrap();
        let m = c.metrics();
        assert_eq!(m.stages, 2);
        assert_eq!(m.tasks, 4);
    }

    #[test]
    fn default_parallelism_has_at_least_two_workers() {
        let c = Cluster::with_default_parallelism().unwrap();
        assert!(c.worker_count() >= 2);
    }

    #[test]
    fn drop_joins_cleanly() {
        let c = Cluster::new(3).unwrap();
        c.run_stage(vec![1, 2], |_, x: i32| x).unwrap();
        drop(c); // must not deadlock
    }

    #[test]
    fn stages_can_nest_across_clusters() {
        let outer = Cluster::new(2).unwrap();
        let out = outer
            .run_stage(vec![10, 20], |_, x: i32| {
                let inner = Cluster::new(2).unwrap();
                inner
                    .run_stage(vec![x, x + 1], |_, y: i32| y * 10)
                    .unwrap()
                    .into_iter()
                    .sum::<i32>()
            })
            .unwrap();
        assert_eq!(out, vec![210, 410]);
    }
}
