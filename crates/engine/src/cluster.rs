//! The persistent worker pool.

use crate::metrics::{Metrics, WorkerSnapshot};
use crate::{EngineError, MetricsSnapshot};
use crossbeam::channel::{unbounded, Sender};
use mec_obs::metrics::MetricsRegistry;
use mec_obs::TraceSink;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued task: invoked with the index of the worker that runs it,
/// so per-worker latency histograms attribute work correctly.
type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Why a stage submitted through
/// [`try_run_stage`](Cluster::try_run_stage) failed: either the engine
/// itself broke (a task panicked, the pool died), or a task returned an
/// error of the caller's own type `E`.
///
/// When several tasks fail, the lowest task index is reported — the
/// same task a serial loop over the inputs would have failed on first,
/// so error reporting stays deterministic under parallel scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageError<E> {
    /// The engine failed (worker panic or pool shutdown).
    Engine(EngineError),
    /// A task returned `Err` of the caller's error type.
    Task {
        /// Index of the failed task within its stage.
        task: usize,
        /// The task's own error.
        error: E,
    },
}

impl<E: fmt::Display> fmt::Display for StageError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::Engine(e) => write!(f, "{e}"),
            StageError::Task { task, error } => write!(f, "task {task} failed: {error}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StageError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageError::Engine(e) => Some(e),
            StageError::Task { error, .. } => Some(error),
        }
    }
}

/// What one task of a fallible stage produced.
enum TaskOutcome<R, E> {
    Ok(R),
    TaskError(E),
    Panicked(Option<String>),
}

/// Extracts a human-readable message from a panic payload (the
/// `&'static str` / `String` payloads `panic!` produces).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
}

/// A fixed pool of worker threads executing stages of tasks.
///
/// The cluster is the engine's only scheduling primitive: a *stage* is
/// a batch of independent tasks; [`run_stage`](Cluster::run_stage)
/// submits them all, waits for completion, and reassembles results in
/// task order, so callers observe deterministic output regardless of
/// which worker ran what.
///
/// Workers live until the cluster is dropped.
#[derive(Debug)]
pub struct Cluster {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    metrics: Arc<Metrics>,
    /// The sink the workers registered with at spawn, kept so pipeline
    /// layers holding only the cluster can flush worker-side shard
    /// records (see [`telemetry_sink`](Cluster::telemetry_sink)).
    sink: Option<Arc<dyn TraceSink>>,
}

impl Cluster {
    /// Spawns a cluster with `workers` threads.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<Self, EngineError> {
        Cluster::build(workers, None, None)
    }

    /// Spawns a cluster whose per-worker task-latency and queue-wait
    /// histograms, busy counters, and stage fan-out widths are recorded
    /// into `registry` (as `engine.task_nanos{worker="i"}`,
    /// `engine.queue_wait_nanos{worker="i"}`,
    /// `engine.worker_busy_nanos{worker="i"}`, `engine.stage_width`).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] when `workers == 0`.
    pub fn with_metrics(
        workers: usize,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, EngineError> {
        Cluster::build(workers, Some(registry), None)
    }

    /// Spawns a cluster with both a metrics registry (as in
    /// [`with_metrics`](Cluster::with_metrics)) and a [`TraceSink`]
    /// that each worker thread registers itself with
    /// ([`TraceSink::register_worker`]) before taking its first task —
    /// a sharded sink pins worker `i` to ring shard `i`, so worker
    /// telemetry never contends with the serial path.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] when `workers == 0`.
    pub fn with_telemetry(
        workers: usize,
        registry: Option<Arc<MetricsRegistry>>,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> Result<Self, EngineError> {
        Cluster::build(workers, registry, sink)
    }

    fn build(
        workers: usize,
        registry: Option<Arc<MetricsRegistry>>,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> Result<Self, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        let (sender, receiver) = unbounded::<Job>();
        let metrics = Arc::new(Metrics::new(workers, registry.as_deref()));
        let handles = (0..workers)
            .map(|i| {
                let rx = receiver.clone();
                let sink = sink.clone();
                std::thread::Builder::new()
                    .name(format!("mec-engine-worker-{i}"))
                    .spawn(move || {
                        if let Some(sink) = &sink {
                            sink.register_worker(i);
                        }
                        while let Ok(job) = rx.recv() {
                            job(i);
                        }
                    })
                    .expect("worker thread spawn failed")
            })
            .collect();
        Ok(Cluster {
            sender: Some(sender),
            workers: handles,
            worker_count: workers,
            metrics,
            sink,
        })
    }

    /// The [`TraceSink`] this cluster's workers registered with at
    /// spawn ([`with_telemetry`](Cluster::with_telemetry)), if any.
    /// Workers record into per-thread shards of this sink; whoever
    /// drives a stage to completion (or failure) should flush it so
    /// those shard records drain into the aggregated views.
    pub fn telemetry_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// Spawns a cluster sized to the machine (`available_parallelism`,
    /// at least 2 workers).
    pub fn with_default_parallelism() -> Result<Self, EngineError> {
        let n = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(2)
            .max(2);
        Cluster::new(n)
    }

    /// Number of worker threads.
    #[inline]
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Runs one stage: applies `f(index, input)` to every input on the
    /// pool and returns the results in input order.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerFailed`] if any task panicked (the lowest
    /// failed task index is reported, with the panic message when it
    /// was a string); [`EngineError::PoolShutDown`] if the worker
    /// threads are gone.
    pub fn run_stage<T, R>(
        &self,
        inputs: Vec<T>,
        f: impl Fn(usize, T) -> R + Send + Sync + 'static,
    ) -> Result<Vec<R>, EngineError>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        self.try_run_stage(inputs, move |i, input| {
            Ok::<R, std::convert::Infallible>(f(i, input))
        })
        .map_err(|e| match e {
            StageError::Engine(e) => e,
            StageError::Task { error, .. } => match error {},
        })
    }

    /// Runs one stage of *fallible* tasks: applies `f(index, input)` to
    /// every input on the pool and returns the `Ok` results in input
    /// order. Unlike [`run_stage`](Cluster::run_stage), a task
    /// returning `Err` is propagated to the caller instead of being a
    /// panic-only affair — this is what lets pipeline stages keep their
    /// typed error channel across the thread boundary.
    ///
    /// All tasks run to completion even when one fails (the pool has no
    /// cancellation), and the reported failure is always the
    /// lowest-indexed one, exactly as a serial loop would fail.
    ///
    /// # Errors
    ///
    /// [`StageError::Task`] if a task returned `Err`;
    /// [`StageError::Engine`] if a task panicked or the pool is gone.
    /// A panic at a lower task index takes precedence over a task error
    /// at a higher one (and vice versa): lowest index wins.
    pub fn try_run_stage<T, R, E>(
        &self,
        inputs: Vec<T>,
        f: impl Fn(usize, T) -> Result<R, E> + Send + Sync + 'static,
    ) -> Result<Vec<R>, StageError<E>>
    where
        T: Send + 'static,
        R: Send + 'static,
        E: Send + 'static,
    {
        let n = inputs.len();
        self.metrics.record_stage(n);
        if n == 0 {
            return Ok(vec![]);
        }
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, TaskOutcome<R, E>)>();
        let sender = self
            .sender
            .as_ref()
            .ok_or(StageError::Engine(EngineError::PoolShutDown))?;
        let mut submitted = 0usize;
        for (i, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let metrics = Arc::clone(&self.metrics);
            let enqueued = Instant::now();
            let job: Job = Box::new(move |worker| {
                let queue_wait = enqueued.elapsed();
                let start = Instant::now();
                let out = match catch_unwind(AssertUnwindSafe(|| f(i, input))) {
                    Ok(Ok(r)) => TaskOutcome::Ok(r),
                    Ok(Err(e)) => TaskOutcome::TaskError(e),
                    Err(payload) => TaskOutcome::Panicked(panic_message(payload)),
                };
                metrics.record_task(worker, start.elapsed(), queue_wait);
                // receiver may be gone if the caller bailed early
                let _ = tx.send((i, out));
            });
            if sender.send(job).is_err() {
                // every worker thread died: stop submitting and report,
                // after draining what the pool already finished
                break;
            }
            submitted += 1;
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // lowest-indexed failure seen so far
        let mut failed: Option<(usize, TaskOutcome<R, E>)> = None;
        for _ in 0..submitted {
            let (i, out) = match rx.recv() {
                Ok(v) => v,
                // a worker died mid-task without reporting back
                Err(_) => return Err(StageError::Engine(EngineError::PoolShutDown)),
            };
            match out {
                TaskOutcome::Ok(r) => slots[i] = Some(r),
                failure => {
                    if failed.as_ref().is_none_or(|(p, _)| i < *p) {
                        failed = Some((i, failure));
                    }
                }
            }
        }
        if submitted < n {
            return Err(StageError::Engine(EngineError::PoolShutDown));
        }
        match failed {
            Some((task, TaskOutcome::TaskError(error))) => Err(StageError::Task { task, error }),
            Some((task, TaskOutcome::Panicked(message))) => {
                Err(StageError::Engine(EngineError::WorkerFailed {
                    task,
                    message,
                }))
            }
            Some((_, TaskOutcome::Ok(_))) => unreachable!("Ok outcomes fill slots"),
            None => Ok(slots
                .into_iter()
                .map(|s| s.expect("all slots filled"))
                .collect()),
        }
    }

    /// Current execution counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Per-worker execution counters, indexed by worker.
    pub fn worker_metrics(&self) -> Vec<WorkerSnapshot> {
        self.metrics.worker_snapshots()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // closing the channel lets every worker's recv() fail and exit
        self.sender.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_workers() {
        assert_eq!(Cluster::new(0).unwrap_err(), EngineError::NoWorkers);
    }

    #[test]
    fn stage_results_are_in_input_order() {
        let c = Cluster::new(4).unwrap();
        let out = c
            .run_stage((0..100).collect(), |i, x: i32| {
                // jitter completion order
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * 2
            })
            .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_stage_is_fine() {
        let c = Cluster::new(2).unwrap();
        let out: Vec<i32> = c.run_stage(Vec::<i32>::new(), |_, x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_task_reports_failure_not_hang() {
        let c = Cluster::new(2).unwrap();
        let err = c
            .run_stage(vec![1, 2, 3], |i, x: i32| {
                if i == 1 {
                    panic!("boom");
                }
                x
            })
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::WorkerFailed {
                task: 1,
                message: Some("boom".into())
            }
        );
        // cluster still works after a panic
        let ok = c.run_stage(vec![5], |_, x: i32| x + 1).unwrap();
        assert_eq!(ok, vec![6]);
    }

    #[test]
    fn panic_payload_string_is_captured() {
        let c = Cluster::new(2).unwrap();
        let err = c
            .run_stage(vec![7], |i, _: i32| -> i32 { panic!("task {i} exploded") })
            .unwrap_err();
        match err {
            EngineError::WorkerFailed { task, message } => {
                assert_eq!(task, 0);
                assert_eq!(message.as_deref(), Some("task 0 exploded"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn try_stage_collects_ok_results_in_order() {
        let c = Cluster::new(4).unwrap();
        let out = c
            .try_run_stage((0..50).collect(), |_, x: i32| Ok::<_, String>(x + 1))
            .unwrap();
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn try_stage_propagates_lowest_task_error() {
        let c = Cluster::new(4).unwrap();
        let err = c
            .try_run_stage((0..20).collect(), |i, x: i32| {
                if i % 7 == 3 {
                    Err(format!("task {i} refused"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        // failures at 3, 10, 17 — the lowest wins, deterministically
        assert_eq!(
            err,
            StageError::Task {
                task: 3,
                error: "task 3 refused".to_string()
            }
        );
    }

    #[test]
    fn try_stage_lowest_index_wins_between_panic_and_error() {
        let c = Cluster::new(4).unwrap();
        let err = c
            .try_run_stage(vec![0, 1, 2, 3], |i, x: i32| {
                if i == 1 {
                    panic!("later panic loses");
                }
                if i == 0 {
                    return Err("first error wins".to_string());
                }
                Ok(x)
            })
            .unwrap_err();
        assert_eq!(
            err,
            StageError::Task {
                task: 0,
                error: "first error wins".to_string()
            }
        );
    }

    #[test]
    fn try_stage_panic_surfaces_as_engine_error() {
        let c = Cluster::new(2).unwrap();
        let err = c
            .try_run_stage(vec![1], |_, _: i32| -> Result<i32, String> {
                panic!("strategy exploded")
            })
            .unwrap_err();
        assert_eq!(
            err,
            StageError::Engine(EngineError::WorkerFailed {
                task: 0,
                message: Some("strategy exploded".into())
            })
        );
    }

    #[test]
    fn metrics_count_stages_and_tasks() {
        let c = Cluster::new(2).unwrap();
        c.run_stage(vec![1, 2, 3], |_, x: i32| x).unwrap();
        c.run_stage(vec![1], |_, x: i32| x).unwrap();
        let m = c.metrics();
        assert_eq!(m.stages, 2);
        assert_eq!(m.tasks, 4);
        assert_eq!(m.workers, 2);
        assert!(m.wall_nanos > 0);
        // every task ran on some worker
        let per_worker: u64 = c.worker_metrics().iter().map(|w| w.tasks).sum();
        assert_eq!(per_worker, 4);
    }

    #[test]
    fn registry_backed_cluster_records_distributions() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = Cluster::with_metrics(3, Arc::clone(&registry)).unwrap();
        c.run_stage((0..24).collect(), |_, x: i32| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x
        })
        .unwrap();
        let snap = registry.snapshot();
        let width = snap.histogram("engine.stage_width").expect("stage width");
        assert_eq!(width.count(), 1);
        assert_eq!(width.max(), 24);
        let recorded: u64 = (0..3)
            .filter_map(|w| {
                snap.histogram_labeled("engine.task_nanos", "worker", &w.to_string())
                    .map(|h| h.count())
            })
            .sum();
        assert_eq!(recorded, 24, "every task lands in some worker histogram");
        // queue-wait histograms exist for the workers that ran tasks
        assert!((0..3).any(|w| {
            snap.histogram_labeled("engine.queue_wait_nanos", "worker", &w.to_string())
                .is_some_and(|h| h.count() > 0)
        }));
    }

    #[test]
    fn default_parallelism_has_at_least_two_workers() {
        let c = Cluster::with_default_parallelism().unwrap();
        assert!(c.worker_count() >= 2);
    }

    #[test]
    fn drop_joins_cleanly() {
        let c = Cluster::new(3).unwrap();
        c.run_stage(vec![1, 2], |_, x: i32| x).unwrap();
        drop(c); // must not deadlock
    }

    #[test]
    fn stages_can_nest_across_clusters() {
        let outer = Cluster::new(2).unwrap();
        let out = outer
            .run_stage(vec![10, 20], |_, x: i32| {
                let inner = Cluster::new(2).unwrap();
                inner
                    .run_stage(vec![x, x + 1], |_, y: i32| y * 10)
                    .unwrap()
                    .into_iter()
                    .sum::<i32>()
            })
            .unwrap();
        assert_eq!(out, vec![210, 410]);
    }
}
