//! Reusable broadcast / gather buffers for cluster-backed operators.
//!
//! Every `y = A·x` product of [`ParallelLaplacian`](crate::ParallelLaplacian)
//! and [`ParallelCsr`](crate::ParallelCsr) used to allocate a fresh
//! broadcast copy of `x` plus one output `Vec` per row block — at
//! hundreds of products per Lanczos solve, that dominated the
//! allocator profile of the "with engine" configuration. The scratch
//! here recycles both: the broadcast `Arc<Vec<f64>>` is reclaimed with
//! [`Arc::try_unwrap`] once the stage's tasks have dropped their
//! clones, and the per-block output buffers ride through the stage as
//! task inputs and come back as part of the results.
//!
//! The buffers are behaviourally invisible: contents are fully
//! overwritten per product, so results are bit-identical to the
//! allocating path.

use std::sync::{Arc, Mutex};

/// Pooled buffers shared (behind a mutex) by all clones of one
/// operator. Contention is negligible: the lock is held only while
/// checking buffers in and out, never across the stage itself.
#[derive(Debug, Default)]
pub(crate) struct ApplyScratch {
    /// Last product's broadcast vector, reclaimed when uniquely owned.
    x_buf: Option<Arc<Vec<f64>>>,
    /// Per-block output buffers from previous products.
    out_pool: Vec<Vec<f64>>,
}

impl ApplyScratch {
    /// A fresh shareable pool.
    pub(crate) fn shared() -> Arc<Mutex<ApplyScratch>> {
        Arc::new(Mutex::new(ApplyScratch::default()))
    }
}

/// The broadcast vector plus per-block output buffers tagged with
/// their block index, as shipped through a stage.
pub(crate) type StageBuffers = (Arc<Vec<f64>>, Vec<(usize, Vec<f64>)>);

/// Checks out the broadcast buffer (filled with `x`) and `blocks`
/// output buffers paired with their block index, ready to be shipped
/// through a stage.
pub(crate) fn checkout(scratch: &Mutex<ApplyScratch>, x: &[f64], blocks: usize) -> StageBuffers {
    let mut s = scratch.lock().expect("apply scratch lock");
    let mut xv = s
        .x_buf
        .take()
        .and_then(|a| Arc::try_unwrap(a).ok())
        .unwrap_or_default();
    xv.clear();
    xv.extend_from_slice(x);
    let inputs = (0..blocks)
        .map(|bi| (bi, s.out_pool.pop().unwrap_or_default()))
        .collect();
    (Arc::new(xv), inputs)
}

/// Copies the stage's pieces into `y` and returns every buffer to the
/// pool for the next product.
pub(crate) fn retire(
    scratch: &Mutex<ApplyScratch>,
    xs: Arc<Vec<f64>>,
    pieces: Vec<(usize, Vec<f64>)>,
    y: &mut [f64],
) {
    let mut s = scratch.lock().expect("apply scratch lock");
    for (start, piece) in pieces {
        y[start..start + piece.len()].copy_from_slice(&piece);
        s.out_pool.push(piece);
    }
    s.x_buf = Some(xs);
}
