//! Engine error type.

use std::error::Error;
use std::fmt;

/// Errors raised when configuring or driving the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A cluster needs at least one worker.
    NoWorkers,
    /// A partitioned structure needs at least one partition.
    NoPartitions,
    /// A worker panicked while executing a task; the stage result is
    /// unusable.
    WorkerFailed {
        /// Index of the failed task within its stage.
        task: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoWorkers => f.write_str("cluster requires at least one worker"),
            EngineError::NoPartitions => f.write_str("at least one partition is required"),
            EngineError::WorkerFailed { task } => {
                write!(f, "worker failed while executing task {task}")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::NoWorkers.to_string(),
            "cluster requires at least one worker"
        );
        assert!(EngineError::WorkerFailed { task: 3 }
            .to_string()
            .contains("task 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
