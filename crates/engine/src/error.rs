//! Engine error type.

use std::error::Error;
use std::fmt;

/// Errors raised when configuring or driving the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A cluster needs at least one worker.
    NoWorkers,
    /// A partitioned structure needs at least one partition.
    NoPartitions,
    /// A worker panicked while executing a task; the stage result is
    /// unusable.
    WorkerFailed {
        /// Index of the failed task within its stage.
        task: usize,
        /// The panic payload, when it was a string (the common case for
        /// `panic!`/`assert!`); `None` for non-string payloads.
        message: Option<String>,
    },
    /// The worker pool's threads are gone, so a task could not even be
    /// submitted.
    PoolShutDown,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoWorkers => f.write_str("cluster requires at least one worker"),
            EngineError::NoPartitions => f.write_str("at least one partition is required"),
            EngineError::WorkerFailed {
                task,
                message: Some(msg),
            } => {
                write!(f, "worker failed while executing task {task}: {msg}")
            }
            EngineError::WorkerFailed {
                task,
                message: None,
            } => {
                write!(f, "worker failed while executing task {task}")
            }
            EngineError::PoolShutDown => {
                f.write_str("worker pool has shut down; no task can be submitted")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::NoWorkers.to_string(),
            "cluster requires at least one worker"
        );
        assert!(EngineError::WorkerFailed {
            task: 3,
            message: None
        }
        .to_string()
        .contains("task 3"));
        let with_payload = EngineError::WorkerFailed {
            task: 3,
            message: Some("boom".into()),
        }
        .to_string();
        assert!(with_payload.contains("task 3") && with_payload.contains("boom"));
        assert!(EngineError::PoolShutDown.to_string().contains("shut down"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
