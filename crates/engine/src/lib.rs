//! A miniature deterministic data-parallel compute engine — the
//! workspace's stand-in for Apache Spark.
//!
//! The paper evaluates its spectral offloading algorithm twice: once
//! serially ("our algorithm without Spark") and once with the Laplacian
//! matrix products distributed over Spark (Fig. 9). Reproducing that
//! contrast needs a data-parallel engine, not a cloud: this crate
//! provides a persistent worker pool ([`Cluster`]), a partitioned
//! dataset abstraction ([`Dataset`]) with `map` / `reduce` /
//! `collect` stages, and [`ParallelLaplacian`] — a
//! [`SymOp`](mec_linalg::SymOp) whose matrix-vector products are
//! sharded across the cluster exactly the way the paper shards its
//! matrix multiplications.
//!
//! Everything is deterministic: stage results are reassembled in
//! partition order regardless of worker scheduling.
//!
//! # Example
//!
//! ```
//! use mec_engine::{Cluster, Dataset};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), mec_engine::EngineError> {
//! let cluster = Arc::new(Cluster::new(4)?);
//! let squares: i64 = Dataset::from_vec(Arc::clone(&cluster), (1..=100).collect(), 8)
//!     .map(|x| x * x)
//!     .reduce(0, |a, b| a + b);
//! assert_eq!(squares, 338_350);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply_scratch;
mod cluster;
mod dataset;
mod error;
mod metrics;
mod parallel_csr;
mod parallel_op;

pub use cluster::{Cluster, StageError};
pub use dataset::Dataset;
pub use error::EngineError;
pub use metrics::{MetricsSnapshot, WorkerSnapshot};
pub use parallel_csr::ParallelCsr;
pub use parallel_op::ParallelLaplacian;
