//! Execution metrics: how much work the cluster actually did, and how
//! it was distributed across workers.
//!
//! Two tiers live here. The *facade* tier — [`MetricsSnapshot`] and
//! [`WorkerSnapshot`] — is plain `Copy` data readable without any
//! registry, preserved from the original three-counter design. The
//! *distribution* tier records per-worker task-latency and queue-wait
//! histograms plus stage fan-out width into an
//! [`mec_obs::MetricsRegistry`] when the cluster was built with
//! [`Cluster::with_metrics`](crate::Cluster::with_metrics); without a
//! registry those handles are inert and recording costs a branch.

use mec_obs::metrics::{CounterHandle, HistogramHandle, MetricsRegistry};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-worker registry handles (inert without a registry).
#[derive(Debug, Default)]
struct WorkerHandles {
    task_nanos: HistogramHandle,
    queue_wait_nanos: HistogramHandle,
    busy_nanos: CounterHandle,
}

/// Per-worker atomic counters.
#[derive(Debug, Default)]
struct WorkerCell {
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
}

/// Internal shared metrics: aggregate atomics, per-worker cells, and
/// optional registry handles.
#[derive(Debug)]
pub(crate) struct Metrics {
    start: Instant,
    stages: AtomicU64,
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
    queue_nanos: AtomicU64,
    workers: Vec<WorkerCell>,
    handles: Vec<WorkerHandles>,
    stage_width: HistogramHandle,
}

impl Metrics {
    /// Metrics for `workers` threads, wired into `registry` when given.
    pub(crate) fn new(workers: usize, registry: Option<&MetricsRegistry>) -> Self {
        let handles = (0..workers)
            .map(|i| match registry {
                Some(r) => WorkerHandles {
                    task_nanos: r.histogram_labeled("engine.task_nanos", "worker", i.to_string()),
                    queue_wait_nanos: r.histogram_labeled(
                        "engine.queue_wait_nanos",
                        "worker",
                        i.to_string(),
                    ),
                    busy_nanos: r.counter_labeled(
                        "engine.worker_busy_nanos",
                        "worker",
                        i.to_string(),
                    ),
                },
                None => WorkerHandles::default(),
            })
            .collect();
        Metrics {
            start: Instant::now(),
            stages: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            queue_nanos: AtomicU64::new(0),
            workers: (0..workers).map(|_| WorkerCell::default()).collect(),
            handles,
            stage_width: registry
                .map(|r| r.histogram("engine.stage_width"))
                .unwrap_or_default(),
        }
    }

    /// Records one completed task: which worker ran it, how long it
    /// computed, and how long it sat queued first.
    pub(crate) fn record_task(&self, worker: usize, busy: Duration, queue_wait: Duration) {
        let busy_ns = busy.as_nanos() as u64;
        let wait_ns = queue_wait.as_nanos() as u64;
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy_ns, Ordering::Relaxed);
        self.queue_nanos.fetch_add(wait_ns, Ordering::Relaxed);
        if let Some(cell) = self.workers.get(worker) {
            cell.tasks.fetch_add(1, Ordering::Relaxed);
            cell.busy_nanos.fetch_add(busy_ns, Ordering::Relaxed);
        }
        if let Some(h) = self.handles.get(worker) {
            h.task_nanos.record(busy_ns);
            h.queue_wait_nanos.record(wait_ns);
            h.busy_nanos.add(busy_ns);
        }
    }

    /// Records one submitted stage and its fan-out width.
    pub(crate) fn record_stage(&self, width: usize) {
        self.stages.fetch_add(1, Ordering::Relaxed);
        self.stage_width.record(width as u64);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            queue_nanos: self.queue_nanos.load(Ordering::Relaxed),
            workers: self.workers.len() as u64,
            wall_nanos: self.start.elapsed().as_nanos() as u64,
        }
    }

    pub(crate) fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, c)| WorkerSnapshot {
                worker: i as u64,
                tasks: c.tasks.load(Ordering::Relaxed),
                busy_nanos: c.busy_nanos.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// A point-in-time copy of the cluster's execution counters.
///
/// Still `Copy` and field-compatible with the original three-counter
/// snapshot (`stages` / `tasks` / `busy_nanos`); the added fields carry
/// enough context to turn cumulative nanos into utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Stages executed since cluster start.
    pub stages: u64,
    /// Tasks executed since cluster start.
    pub tasks: u64,
    /// Cumulative wall time workers spent inside tasks, in nanoseconds.
    pub busy_nanos: u64,
    /// Cumulative time tasks waited in the queue before a worker picked
    /// them up, in nanoseconds.
    pub queue_nanos: u64,
    /// Number of worker threads in the cluster.
    pub workers: u64,
    /// Wall time since the cluster started, in nanoseconds, measured at
    /// snapshot time.
    pub wall_nanos: u64,
}

impl MetricsSnapshot {
    /// Mean task duration in nanoseconds; `0` when no task ran yet.
    pub fn mean_task_nanos(&self) -> u64 {
        self.busy_nanos.checked_div(self.tasks).unwrap_or(0)
    }

    /// Mean queue wait per task in nanoseconds; `0` when no task ran.
    pub fn mean_queue_wait_nanos(&self) -> u64 {
        self.queue_nanos.checked_div(self.tasks).unwrap_or(0)
    }

    /// Busy fraction per worker over an explicit wall-clock window:
    /// `busy_nanos / (workers · wall)`, clamped to `[0, 1]`. Returns
    /// `0.0` for an empty window or a worker-less snapshot.
    pub fn utilization(&self, wall: Duration) -> f64 {
        let wall_ns = wall.as_nanos() as f64;
        if wall_ns <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / (self.workers as f64 * wall_ns)).clamp(0.0, 1.0)
    }

    /// [`utilization`](Self::utilization) over the snapshot's own
    /// cluster lifetime (`wall_nanos`).
    pub fn lifetime_utilization(&self) -> f64 {
        self.utilization(Duration::from_nanos(self.wall_nanos))
    }

    /// Re-emits these counters on a trace sink (`engine.stages`,
    /// `engine.tasks`, `engine.busy_nanos`, `engine.queue_nanos`). The
    /// sink's counters are monotonic, so call this once per snapshot —
    /// typically right before exporting a trace.
    pub fn emit_to(&self, sink: &dyn mec_obs::TraceSink) {
        sink.counter_add("engine.stages", self.stages);
        sink.counter_add("engine.tasks", self.tasks);
        sink.counter_add("engine.busy_nanos", self.busy_nanos);
        sink.counter_add("engine.queue_nanos", self.queue_nanos);
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stages, {} tasks on {} workers, {:.3} ms busy \
             (mean task {} ns, mean queue wait {} ns, {:.1}% busy/worker)",
            self.stages,
            self.tasks,
            self.workers,
            self.busy_nanos as f64 / 1e6,
            self.mean_task_nanos(),
            self.mean_queue_wait_nanos(),
            self.lifetime_utilization() * 100.0,
        )
    }
}

/// Per-worker slice of the execution counters, from
/// [`Cluster::worker_metrics`](crate::Cluster::worker_metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Worker index (matches the `worker` label in the registry).
    pub worker: u64,
    /// Tasks this worker completed.
    pub tasks: u64,
    /// Wall time this worker spent inside tasks, in nanoseconds.
    pub busy_nanos: u64,
}

impl WorkerSnapshot {
    /// This worker's busy fraction over `wall`, clamped to `[0, 1]`.
    pub fn busy_fraction(&self, wall: Duration) -> f64 {
        let wall_ns = wall.as_nanos() as f64;
        if wall_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / wall_ns).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new(2, None);
        m.record_stage(3);
        m.record_task(0, Duration::from_nanos(100), Duration::from_nanos(10));
        m.record_task(1, Duration::from_nanos(300), Duration::from_nanos(30));
        let s = m.snapshot();
        assert_eq!(s.stages, 1);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.busy_nanos, 400);
        assert_eq!(s.queue_nanos, 40);
        assert_eq!(s.workers, 2);
        assert_eq!(s.mean_task_nanos(), 200);
        assert_eq!(s.mean_queue_wait_nanos(), 20);
        let w = m.worker_snapshots();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].tasks, 1);
        assert_eq!(w[0].busy_nanos, 100);
        assert_eq!(w[1].busy_nanos, 300);
    }

    #[test]
    fn empty_snapshot_mean_is_zero() {
        assert_eq!(MetricsSnapshot::default().mean_task_nanos(), 0);
        assert_eq!(MetricsSnapshot::default().mean_queue_wait_nanos(), 0);
    }

    #[test]
    fn utilization_is_busy_over_workers_times_wall() {
        let s = MetricsSnapshot {
            stages: 1,
            tasks: 4,
            busy_nanos: 2_000_000,
            queue_nanos: 0,
            workers: 4,
            wall_nanos: 1_000_000,
        };
        // 2 ms busy spread over 4 workers for a 1 ms window: 50 %
        assert!((s.utilization(Duration::from_nanos(1_000_000)) - 0.5).abs() < 1e-12);
        assert!((s.lifetime_utilization() - 0.5).abs() < 1e-12);
        // degenerate inputs stay in range
        assert_eq!(s.utilization(Duration::ZERO), 0.0);
        assert_eq!(
            MetricsSnapshot::default().utilization(Duration::from_secs(1)),
            0.0
        );
        let overfull = MetricsSnapshot {
            busy_nanos: u64::MAX,
            workers: 1,
            wall_nanos: 1,
            ..MetricsSnapshot::default()
        };
        assert_eq!(overfull.utilization(Duration::from_nanos(1)), 1.0);
    }

    #[test]
    fn worker_busy_fraction_is_clamped() {
        let w = WorkerSnapshot {
            worker: 0,
            tasks: 2,
            busy_nanos: 500,
        };
        assert!((w.busy_fraction(Duration::from_nanos(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(w.busy_fraction(Duration::ZERO), 0.0);
        assert_eq!(w.busy_fraction(Duration::from_nanos(100)), 1.0);
    }

    #[test]
    fn display_covers_all_counters_and_utilization() {
        let s = MetricsSnapshot {
            stages: 2,
            tasks: 4,
            busy_nanos: 8_000_000,
            queue_nanos: 400,
            workers: 4,
            wall_nanos: 4_000_000,
        };
        let text = s.to_string();
        assert!(text.contains("2 stages"), "{text}");
        assert!(text.contains("4 tasks"), "{text}");
        assert!(text.contains("4 workers"), "{text}");
        assert!(text.contains("2000000 ns"), "{text}");
        assert!(text.contains("50.0% busy/worker"), "{text}");
    }

    #[test]
    fn emit_to_forwards_counters() {
        let rec = mec_obs::Recorder::new();
        let s = MetricsSnapshot {
            stages: 3,
            tasks: 7,
            busy_nanos: 100,
            queue_nanos: 40,
            workers: 2,
            wall_nanos: 0,
        };
        s.emit_to(&rec);
        assert_eq!(rec.counter_value("engine.stages"), 3);
        assert_eq!(rec.counter_value("engine.tasks"), 7);
        assert_eq!(rec.counter_value("engine.busy_nanos"), 100);
        assert_eq!(rec.counter_value("engine.queue_nanos"), 40);
    }

    #[test]
    fn registry_receives_per_worker_distributions() {
        let registry = MetricsRegistry::new();
        let m = Metrics::new(2, Some(&registry));
        m.record_stage(4);
        m.record_task(0, Duration::from_nanos(1_000), Duration::from_nanos(50));
        m.record_task(0, Duration::from_nanos(3_000), Duration::from_nanos(70));
        m.record_task(1, Duration::from_nanos(2_000), Duration::from_nanos(60));
        let snap = registry.snapshot();
        let w0 = snap
            .histogram_labeled("engine.task_nanos", "worker", "0")
            .expect("worker 0 histogram");
        assert_eq!(w0.count(), 2);
        assert_eq!(w0.max(), 3_000);
        let w1 = snap
            .histogram_labeled("engine.queue_wait_nanos", "worker", "1")
            .expect("worker 1 queue histogram");
        assert_eq!(w1.count(), 1);
        assert_eq!(
            snap.counter_labeled("engine.worker_busy_nanos", "worker", "0"),
            Some(4_000)
        );
        let width = snap.histogram("engine.stage_width").expect("stage width");
        assert_eq!(width.count(), 1);
        assert_eq!(width.max(), 4);
    }
}
