//! Execution metrics: how much work the cluster actually did.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters shared between workers.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub(crate) stages: AtomicU64,
    pub(crate) tasks: AtomicU64,
    pub(crate) busy_nanos: AtomicU64,
}

impl Metrics {
    pub(crate) fn record_task(&self, nanos: u64) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_stage(&self) {
        self.stages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the cluster's execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Stages executed since cluster start.
    pub stages: u64,
    /// Tasks executed since cluster start.
    pub tasks: u64,
    /// Cumulative wall time workers spent inside tasks, in nanoseconds.
    pub busy_nanos: u64,
}

impl MetricsSnapshot {
    /// Mean task duration in nanoseconds; `0` when no task ran yet.
    pub fn mean_task_nanos(&self) -> u64 {
        self.busy_nanos.checked_div(self.tasks).unwrap_or(0)
    }

    /// Re-emits these counters on a trace sink (`engine.stages`,
    /// `engine.tasks`, `engine.busy_nanos`). The sink's counters are
    /// monotonic, so call this once per snapshot — typically right
    /// before exporting a trace.
    pub fn emit_to(&self, sink: &dyn mec_obs::TraceSink) {
        sink.counter_add("engine.stages", self.stages);
        sink.counter_add("engine.tasks", self.tasks);
        sink.counter_add("engine.busy_nanos", self.busy_nanos);
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stages, {} tasks, {:.3} ms busy (mean task {} ns)",
            self.stages,
            self.tasks,
            self.busy_nanos as f64 / 1e6,
            self.mean_task_nanos()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.record_stage();
        m.record_task(100);
        m.record_task(300);
        let s = m.snapshot();
        assert_eq!(s.stages, 1);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.busy_nanos, 400);
        assert_eq!(s.mean_task_nanos(), 200);
    }

    #[test]
    fn empty_snapshot_mean_is_zero() {
        assert_eq!(MetricsSnapshot::default().mean_task_nanos(), 0);
    }

    #[test]
    fn display_covers_all_counters() {
        let s = MetricsSnapshot {
            stages: 2,
            tasks: 4,
            busy_nanos: 8_000_000,
        };
        let text = s.to_string();
        assert!(text.contains("2 stages"));
        assert!(text.contains("4 tasks"));
        assert!(text.contains("2000000 ns"));
    }

    #[test]
    fn emit_to_forwards_counters() {
        let rec = mec_obs::Recorder::new();
        let s = MetricsSnapshot {
            stages: 3,
            tasks: 7,
            busy_nanos: 100,
        };
        s.emit_to(&rec);
        assert_eq!(rec.counter_value("engine.stages"), 3);
        assert_eq!(rec.counter_value("engine.tasks"), 7);
        assert_eq!(rec.counter_value("engine.busy_nanos"), 100);
    }
}
