//! Cluster-backed general sparse symmetric matrices.
//!
//! [`ParallelLaplacian`](crate::ParallelLaplacian) is specialised to
//! graph Laplacians; [`ParallelCsr`] distributes *any* symmetric CSR
//! matrix the same way — one row-block task per stage — so the engine
//! can accelerate arbitrary `mec-linalg` workloads (CG solves,
//! non-Laplacian spectra).

use crate::apply_scratch::{self, ApplyScratch};
use crate::{Cluster, EngineError};
use mec_linalg::{CsrMatrix, SymOp};
use std::sync::{Arc, Mutex};

/// One contiguous block of matrix rows.
#[derive(Debug)]
struct CsrBlock {
    start: usize,
    offsets: Vec<usize>,
    columns: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBlock {
    fn apply(&self, x: &[f64], out: &mut Vec<f64>) {
        let rows = self.offsets.len() - 1;
        out.clear();
        out.resize(rows, 0.0);
        mec_linalg::kernels::csr_matvec(&self.offsets, &self.columns, &self.values, x, out);
    }
}

/// A symmetric CSR matrix whose matrix-vector products run as one task
/// per row block on a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ParallelCsr {
    cluster: Arc<Cluster>,
    blocks: Arc<Vec<CsrBlock>>,
    dim: usize,
    /// Recycled broadcast / gather buffers, shared by clones.
    scratch: Arc<Mutex<ApplyScratch>>,
}

impl ParallelCsr {
    /// Shards `matrix` into `blocks` row blocks on `cluster`.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoPartitions`] when `blocks == 0`.
    pub fn new(
        cluster: Arc<Cluster>,
        matrix: &CsrMatrix,
        blocks: usize,
    ) -> Result<Self, EngineError> {
        if blocks == 0 {
            return Err(EngineError::NoPartitions);
        }
        let n = matrix.dim();
        let b = blocks.min(n.max(1));
        let rows_per = n.div_ceil(b.max(1)).max(1);
        let mut shards = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + rows_per).min(n);
            let mut offsets = vec![0usize];
            let mut columns = Vec::new();
            let mut values = Vec::new();
            for r in start..end {
                for (c, v) in matrix.row(r) {
                    columns.push(c);
                    values.push(v);
                }
                offsets.push(columns.len());
            }
            shards.push(CsrBlock {
                start,
                offsets,
                columns,
                values,
            });
            start = end;
        }
        if shards.is_empty() {
            shards.push(CsrBlock {
                start: 0,
                offsets: vec![0],
                columns: vec![],
                values: vec![],
            });
        }
        Ok(ParallelCsr {
            cluster,
            blocks: Arc::new(shards),
            dim: n,
            scratch: ApplyScratch::shared(),
        })
    }

    /// Number of row blocks (= tasks per product).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl SymOp for ParallelCsr {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "x length mismatch");
        assert_eq!(y.len(), self.dim, "y length mismatch");
        let (xs, inputs) = apply_scratch::checkout(&self.scratch, x, self.blocks.len());
        let blocks = Arc::clone(&self.blocks);
        let xs_stage = Arc::clone(&xs);
        let pieces = self
            .cluster
            .run_stage(inputs, move |_, (bi, mut out)| {
                blocks[bi].apply(&xs_stage, &mut out);
                (blocks[bi].start, out)
            })
            .expect("csr stage does not panic");
        apply_scratch::retire(&self.scratch, xs, pieces, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_linalg::{smallest_eigenpairs, ConjugateGradient, LanczosOptions};

    fn cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(3).unwrap())
    }

    fn spd_matrix(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0 + (i % 4) as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &t).unwrap()
    }

    #[test]
    fn matches_serial_matvec() {
        let m = spd_matrix(41);
        let par = ParallelCsr::new(cluster(), &m, 5).unwrap();
        let x: Vec<f64> = (0..41).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut ys = vec![0.0; 41];
        let mut yp = vec![0.0; 41];
        m.apply(&x, &mut ys);
        par.apply(&x, &mut yp);
        for (a, b) in ys.iter().zip(&yp) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn cg_runs_on_the_parallel_backend() {
        let m = spd_matrix(30);
        let par = ParallelCsr::new(cluster(), &m, 4).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64).cos()).collect();
        let serial = ConjugateGradient::new().solve(&m, &b).unwrap();
        let parallel = ConjugateGradient::new().solve(&par, &b).unwrap();
        for (a, c) in serial.solution.iter().zip(&parallel.solution) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn eigensolver_runs_on_the_parallel_backend() {
        let m = spd_matrix(50);
        let par = ParallelCsr::new(cluster(), &m, 6).unwrap();
        let opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let serial = smallest_eigenpairs(&m, 2, &opts).unwrap();
        let parallel = smallest_eigenpairs(&par, 2, &opts).unwrap();
        assert!((serial[0].value - parallel[0].value).abs() < 1e-9);
        assert!((serial[1].value - parallel[1].value).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_blocks_and_handles_empty() {
        let m = spd_matrix(4);
        assert_eq!(
            ParallelCsr::new(cluster(), &m, 0).unwrap_err(),
            EngineError::NoPartitions
        );
        let empty = CsrMatrix::from_triplets(0, &[]).unwrap();
        let par = ParallelCsr::new(cluster(), &empty, 2).unwrap();
        assert_eq!(par.dim(), 0);
        let mut y: Vec<f64> = vec![];
        par.apply(&[], &mut y);
    }
}
