//! A partitioned dataset with Spark-style transformations.

use crate::Cluster;
use std::sync::Arc;

/// An in-memory dataset split into partitions and processed in
/// parallel on a [`Cluster`] — the engine's RDD analogue.
///
/// Transformations (`map`, `filter`, `zip_with`) run one task per
/// partition; actions (`reduce`, `collect`, `count`) gather results
/// deterministically in partition order.
#[derive(Debug, Clone)]
pub struct Dataset<T> {
    cluster: Arc<Cluster>,
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T: Send + Sync + Clone + 'static> Dataset<T> {
    /// Splits `data` into `partitions` contiguous chunks on `cluster`.
    ///
    /// The chunk count is clamped to at least 1 and at most
    /// `data.len().max(1)`.
    pub fn from_vec(cluster: Arc<Cluster>, data: Vec<T>, partitions: usize) -> Self {
        let p = partitions.clamp(1, data.len().max(1));
        let chunk = data.len().div_ceil(p);
        let mut parts = Vec::with_capacity(p);
        let mut rest = data;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(chunk));
            parts.push(Arc::new(rest));
            rest = tail;
        }
        if parts.is_empty() {
            parts.push(Arc::new(Vec::new()));
        }
        Dataset {
            cluster,
            partitions: parts,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Applies `f` to every element, in parallel per partition.
    ///
    /// # Panics
    ///
    /// Panics if a worker task panics (surfacing the underlying stage
    /// failure).
    pub fn map<R, F>(&self, f: F) -> Dataset<R>
    where
        R: Send + Sync + Clone + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let parts = self
            .cluster
            .run_stage(self.partitions.clone(), move |_, p| {
                Arc::new(p.iter().map(&f).collect::<Vec<R>>())
            })
            .expect("map stage failed");
        Dataset {
            cluster: Arc::clone(&self.cluster),
            partitions: parts,
        }
    }

    /// Keeps the elements satisfying `pred`, in parallel per partition.
    ///
    /// # Panics
    ///
    /// Panics if a worker task panics.
    pub fn filter<F>(&self, pred: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let parts = self
            .cluster
            .run_stage(self.partitions.clone(), move |_, p| {
                Arc::new(p.iter().filter(|x| pred(x)).cloned().collect::<Vec<T>>())
            })
            .expect("filter stage failed");
        Dataset {
            cluster: Arc::clone(&self.cluster),
            partitions: parts,
        }
    }

    /// Folds every element into `identity` with `combine`, reducing
    /// each partition in parallel and then combining the partials in
    /// partition order. `combine` must be associative with `identity`
    /// as its unit for the result to be well-defined.
    ///
    /// # Panics
    ///
    /// Panics if a worker task panics.
    pub fn reduce<F>(&self, identity: T, combine: F) -> T
    where
        F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
    {
        let id = identity.clone();
        let c = combine.clone();
        let partials = self
            .cluster
            .run_stage(self.partitions.clone(), move |_, p| {
                p.iter().cloned().fold(id.clone(), &c)
            })
            .expect("reduce stage failed");
        partials.into_iter().fold(identity, combine)
    }

    /// Applies `f` to whole partitions at once — the engine's
    /// `mapPartitions`: useful when per-element closures would repeat
    /// setup work.
    ///
    /// # Panics
    ///
    /// Panics if a worker task panics.
    pub fn map_partitions<R, F>(&self, f: F) -> Dataset<R>
    where
        R: Send + Sync + Clone + 'static,
        F: Fn(&[T]) -> Vec<R> + Send + Sync + 'static,
    {
        let parts = self
            .cluster
            .run_stage(self.partitions.clone(), move |_, p| Arc::new(f(&p)))
            .expect("map_partitions stage failed");
        Dataset {
            cluster: Arc::clone(&self.cluster),
            partitions: parts,
        }
    }

    /// Element-wise combination with another dataset of the same
    /// length (`zip` + `map` in one stage). Partition boundaries need
    /// not match; the right side is re-chunked to align.
    ///
    /// # Panics
    ///
    /// Panics if the datasets have different lengths or a worker task
    /// panics.
    pub fn zip_with<U, R, F>(&self, other: &Dataset<U>, f: F) -> Dataset<R>
    where
        U: Send + Sync + Clone + 'static,
        R: Send + Sync + Clone + 'static,
        F: Fn(&T, &U) -> R + Send + Sync + 'static,
    {
        assert_eq!(self.count(), other.count(), "zip_with length mismatch");
        // align the right side to the left's partition boundaries
        let rhs_all: Arc<Vec<U>> = Arc::new(other.collect());
        let mut offsets = Vec::with_capacity(self.partitions.len());
        let mut acc = 0usize;
        for p in &self.partitions {
            offsets.push(acc);
            acc += p.len();
        }
        let inputs: Vec<(Arc<Vec<T>>, usize)> =
            self.partitions.iter().cloned().zip(offsets).collect();
        let parts = self
            .cluster
            .run_stage(inputs, move |_, (p, off)| {
                Arc::new(
                    p.iter()
                        .enumerate()
                        .map(|(i, x)| f(x, &rhs_all[off + i]))
                        .collect::<Vec<R>>(),
                )
            })
            .expect("zip_with stage failed");
        Dataset {
            cluster: Arc::clone(&self.cluster),
            partitions: parts,
        }
    }

    /// Concatenates all partitions back into one vector, in order.
    pub fn collect(&self) -> Vec<T> {
        self.partitions
            .iter()
            .flat_map(|p| p.iter().cloned())
            .collect()
    }
}

impl Dataset<f64> {
    /// Parallel sum of an `f64` dataset.
    pub fn sum(&self) -> f64 {
        self.reduce(0.0, |a, b| a + b)
    }

    /// Parallel maximum; `None` for an empty dataset.
    pub fn max(&self) -> Option<f64> {
        if self.count() == 0 {
            return None;
        }
        Some(self.reduce(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(3).unwrap())
    }

    #[test]
    fn partitioning_is_contiguous_and_complete() {
        let d = Dataset::from_vec(cluster(), (0..10).collect(), 3);
        assert_eq!(d.partition_count(), 3);
        assert_eq!(d.count(), 10);
        assert_eq!(d.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn excess_partitions_are_clamped() {
        let d = Dataset::from_vec(cluster(), vec![1, 2], 10);
        assert!(d.partition_count() <= 2);
        assert_eq!(d.collect(), vec![1, 2]);
    }

    #[test]
    fn empty_dataset_works() {
        let d: Dataset<i32> = Dataset::from_vec(cluster(), vec![], 4);
        assert_eq!(d.count(), 0);
        assert_eq!(d.collect(), Vec::<i32>::new());
        assert_eq!(d.reduce(0, |a, b| a + b), 0);
    }

    #[test]
    fn map_preserves_order() {
        let d = Dataset::from_vec(cluster(), (0..50).collect(), 7);
        let doubled = d.map(|x| x * 2);
        assert_eq!(
            doubled.collect(),
            (0..50).map(|x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn filter_keeps_matching_elements_in_order() {
        let d = Dataset::from_vec(cluster(), (0..20).collect(), 4);
        let even = d.filter(|x| x % 2 == 0);
        assert_eq!(
            even.collect(),
            (0..20).filter(|x| x % 2 == 0).collect::<Vec<_>>()
        );
        assert_eq!(even.count(), 10);
    }

    #[test]
    fn reduce_sums_across_partitions() {
        let d = Dataset::from_vec(cluster(), (1..=100).collect(), 9);
        assert_eq!(d.reduce(0, |a, b| a + b), 5050);
    }

    #[test]
    fn map_partitions_sees_whole_chunks() {
        let d = Dataset::from_vec(cluster(), (0..12).collect(), 4);
        // prefix-sum inside each partition
        let scanned = d.map_partitions(|chunk| {
            let mut acc = 0;
            chunk
                .iter()
                .map(|x| {
                    acc += x;
                    acc
                })
                .collect()
        });
        assert_eq!(scanned.count(), 12);
        // the first element of each partition equals the raw value
        let flat = scanned.collect();
        assert_eq!(flat[0], 0);
    }

    #[test]
    fn zip_with_combines_elementwise() {
        let a = Dataset::from_vec(cluster(), (0..10).collect(), 3);
        let b = Dataset::from_vec(cluster(), (0..10).map(|x| x * 10).collect(), 5);
        let sum = a.zip_with(&b, |x, y| x + y);
        assert_eq!(sum.collect(), (0..10).map(|x| x * 11).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "zip_with length mismatch")]
    fn zip_with_rejects_length_mismatch() {
        let a = Dataset::from_vec(cluster(), vec![1, 2, 3], 2);
        let b = Dataset::from_vec(cluster(), vec![1, 2], 2);
        let _ = a.zip_with(&b, |x, y| x + y);
    }

    #[test]
    fn f64_helpers() {
        let d = Dataset::from_vec(cluster(), vec![1.5, -2.0, 4.25], 2);
        assert!((d.sum() - 3.75).abs() < 1e-12);
        assert_eq!(d.max(), Some(4.25));
        let empty: Dataset<f64> = Dataset::from_vec(cluster(), vec![], 2);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.sum(), 0.0);
    }

    #[test]
    fn chained_pipeline() {
        let d = Dataset::from_vec(cluster(), (1..=10).collect(), 3);
        let result = d
            .map(|x| x * x)
            .filter(|x| x % 2 == 1)
            .reduce(0, |a, b| a + b);
        // odd squares of 1..=10: 1 + 9 + 25 + 49 + 81 = 165
        assert_eq!(result, 165);
    }
}
