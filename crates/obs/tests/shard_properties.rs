//! Property-based tests for the sharded collection pipeline: exact
//! conservation of `recorded + dropped` per class under multi-thread
//! hammering at tiny ring capacities, and equality with the
//! single-threaded [`Recorder`] reference when nothing drops.

use mec_obs::{FieldValue, Recorder, ShardConfig, ShardedRecorder, TraceSink};
use proptest::prelude::*;
use std::sync::Arc;

const HAMMER_THREADS: usize = 8;

/// One thread's workload: `spans` nested spans (each carrying one
/// event and one histogram sample), then `loose_events` bare events.
#[derive(Debug, Clone)]
struct Workload {
    spans: usize,
    loose_events: usize,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (0usize..40, 0usize..40).prop_map(|(spans, loose_events)| Workload {
        spans,
        loose_events,
    })
}

fn run_workload(sink: &dyn TraceSink, w: &Workload) {
    for i in 0..w.spans {
        let guard = mec_obs::span(sink, "work.unit");
        sink.counter_add("work.count", 1);
        sink.event("work.tick", &[("i", FieldValue::U64(i as u64))]);
        sink.histogram_record("work.nanos", (i as u64 + 1) * 100);
        guard.finish();
    }
    for _ in 0..w.loose_events {
        sink.event("work.loose", &[]);
    }
}

proptest! {
    // each case spawns 8 OS threads; keep the case count moderate
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `recorded + dropped == emitted`, exactly, per class, no matter
    /// how small the rings are or how many threads hammer them.
    #[test]
    fn counts_are_conserved_under_hammering(
        workloads in proptest::collection::vec(arb_workload(), HAMMER_THREADS),
        capacity in 8usize..64,
    ) {
        let rec = Arc::new(ShardedRecorder::with_config(ShardConfig {
            shards: HAMMER_THREADS,
            capacity,
            drain_interval: None, // worst case: nothing drains mid-run
            ..ShardConfig::default()
        }));
        let handles: Vec<_> = workloads
            .iter()
            .cloned()
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || run_workload(rec.as_ref(), &w))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        rec.flush();

        let spans_emitted: usize = workloads.iter().map(|w| w.spans).sum();
        let events_emitted: usize =
            workloads.iter().map(|w| w.spans + w.loose_events).sum();
        let hist_emitted = spans_emitted;

        let dropped = rec.dropped_records();
        let spans_kept = rec.spans().len() as u64;
        let events_kept = rec.events().len() as u64;
        let hist_kept = rec
            .metrics()
            .snapshot()
            .histogram("work.nanos")
            .map_or(0, |h| h.count());

        prop_assert_eq!(spans_kept + dropped.spans, spans_emitted as u64);
        prop_assert_eq!(events_kept + dropped.events, events_emitted as u64);
        prop_assert_eq!(hist_kept + dropped.histogram_samples, hist_emitted as u64);
        // exact counters never drop, even when every ring overflows
        prop_assert_eq!(rec.counter_value("work.count"), spans_emitted as u64);
    }

    /// With ample capacity and a single recording thread, the sharded
    /// pipeline reproduces the plain `Recorder` reference exactly:
    /// same span names/nesting/count, same events in order, same
    /// histogram shape, zero drops.
    #[test]
    fn lossless_single_thread_matches_reference(w in arb_workload()) {
        let reference = Recorder::new();
        run_workload(&reference, &w);

        let sharded = ShardedRecorder::with_config(ShardConfig {
            capacity: 1 << 12,
            drain_interval: None,
            ..ShardConfig::default()
        });
        run_workload(&sharded, &w);
        sharded.flush();

        prop_assert_eq!(sharded.dropped_records().total(), 0);

        let ref_spans = reference.spans();
        let got_spans = sharded.spans();
        prop_assert_eq!(got_spans.len(), ref_spans.len());
        for (a, b) in got_spans.iter().zip(ref_spans.iter()) {
            prop_assert_eq!(a.name, b.name);
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.parent, b.parent);
            prop_assert!(a.end_ns.is_some() && b.end_ns.is_some());
        }

        let ref_events = reference.events();
        let got_events = sharded.events();
        prop_assert_eq!(got_events.len(), ref_events.len());
        for (a, b) in got_events.iter().zip(ref_events.iter()) {
            prop_assert_eq!(a.name, b.name);
            prop_assert_eq!(&a.fields, &b.fields);
        }

        let ref_hist = reference.metrics().snapshot();
        let got_hist = sharded.metrics().snapshot();
        match (ref_hist.histogram("work.nanos"), got_hist.histogram("work.nanos")) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.count(), b.count());
                prop_assert_eq!(a.sum(), b.sum());
                prop_assert_eq!(a.max(), b.max());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "histogram presence differs: {:?} vs {:?}", a.is_some(), b.is_some()),
        }
    }
}
