//! Property-based tests for the metrics histograms: algebraic laws
//! (merge associativity/commutativity), quantile monotonicity and
//! error bounds across bucket boundaries, and a concurrency hammer
//! pinning that parallel recording loses nothing.

use mec_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Sample vectors that cross the linear region (v < 32), several
/// octave boundaries, and the large tail.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..64,                                 // linear region + first octave
            30u64..34,                                // the linear/log seam
            (5u64..40).prop_map(|e| 1u64 << e),       // power-of-two boundaries
            (5u64..40).prop_map(|e| (1u64 << e) - 1), // just below them
            // broad tail, bounded so a whole run's sum stays in u64
            0u64..u64::MAX / 256,
        ],
        0..40,
    )
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
        // merging equals recording everything into one histogram
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(left, snapshot_of(&all));
    }

    #[test]
    fn quantiles_are_monotone_in_q(samples in arb_samples(), q1 in 0.0f64..1.01, q2 in 0.0f64..1.01) {
        let s = snapshot_of(&samples);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.value_at_quantile(lo) <= s.value_at_quantile(hi));
    }

    #[test]
    fn quantiles_bound_the_true_order_statistic(samples in arb_samples(), q in 0.0f64..1.01) {
        if samples.is_empty() {
            prop_assert_eq!(snapshot_of(&samples).value_at_quantile(q), 0);
            return Ok(());
        }
        let s = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[target - 1];
        let got = s.value_at_quantile(q);
        // never below the true order statistic, never above it by more
        // than one 32-sub-bucket octave slice (≤ ~3.2 % relative error)
        prop_assert!(got >= truth, "quantile {q}: got {got} < true {truth}");
        prop_assert!(
            got <= truth + truth / 16 + 1,
            "quantile {q}: got {got} too far above true {truth}"
        );
    }

    #[test]
    fn exact_stats_survive_bucketing(samples in arb_samples()) {
        let s = snapshot_of(&samples);
        prop_assert_eq!(s.count(), samples.len() as u64);
        prop_assert_eq!(s.sum(), samples.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(s.min(), samples.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(s.max(), samples.iter().copied().max().unwrap_or(0));
        // the top extreme is exact (clamped to the observed max); the
        // bottom is bucket-resolution but never undershoots the min
        if !samples.is_empty() {
            prop_assert!(s.value_at_quantile(0.0) >= s.min());
            prop_assert_eq!(s.value_at_quantile(1.0), s.max());
        }
    }

    #[test]
    fn single_value_is_recovered_exactly(v in 0u64..u64::MAX) {
        // the [min, max] clamp must make one-element distributions
        // exact at every quantile, on both sides of bucket seams
        let s = snapshot_of(&[v]);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            prop_assert_eq!(s.value_at_quantile(q), v);
        }
    }

    #[test]
    fn since_recovers_interval_counts(a in arb_samples(), b in arb_samples()) {
        let h = Histogram::new();
        for &v in &a {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &b {
            h.record(v);
        }
        let interval = h.snapshot().since(&earlier);
        prop_assert_eq!(interval.count(), b.len() as u64);
        prop_assert_eq!(interval.sum(), b.iter().copied().fold(0u64, u64::wrapping_add));
    }
}

/// Eight threads hammering one histogram concurrently: every record
/// must land — count, sum, min, and max all exact afterwards.
#[test]
fn concurrent_hammer_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let s = h.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(s.count(), n);
    assert_eq!(s.sum(), n * (n - 1) / 2);
    assert_eq!(s.min(), 0);
    assert_eq!(s.max(), n - 1);
    // quantiles stay ordered on the merged result
    let (p50, p90, p99) = (
        s.value_at_quantile(0.5),
        s.value_at_quantile(0.9),
        s.value_at_quantile(0.99),
    );
    assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max());
}
