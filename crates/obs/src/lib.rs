//! Pipeline-wide telemetry for the offloading pipeline.
//!
//! The paper's evaluation is entirely about *where time goes* —
//! compression shrinkage (Table I), per-stage runtime against graph
//! size (Fig. 9), greedy convergence (Algorithm 2). This crate gives
//! every stage a single, dependency-free instrumentation surface:
//!
//! - [`TraceSink`] — the trait the pipeline calls: span enter/exit,
//!   named monotonic counters, and structured events;
//! - [`NullSink`] — the default no-op; every method is an empty default
//!   so the uninstrumented path compiles away to nothing;
//! - [`Recorder`] — an in-memory sink with atomic counters, a bounded
//!   event ring buffer, full span records, and JSON export for
//!   `scripts/plot_figures.py` and the `--trace-out` flag of the
//!   experiments binary;
//! - [`MetricsRegistry`] (the `mec-metrics` layer, [`metrics`]) — live
//!   log-bucketed histograms, gauges, and labeled counters with
//!   percentile summaries, snapshot diffing, and JSON/Prometheus
//!   exposition — the distributional complement to the event-ordered
//!   trace above;
//! - [`MetricsSink`] — a [`TraceSink`] that forwards counters and
//!   histogram records into a shared registry without recording spans
//!   or events, for metric collection at near-zero overhead;
//! - [`ShardedRecorder`] — the always-on collection path: per-thread
//!   bounded SPSC ring shards drained by a background aggregator into
//!   the [`Recorder`]/[`MetricsRegistry`] views, making hot-path
//!   recording wait-free and allocation-free after warm-up, with
//!   per-class drop accounting ([`DroppedRecords`]);
//! - [`serve`] — a dependency-free live exposition endpoint
//!   (`/metrics`, `/trace`, `/healthz`, `/stacks`) over
//!   `std::net::TcpListener`.
//!
//! # Example
//!
//! ```
//! use mec_obs::{FieldValue, Recorder, TraceSink};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! let sink: Arc<dyn TraceSink> = Arc::clone(&recorder) as Arc<dyn TraceSink>;
//!
//! let span = mec_obs::span(sink.as_ref(), "stage.compression");
//! sink.counter_add("labelprop.rounds", 3);
//! sink.event("labelprop.round", &[("alpha", FieldValue::F64(0.25))]);
//! let elapsed = span.finish();
//!
//! assert_eq!(recorder.counter_value("labelprop.rounds"), 3);
//! assert!(recorder.to_json_string().contains("stage.compression"));
//! assert!(elapsed.as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
mod recorder;
mod serve;
mod shard;

pub use metrics::{
    CounterHandle, GaugeHandle, Histogram, HistogramHandle, HistogramSnapshot, MetricKey,
    MetricsRegistry, RegistrySnapshot,
};
pub use recorder::{DropClass, DroppedRecords, Recorder, SpanRecord, TraceEvent};
pub use serve::{serve, ObsServer};
pub use shard::{ShardConfig, ShardedRecorder};

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Identifier of an in-flight span, handed back by
/// [`TraceSink::span_enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The id used when no span is being recorded (the
    /// [`NullSink`] answer).
    pub const NULL: SpanId = SpanId(0);

    /// `true` for the null id.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// One typed value attached to an event field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Static string (labels, stage names).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

/// The instrumentation surface threaded through the pipeline.
///
/// Every method has an empty default body, so a sink implements only
/// what it cares about and the [`NullSink`] is a true no-op. `Debug` is
/// a supertrait so pipeline structs holding an `Arc<dyn TraceSink>`
/// can keep deriving `Debug`.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// `true` when this sink records anything. Call sites may use this
    /// to skip building expensive event payloads.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name`; returns its id for
    /// [`span_exit`](TraceSink::span_exit).
    fn span_enter(&self, name: &'static str) -> SpanId {
        let _ = name;
        SpanId::NULL
    }

    /// Closes the span `id`.
    fn span_exit(&self, id: SpanId) {
        let _ = id;
    }

    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records a structured event with typed fields.
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let _ = (name, fields);
    }

    /// Records one sample into the histogram `name` (typically a
    /// latency in nanoseconds or a small count). The default is a true
    /// no-op, so the [`NullSink`] path stays allocation-free.
    fn histogram_record(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Tells the sink the calling thread is engine worker `worker`, so
    /// a sharded sink can pin the thread to a stable shard before the
    /// first record. The default is a no-op — only sinks with
    /// per-thread state care.
    fn register_worker(&self, worker: usize) {
        let _ = worker;
    }

    /// Asks the sink to make everything recorded so far visible to its
    /// snapshot/export views (a no-op for unbuffered sinks). The
    /// pipeline calls this at solve and session boundaries.
    fn flush(&self) {}
}

/// The default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A shared handle to the process-wide [`NullSink`], the default sink
/// for every builder in the pipeline.
pub fn null_sink() -> Arc<dyn TraceSink> {
    static NULL: OnceLock<Arc<NullSink>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullSink))) as Arc<dyn TraceSink>
}

/// A [`TraceSink`] that collects *metrics only*: counters and histogram
/// records land in a shared [`MetricsRegistry`], spans and events are
/// ignored. This is the cheap way to get live percentiles from a run
/// that does not need a full trace — the experiments binary uses it
/// when `--trace-out` is absent but a metrics table is wanted.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink {
    /// A sink backed by a fresh enabled registry.
    pub fn new() -> Self {
        MetricsSink {
            registry: Arc::new(MetricsRegistry::new()),
        }
    }

    /// A sink forwarding into an existing registry.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        MetricsSink { registry }
    }

    /// The shared registry this sink records into.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }
}

impl TraceSink for MetricsSink {
    fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.registry.add_counter(name, delta);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.registry.record_histogram(name, value);
    }
}

/// RAII guard for a span: exits the span when dropped or
/// [`finish`](SpanGuard::finish)ed.
///
/// The guard carries its own [`Instant`], so the elapsed time it
/// reports is measured identically whether the sink records spans or
/// ignores them — this is what lets `StageTimings` stay a view derived
/// from spans without perturbing the un-instrumented path.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a dyn TraceSink,
    id: SpanId,
    start: Instant,
    finished: bool,
}

impl SpanGuard<'_> {
    /// Closes the span and returns the locally measured elapsed time.
    pub fn finish(mut self) -> Duration {
        self.finished = true;
        self.sink.span_exit(self.id);
        self.start.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.sink.span_exit(self.id);
        }
    }
}

/// Opens a span on `sink`, returning the RAII guard.
pub fn span<'a>(sink: &'a dyn TraceSink, name: &'static str) -> SpanGuard<'a> {
    SpanGuard {
        id: sink.span_enter(name),
        sink,
        start: Instant::now(),
        finished: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_answers_are_inert() {
        let sink = NullSink;
        assert!(!sink.enabled());
        let id = sink.span_enter("anything");
        assert!(id.is_null());
        sink.span_exit(id);
        sink.counter_add("c", 5);
        sink.event("e", &[("x", FieldValue::U64(1))]);
    }

    #[test]
    fn span_guard_measures_time_even_on_null_sink() {
        let sink = NullSink;
        let guard = span(&sink, "s");
        std::thread::sleep(Duration::from_millis(1));
        assert!(guard.finish() >= Duration::from_millis(1));
    }

    #[test]
    fn null_sink_handle_is_shared() {
        let a = null_sink();
        let b = null_sink();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
