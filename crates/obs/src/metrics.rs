//! mec-metrics: a lock-light registry of log-bucketed latency
//! histograms, labeled counters, and gauges.
//!
//! The trace sink ([`crate::TraceSink`]) answers "what happened, in
//! order"; this module answers "how is it *distributed*". A
//! [`MetricsRegistry`] hands out cheap handles —
//! [`HistogramHandle`], [`CounterHandle`], [`GaugeHandle`] — whose
//! recording path is a handful of relaxed atomic operations, so worker
//! threads can record every task without contending on a lock. A
//! disabled registry ([`MetricsRegistry::disabled`]) hands out inert
//! handles: recording through them is a branch on a `None`, performs no
//! atomic traffic, and never touches the heap — the property
//! `tests/alloc_budget.rs` pins for the pipeline hot path.
//!
//! Histograms are HdrHistogram-style: base-2 buckets with 32 linear
//! sub-buckets per octave, giving ≤ 3.2 % relative error over the full
//! `u64` range at a fixed 1920-bucket footprint. Snapshots are
//! mergeable (bucket-wise addition) and diffable (bucket-wise
//! subtraction), so long-lived sessions can report per-interval
//! percentiles from two cumulative snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Linear sub-buckets per power of two (2^5 = 32).
const SUB_BUCKET_BITS: u32 = 5;
/// Sub-bucket count per octave.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Octaves above the linear region: exponents 5 through 63.
const OCTAVES: usize = 64 - SUB_BUCKET_BITS as usize;
/// Total bucket count: one linear region plus 59 sub-bucketed octaves.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // 2^exp <= v, exp >= 5
        let oct = (exp - SUB_BUCKET_BITS) as usize;
        let sub = ((v >> (exp - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
        SUB_BUCKETS + oct * SUB_BUCKETS + sub
    }
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
#[inline]
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        (i as u64, i as u64)
    } else {
        let oct = (i - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        let low = (SUB_BUCKETS as u64 + sub) << oct;
        let width = 1u64 << oct;
        (low, low.saturating_add(width - 1))
    }
}

/// A concurrent log-bucketed histogram: recording is four relaxed
/// atomic operations, merging and quantiles happen on snapshots.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot: mergeable, diffable, quantile-able.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: the highest value equivalent to
    /// the bucket containing the `ceil(q·count)`-th recorded value,
    /// clamped to the exact observed `[min, max]`. Returns 0 when
    /// empty. Monotone in `q`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bucket-wise addition of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        // wrapping: `Histogram::record` accumulates sum with a wrapping
        // atomic add, so merging snapshots mirrors recording into one
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = if self.count == other.count {
                other.min
            } else {
                self.min.min(other.min)
            };
        }
    }

    /// Bucket-wise subtraction: the distribution recorded *between*
    /// `earlier` and `self` (both cumulative snapshots of one
    /// histogram). Interval `min`/`max` are reconstructed from the
    /// surviving buckets, so they are bucket-resolution approximations
    /// rather than exact observations.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let first = counts.iter().position(|&c| c > 0);
        let last = counts.iter().rposition(|&c| c > 0);
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: first.map_or(0, |i| bucket_bounds(i).0),
            max: last.map_or(0, |i| bucket_bounds(i).1.min(self.max)),
            counts,
        }
    }
}

/// A monotonic labeled counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Identity of one metric: a static name plus at most one label pair
/// (e.g. `engine.task_nanos{worker="3"}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention.
    pub name: &'static str,
    /// Optional `(label name, label value)` pair.
    pub label: Option<(&'static str, String)>,
}

impl MetricKey {
    /// An unlabeled key.
    pub fn plain(name: &'static str) -> Self {
        MetricKey { name, label: None }
    }

    /// A labeled key.
    pub fn labeled(name: &'static str, key: &'static str, value: impl Into<String>) -> Self {
        MetricKey {
            name,
            label: Some((key, value.into())),
        }
    }

    /// Renders as `name` or `name{key="value"}`.
    pub fn render(&self) -> String {
        match &self.label {
            None => self.name.to_string(),
            Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", self.name),
        }
    }
}

/// A recording handle for one histogram. Inert (`record` is a no-op
/// branch, no atomics, no allocation) when obtained from a disabled
/// registry.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A permanently inert handle.
    pub fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// `true` when recording actually lands somewhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record_duration(d);
        }
    }
}

/// A recording handle for one counter (inert when disabled).
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// A permanently inert handle.
    pub fn disabled() -> Self {
        CounterHandle(None)
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.add(delta);
        }
    }
}

/// A recording handle for one gauge (inert when disabled).
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A permanently inert handle.
    pub fn disabled() -> Self {
        GaugeHandle(None)
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.add(delta);
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
}

/// The metric registry: hands out recording handles and takes
/// whole-registry snapshots.
///
/// Handle acquisition takes a write lock once per metric; recording
/// through a handle is lock-free. One-shot helpers
/// ([`record_histogram`](Self::record_histogram),
/// [`add_counter`](Self::add_counter)) take a read lock per call and
/// exist for call sites that only hold a `dyn TraceSink`.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    inner: RwLock<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            inner: RwLock::new(RegistryInner::default()),
        }
    }

    /// A registry whose handles are all inert: recording costs a
    /// branch and never allocates.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            inner: RwLock::new(RegistryInner::default()),
        }
    }

    /// `true` when this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn histogram_arc(&self, key: MetricKey) -> Option<Arc<Histogram>> {
        if !self.enabled {
            return None;
        }
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(h) = inner.histograms.get(&key) {
                return Some(Arc::clone(h));
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(
            inner
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        ))
    }

    /// Handle for the unlabeled histogram `name`.
    pub fn histogram(&self, name: &'static str) -> HistogramHandle {
        HistogramHandle(self.histogram_arc(MetricKey::plain(name)))
    }

    /// Handle for the histogram `name{key="value"}`.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        key: &'static str,
        value: impl Into<String>,
    ) -> HistogramHandle {
        HistogramHandle(self.histogram_arc(MetricKey::labeled(name, key, value)))
    }

    /// One-shot histogram record by name (the [`crate::TraceSink`]
    /// forwarding path). No-op on a disabled registry.
    pub fn record_histogram(&self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(h) = inner.histograms.get(&MetricKey::plain(name)) {
                h.record(value);
                return;
            }
        }
        if let Some(h) = self.histogram_arc(MetricKey::plain(name)) {
            h.record(value);
        }
    }

    fn counter_arc(&self, key: MetricKey) -> Option<Arc<Counter>> {
        if !self.enabled {
            return None;
        }
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = inner.counters.get(&key) {
                return Some(Arc::clone(c));
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(inner.counters.entry(key).or_default()))
    }

    /// Handle for the unlabeled counter `name`.
    pub fn counter(&self, name: &'static str) -> CounterHandle {
        CounterHandle(self.counter_arc(MetricKey::plain(name)))
    }

    /// Handle for the counter `name{key="value"}`.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        key: &'static str,
        value: impl Into<String>,
    ) -> CounterHandle {
        CounterHandle(self.counter_arc(MetricKey::labeled(name, key, value)))
    }

    /// One-shot counter add by name. No-op on a disabled registry.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = inner.counters.get(&MetricKey::plain(name)) {
                c.add(delta);
                return;
            }
        }
        if let Some(c) = self.counter_arc(MetricKey::plain(name)) {
            c.add(delta);
        }
    }

    fn gauge_arc(&self, key: MetricKey) -> Option<Arc<Gauge>> {
        if !self.enabled {
            return None;
        }
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(g) = inner.gauges.get(&key) {
                return Some(Arc::clone(g));
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(inner.gauges.entry(key).or_default()))
    }

    /// Handle for the unlabeled gauge `name`.
    pub fn gauge(&self, name: &'static str) -> GaugeHandle {
        GaugeHandle(self.gauge_arc(MetricKey::plain(name)))
    }

    /// Handle for the gauge `name{key="value"}`.
    pub fn gauge_labeled(
        &self,
        name: &'static str,
        key: &'static str,
        value: impl Into<String>,
    ) -> GaugeHandle {
        GaugeHandle(self.gauge_arc(MetricKey::labeled(name, key, value)))
    }

    /// A point-in-time copy of every metric, sorted by key.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.value()))
                .collect(),
        }
    }
}

/// A whole-registry snapshot: JSON- and Prometheus-exposable, and
/// diffable against an earlier snapshot for per-interval rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Histogram snapshots, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
    /// Counter values, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` — the
/// Prometheus metric-name alphabet.
pub(crate) fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl RegistrySnapshot {
    /// Looks up an unlabeled histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && k.label.is_none())
            .map(|(_, h)| h)
    }

    /// Looks up a labeled histogram.
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &str,
        value: &str,
    ) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.label
                        .as_ref()
                        .is_some_and(|(lk, lv)| *lk == key && lv == value)
            })
            .map(|(_, h)| h)
    }

    /// Looks up an unlabeled counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && k.label.is_none())
            .map(|(_, v)| *v)
    }

    /// Looks up a labeled counter.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.label
                        .as_ref()
                        .is_some_and(|(lk, lv)| *lk == key && lv == value)
            })
            .map(|(_, v)| *v)
    }

    /// The per-interval snapshot between `earlier` and `self`:
    /// histograms and counters subtract bucket-/value-wise, gauges keep
    /// their latest value. Metrics absent from `earlier` pass through
    /// unchanged.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let find_hist = |key: &MetricKey| {
            earlier
                .histograms
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, h)| h)
        };
        let find_counter = |key: &MetricKey| {
            earlier
                .counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
        };
        RegistrySnapshot {
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match find_hist(k) {
                        Some(e) => h.since(e),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v - find_counter(k).unwrap_or(0).min(*v)))
                .collect(),
            gauges: self.gauges.clone(),
        }
    }

    /// Serialises the snapshot as a JSON document: histogram summaries
    /// (count/sum/min/max/mean plus p50/p90/p99/p999), counters, and
    /// gauges, all keyed by rendered metric name.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"histograms\": {");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                // mean uses `{}` (shortest representation), matching
                // the serde shim's float printing so exports survive a
                // parse -> serialise -> parse round trip unchanged
                "\n    \"{}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {} }}",
                key.render().replace('"', "'"),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.value_at_quantile(0.50),
                h.value_at_quantile(0.90),
                h.value_at_quantile(0.99),
                h.value_at_quantile(0.999),
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", key.render().replace('"', "'"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (key, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", key.render().replace('"', "'"));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// histograms as summaries (`{quantile="…"}` series plus `_sum` and
    /// `_count`), counters and gauges as plain samples. Metric names
    /// are sanitised to the Prometheus alphabet (`.` becomes `_`).
    pub fn to_prometheus_string(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (key, h) in &self.histograms {
            let name = prom_name(key.name);
            type_line(&mut out, &name, "summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                let mut labels = format!("quantile=\"{label}\"");
                if let Some((lk, lv)) = &key.label {
                    labels = format!("{lk}=\"{lv}\",{labels}");
                }
                let _ = writeln!(out, "{name}{{{labels}}} {}", h.value_at_quantile(q));
            }
            let suffix = key
                .label
                .as_ref()
                .map(|(lk, lv)| format!("{{{lk}=\"{lv}\"}}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{name}_sum{suffix} {}", h.sum());
            let _ = writeln!(out, "{name}_count{suffix} {}", h.count());
        }
        for (key, v) in &self.counters {
            let name = prom_name(key.name);
            type_line(&mut out, &name, "counter");
            let suffix = key
                .label
                .as_ref()
                .map(|(lk, lv)| format!("{{{lk}=\"{lv}\"}}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{name}{suffix} {v}");
        }
        for (key, v) in &self.gauges {
            let name = prom_name(key.name);
            type_line(&mut out, &name, "gauge");
            let suffix = key
                .label
                .as_ref()
                .map(|(lk, lv)| format!("{{{lk}=\"{lv}\"}}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{name}{suffix} {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_contain_the_value() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1023,
            1024,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "v={v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut prev_hi = None;
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            if hi == u64::MAX {
                break;
            }
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!(
                (width as f64) <= (lo.max(1) as f64) / 16.0,
                "bucket too wide at {v}: [{lo}, {hi}]"
            );
            v = v.wrapping_mul(3) + 7;
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        let p50 = s.value_at_quantile(0.5);
        assert!((450..=560).contains(&p50), "p50 = {p50}");
        let p99 = s.value_at_quantile(0.99);
        assert!((960..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.value_at_quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.value_at_quantile(0.99), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 77, 1025, 40, 40, 999_999] {
            all.record(v);
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn since_recovers_the_interval() {
        let h = Histogram::new();
        h.record(10);
        h.record(500);
        let early = h.snapshot();
        h.record(2000);
        h.record(2000);
        let late = h.snapshot();
        let interval = late.since(&early);
        assert_eq!(interval.count(), 2);
        assert_eq!(interval.sum(), 4000);
        let (lo, hi) = bucket_bounds(bucket_index(2000));
        assert!(interval.min() >= lo && interval.max() <= hi);
    }

    #[test]
    fn disabled_registry_hands_out_inert_handles() {
        let r = MetricsRegistry::disabled();
        let h = r.histogram("x");
        assert!(!h.is_enabled());
        h.record(5);
        r.record_histogram("x", 5);
        r.counter("c").add(1);
        r.add_counter("c", 1);
        r.gauge("g").set(3);
        let snap = r.snapshot();
        assert!(snap.histograms.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn registry_snapshot_diff_and_lookup() {
        let r = MetricsRegistry::new();
        let h = r.histogram_labeled("task_nanos", "worker", "0");
        let c = r.counter("tasks");
        h.record(100);
        c.add(2);
        let early = r.snapshot();
        h.record(100);
        c.add(3);
        r.gauge("depth").set(7);
        let late = r.snapshot();
        let d = late.since(&early);
        assert_eq!(
            d.histogram_labeled("task_nanos", "worker", "0")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(d.counter("tasks"), Some(3));
        assert_eq!(d.gauges[0].1, 7);
        assert_eq!(late.counter_labeled("tasks", "worker", "0"), None);
    }

    #[test]
    fn prometheus_exposition_line_format() {
        let r = MetricsRegistry::new();
        r.histogram_labeled("engine.task_nanos", "worker", "1")
            .record(123);
        r.counter("engine.tasks").add(4);
        r.gauge("session.users").set(-2);
        let text = r.snapshot().to_prometheus_string();
        assert!(text.contains("# TYPE engine_task_nanos summary"));
        assert!(text.contains("engine_task_nanos{worker=\"1\",quantile=\"0.5\"} 123"));
        assert!(text.contains("engine_task_nanos_count{worker=\"1\"} 1"));
        assert!(text.contains("# TYPE engine_tasks counter"));
        assert!(text.contains("engine_tasks 4"));
        assert!(text.contains("session_users -2"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!series.is_empty());
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
        }
    }

    #[test]
    fn json_snapshot_parses() {
        let r = MetricsRegistry::new();
        r.histogram("stage.compression_nanos").record(42);
        r.counter("session.joins").add(1);
        let json = r.snapshot().to_json_string();
        assert!(json.contains("\"stage.compression_nanos\""));
        assert!(json.contains("\"p99\": 42"));
        assert!(json.contains("\"session.joins\": 1"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = r.histogram("hammer");
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 100);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.histogram("hammer").unwrap().count(), 80_000);
    }
}
