//! The in-memory recording sink and its JSON export.

use crate::metrics::MetricsRegistry;
use crate::{FieldValue, SpanId, TraceSink};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Default capacity of the event ring buffer.
pub(crate) const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Monotonically increasing id distinguishing recorders, so the
/// per-thread span stacks of two live recorders never interfere.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of (recorder id, span id) for parent attribution.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The classes of lossy telemetry records whose losses are accounted
/// separately (counters are exact and never dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropClass {
    /// A completed span record.
    Span = 0,
    /// A structured event.
    Event = 1,
    /// One histogram sample.
    Histogram = 2,
}

/// Per-class counts of telemetry records lost to bounded buffers —
/// full ring shards, shard-pool exhaustion, or eviction from the
/// retained event ring. `recorded + dropped` is exactly conserved per
/// class (see `crates/obs/tests/shard_properties.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DroppedRecords {
    /// Completed spans lost.
    pub spans: u64,
    /// Events lost or evicted.
    pub events: u64,
    /// Histogram samples lost.
    pub histogram_samples: u64,
}

impl DroppedRecords {
    /// Total losses across all three classes.
    pub fn total(&self) -> u64 {
        self.spans + self.events + self.histogram_samples
    }
}

/// A completed or in-flight span as the recorder stores it.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id (1-based, dense).
    pub id: u64,
    /// Enclosing span id on the same thread, 0 for roots.
    pub parent: u64,
    /// Static span name, e.g. `"stage.compression"`.
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// End time, `None` while the span is still open.
    pub end_ns: Option<u64>,
    /// Originating track: 0 for spans recorded directly on the
    /// recorder, `shard index + 1` for spans aggregated from a
    /// [`crate::ShardedRecorder`] ring shard. Becomes the `tid` of the
    /// Chrome trace-event export.
    pub tid: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds, `None` while open.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// One structured event as the recorder stores it.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// Static event name, e.g. `"labelprop.round"`.
    pub name: &'static str,
    /// Typed fields in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
}

impl EventRing {
    fn push(&mut self, ev: TraceEvent) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            // overwrite the oldest entry
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            true
        }
    }

    fn iter_in_order(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, first) = self.buf.split_at(self.head);
        first.iter().chain(tail.iter())
    }
}

/// An in-memory [`TraceSink`]: atomic counters, full span records, and
/// a bounded event ring buffer, exportable as JSON.
///
/// Counter increments take a shared read lock plus one atomic add
/// (the write lock is only taken the first time a counter name
/// appears), so hot loops pay near-nothing. Span and event recording
/// take a mutex; the pipeline emits those at stage granularity, not in
/// inner loops.
#[derive(Debug)]
pub struct Recorder {
    recorder_id: u64,
    start: Instant,
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<EventRing>,
    /// Losses indexed by [`DropClass`]: spans, events, histogram
    /// samples. The recorder's direct path only ever evicts events;
    /// the sharded pipeline forwards all three classes here so every
    /// export reports them uniformly.
    dropped: [AtomicU64; 3],
    drop_warned: AtomicBool,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("len", &self.buf.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default event capacity.
    pub fn new() -> Self {
        Recorder::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder whose ring buffer keeps at most `capacity` events;
    /// once full, new events overwrite the oldest and the dropped
    /// count rises.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Recorder {
            recorder_id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            counters: RwLock::new(HashMap::new()),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(EventRing {
                buf: Vec::new(),
                capacity: capacity.max(1),
                head: 0,
            }),
            dropped: Default::default(),
            drop_warned: AtomicBool::new(false),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// The live metrics registry this recorder forwards
    /// [`TraceSink::histogram_record`] calls into. Share the `Arc` with
    /// an engine cluster to collect per-worker histograms in the same
    /// place as the pipeline's stage histograms.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// The shared cell backing counter `name`, creating it on first
    /// use. The sharded pipeline caches these per thread so counter
    /// increments stay exact *and* wait-free.
    pub(crate) fn counter_cell(&self, name: &'static str) -> Arc<AtomicU64> {
        {
            let map = self.counters.read().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = map.get(name) {
                return Arc::clone(c);
            }
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, u64)> = map
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.load(Ordering::Relaxed)))
            .collect();
        out.sort();
        out
    }

    /// Copies of all span records, in creation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Copies of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter_in_order()
            .cloned()
            .collect()
    }

    /// Number of events evicted from the ring (or dropped upstream by
    /// a sharded pipeline) so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped[DropClass::Event as usize].load(Ordering::Relaxed)
    }

    /// Per-class record losses. All three classes are reported
    /// uniformly in the JSON export, the Prometheus exposition, and
    /// the one-time warning.
    pub fn dropped_records(&self) -> DroppedRecords {
        DroppedRecords {
            spans: self.dropped[DropClass::Span as usize].load(Ordering::Relaxed),
            events: self.dropped[DropClass::Event as usize].load(Ordering::Relaxed),
            histogram_samples: self.dropped[DropClass::Histogram as usize].load(Ordering::Relaxed),
        }
    }

    /// Counts `n` lost records of `class`, warning (once per recorder)
    /// the first time any loss is observed.
    pub(crate) fn add_dropped(&self, class: DropClass, n: u64) {
        if n == 0 {
            return;
        }
        self.dropped[class as usize].fetch_add(n, Ordering::Relaxed);
        if !self.drop_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "mec-obs: bounded telemetry buffers overflowed; \
                 span/event/histogram records are being dropped or evicted \
                 (raise ShardConfig capacity or Recorder::with_event_capacity); \
                 exact counts are in the export's *_dropped fields"
            );
        }
    }

    /// Appends a completed span record produced by the shard
    /// aggregator (ids are assigned by the caller).
    pub(crate) fn ingest_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    /// Appends an event produced by the shard aggregator, with the
    /// same bounded-ring eviction accounting as the direct path.
    pub(crate) fn ingest_event(&self, ev: TraceEvent) {
        let evicted = self
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
        if evicted {
            self.add_dropped(DropClass::Event, 1);
        }
    }

    /// Collapses the closed spans into folded-stack lines
    /// (`root;child;leaf <self_nanos>`), the input format of
    /// inferno / `flamegraph.pl`. Self time is the span's duration
    /// minus the summed durations of its direct children; frames whose
    /// self time rounds to zero are omitted (they still appear as
    /// prefixes of their children's stacks). See
    /// `scripts/flamegraph.sh` for the rendering step.
    pub fn to_collapsed_stacks(&self) -> String {
        let spans = self.spans();
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for s in &spans {
            if let Some(d) = s.duration_ns() {
                if s.parent != 0 {
                    *child_ns.entry(s.parent).or_insert(0) += d;
                }
            }
        }
        let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for s in &spans {
            let Some(d) = s.duration_ns() else { continue };
            let self_ns = d.saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            if self_ns == 0 {
                continue;
            }
            let mut frames = vec![s.name];
            let mut parent = s.parent;
            while parent != 0 {
                match by_id.get(&parent) {
                    Some(p) => {
                        frames.push(p.name);
                        parent = p.parent;
                    }
                    None => break,
                }
            }
            frames.reverse();
            *folded.entry(frames.join(";")).or_insert(0) += self_ns;
        }
        let mut out = String::with_capacity(folded.len() * 48);
        for (stack, ns) in folded {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    /// Serialises the whole trace as a JSON document.
    ///
    /// Schema (stable, consumed by `scripts/plot_figures.py`):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "duration_ns": 12345,
    ///   "counters": { "greedy.moves_evaluated": 42 },
    ///   "spans": [ { "id": 1, "parent": 0, "name": "stage.compression",
    ///                "start_ns": 10, "end_ns": 900, "duration_ns": 890 } ],
    ///   "events": [ { "t_ns": 15, "name": "labelprop.round",
    ///                 "fields": { "round": 1, "alpha": 0.5 } } ],
    ///   "metrics": { "histograms": {}, "counters": {}, "gauges": {} },
    ///   "spans_dropped": 0,
    ///   "hist_samples_dropped": 0,
    ///   "events_dropped": 0
    /// }
    /// ```
    ///
    /// When any bounded buffer has dropped or evicted records, the
    /// export also carries a top-level `"warning"` string listing the
    /// per-class counts so truncation is never silent.
    /// (`"events_dropped"` was named `"dropped_events"` before the
    /// warning existed; `"spans_dropped"` / `"hist_samples_dropped"`
    /// arrived with the sharded pipeline.)
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"duration_ns\": {},", self.now_ns());

        out.push_str("  \"counters\": {");
        let counters = self.counters();
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_str(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"spans\": [");
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let _ = write!(
                out,
                "{{ \"id\": {}, \"parent\": {}, \"tid\": {}, ",
                s.id, s.parent, s.tid
            );
            out.push_str("\"name\": ");
            write_json_str(&mut out, s.name);
            let _ = write!(out, ", \"start_ns\": {}", s.start_ns);
            match s.end_ns {
                Some(end) => {
                    let _ = write!(
                        out,
                        ", \"end_ns\": {}, \"duration_ns\": {} }}",
                        end,
                        end.saturating_sub(s.start_ns)
                    );
                }
                None => out.push_str(", \"end_ns\": null, \"duration_ns\": null }"),
            }
        }
        if !spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"events\": [");
        let events = self.events();
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let _ = write!(out, "{{ \"t_ns\": {}, \"name\": ", e.t_ns);
            write_json_str(&mut out, e.name);
            out.push_str(", \"fields\": {");
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_str(&mut out, k);
                out.push_str(": ");
                write_field_value(&mut out, v);
            }
            out.push_str("} }");
        }
        if !events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        // live metrics: spliced in as a nested object (the snapshot
        // serialiser already emits a complete JSON document)
        let metrics_json = self.metrics.snapshot().to_json_string();
        out.push_str("  \"metrics\": ");
        out.push_str(metrics_json.trim_end());
        out.push_str(",\n");

        let dropped = self.dropped_records();
        if dropped.total() > 0 {
            out.push_str("  \"warning\": ");
            write_json_str(
                &mut out,
                &format!(
                    "bounded telemetry buffers overflowed: {} span(s), {} event(s), \
                     {} histogram sample(s) dropped or evicted; raise ShardConfig \
                     capacity or Recorder::with_event_capacity to keep them",
                    dropped.spans, dropped.events, dropped.histogram_samples
                ),
            );
            out.push_str(",\n");
        }
        let _ = writeln!(out, "  \"spans_dropped\": {},", dropped.spans);
        let _ = writeln!(
            out,
            "  \"hist_samples_dropped\": {},",
            dropped.histogram_samples
        );
        let _ = write!(out, "  \"events_dropped\": {}\n}}\n", dropped.events);
        out
    }

    /// Serialises the trace in the Chrome trace-event JSON format
    /// (load the file at `chrome://tracing` or in Perfetto).
    ///
    /// Completed spans become `"ph": "X"` duration events on track
    /// `tid` (0 = direct recording, `shard + 1` = sharded pipeline);
    /// trace events become `"ph": "i"` instants with their fields under
    /// `"args"`. Timestamps are microseconds since recorder creation.
    pub fn to_chrome_trace_string(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for s in self.spans() {
            let Some(end_ns) = s.end_ns else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            write_json_str(&mut out, s.name);
            let _ = write!(
                out,
                ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                s.start_ns as f64 / 1_000.0,
                end_ns.saturating_sub(s.start_ns) as f64 / 1_000.0,
                s.tid
            );
        }
        for e in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            write_json_str(&mut out, e.name);
            let _ = write!(
                out,
                ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{:.3},\"pid\":1,\"tid\":0,\"args\":{{",
                e.t_ns as f64 / 1_000.0
            );
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                out.push(':');
                write_field_value(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Prometheus text exposition: the metrics registry snapshot, the
    /// exact trace counters, and the three
    /// `mec_obs_dropped_records{class=…}` series.
    pub fn to_prometheus_string(&self) -> String {
        let mut out = self.metrics.snapshot().to_prometheus_string();
        for (name, value) in self.counters() {
            let n = crate::metrics::prom_name(&name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        let d = self.dropped_records();
        out.push_str("# TYPE mec_obs_dropped_records counter\n");
        for (class, value) in [
            ("span", d.spans),
            ("event", d.events),
            ("histogram", d.histogram_samples),
        ] {
            let _ = writeln!(out, "mec_obs_dropped_records{{class=\"{class}\"}} {value}");
        }
        out
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        FieldValue::I64(i) => {
            let _ = write!(out, "{i}");
        }
        FieldValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Str(s) => write_json_str(out, s),
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) -> SpanId {
        let start_ns = self.now_ns();
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let id = spans.len() as u64 + 1;
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(rec, _)| *rec == self.recorder_id)
                .map_or(0, |(_, span)| *span);
            stack.push((self.recorder_id, id));
            parent
        });
        spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            end_ns: None,
            tid: 0,
        });
        SpanId(id)
    }

    fn span_exit(&self, id: SpanId) {
        if id.is_null() {
            return;
        }
        let end_ns = self.now_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rec, span)| rec == self.recorder_id && span == id.0)
            {
                stack.remove(pos);
            }
        });
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(record) = spans.get_mut((id.0 - 1) as usize) {
            if record.end_ns.is_none() {
                record.end_ns = Some(end_ns);
            }
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        {
            let map = self.counters.read().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = map.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.ingest_event(TraceEvent {
            t_ns: self.now_ns(),
            name,
            fields: fields.to_vec(),
        });
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.metrics.record_histogram(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn counters_accumulate_across_threads() {
        let rec = std::sync::Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.counter_add("hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter_value("hits"), 4000);
    }

    #[test]
    fn spans_nest_by_thread_order() {
        let rec = Recorder::new();
        let outer = span(&rec, "outer");
        let inner = span(&rec, "inner");
        inner.finish();
        outer.finish();
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let outer_rec = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_rec = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer_rec.parent, 0);
        assert_eq!(inner_rec.parent, outer_rec.id);
        assert!(outer_rec.duration_ns().unwrap() >= inner_rec.duration_ns().unwrap());
    }

    #[test]
    fn two_recorders_keep_separate_parent_stacks() {
        let a = Recorder::new();
        let b = Recorder::new();
        let sa = span(&a, "a_root");
        let sb = span(&b, "b_root");
        sb.finish();
        sa.finish();
        assert_eq!(a.spans()[0].parent, 0);
        assert_eq!(b.spans()[0].parent, 0);
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts_drops() {
        let rec = Recorder::with_event_capacity(3);
        for i in 0..5u64 {
            rec.event("e", &[("i", FieldValue::U64(i))]);
        }
        assert_eq!(rec.dropped_events(), 2);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        let kept: Vec<u64> = events
            .iter()
            .map(|e| match e.fields[0].1 {
                FieldValue::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn json_export_contains_all_sections() {
        let rec = Recorder::new();
        let s = span(&rec, "stage.compression");
        rec.counter_add("greedy.moves_evaluated", 7);
        rec.event(
            "labelprop.round",
            &[
                ("round", FieldValue::U64(1)),
                ("alpha", FieldValue::F64(0.5)),
            ],
        );
        s.finish();
        let json = rec.to_json_string();
        for needle in [
            "\"version\": 1",
            "\"stage.compression\"",
            "\"greedy.moves_evaluated\": 7",
            "\"labelprop.round\"",
            "\"alpha\": 0.5",
            "\"events_dropped\": 0",
            "\"metrics\":",
            "\"duration_ns\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(
            !json.contains("\"warning\""),
            "no warning without evictions"
        );
    }

    #[test]
    fn json_export_warns_once_truncation_happened() {
        let rec = Recorder::with_event_capacity(1);
        rec.event("e", &[]);
        rec.event("e", &[]);
        let json = rec.to_json_string();
        assert!(json.contains("\"events_dropped\": 1"), "{json}");
        assert!(json.contains("\"warning\""), "{json}");
        assert!(json.contains("evicted"), "{json}");
    }

    #[test]
    fn histogram_records_land_in_the_registry() {
        let rec = Recorder::new();
        rec.histogram_record("stage.greedy_nanos", 1_000);
        rec.histogram_record("stage.greedy_nanos", 3_000);
        let snap = rec.metrics().snapshot();
        let h = snap.histogram("stage.greedy_nanos").expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 3_000);
        assert!(rec.to_json_string().contains("stage.greedy_nanos"));
    }

    #[test]
    fn collapsed_stacks_fold_self_time_by_path() {
        let rec = Recorder::new();
        let outer = span(&rec, "pipeline.solve");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let inner = span(&rec, "stage.greedy");
        std::thread::sleep(std::time::Duration::from_millis(2));
        inner.finish();
        outer.finish();
        let folded = rec.to_collapsed_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("pipeline.solve;stage.greedy ")),
            "missing nested frame in:\n{folded}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("pipeline.solve ")),
            "missing root self time in:\n{folded}"
        );
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(!stack.is_empty());
            assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
        }
        // root self time excludes the child's time
        let root_ns: u64 = lines
            .iter()
            .find_map(|l| l.strip_prefix("pipeline.solve "))
            .unwrap()
            .parse()
            .unwrap();
        let child_ns: u64 = lines
            .iter()
            .find_map(|l| l.strip_prefix("pipeline.solve;stage.greedy "))
            .unwrap()
            .parse()
            .unwrap();
        let total = rec
            .spans()
            .iter()
            .find(|s| s.name == "pipeline.solve")
            .unwrap()
            .duration_ns()
            .unwrap();
        assert_eq!(root_ns + child_ns, total);
    }
}
