//! Sharded, bounded, lock-free trace collection.
//!
//! PR 1's [`Recorder`] funnels every span and event from all engine
//! workers through two global `Mutex`es, which both distorts the
//! latencies being measured and caps how much tracing a long-running
//! service can afford to leave on. This module rebuilds the collection
//! path as a sharded pipeline:
//!
//! - each recording thread owns (at most) one fixed-capacity **SPSC
//!   ring shard** and appends complete span/event/histogram records to
//!   it with plain atomic stores — no `Mutex`, no allocation after the
//!   first use of each name (wait-free once warm, pinned by
//!   `tests/alloc_budget.rs`);
//! - a background **aggregator thread** drains every shard on a fixed
//!   interval (or on demand via [`ShardedRecorder::flush`]) into the
//!   ordinary [`Recorder`] / [`MetricsRegistry`] views, so every
//!   existing export — JSON trace, collapsed stacks, Prometheus text,
//!   Chrome trace events — keeps working unchanged;
//! - when a ring is full the record is **dropped, never blocked on**,
//!   and the loss is counted per shard and per class
//!   ([`DropClass::Span`] / [`DropClass::Event`] /
//!   [`DropClass::Histogram`]) so `recorded + dropped` is exactly
//!   conserved (see `crates/obs/tests/shard_properties.rs`).
//!
//! Counters deliberately bypass the rings: tests and the reproduction
//! checks assert *exact* counter values, so [`TraceSink::counter_add`]
//! lands directly on a per-thread cached `Arc<AtomicU64>` handle —
//! still wait-free and allocation-free after warm-up, and never lossy.
//! The split is: **counters are exact, spans/events/histogram samples
//! are bounded-lossy with accounted drops.**
//!
//! # Record encoding
//!
//! Every record is one ring slot of [`SLOT_WORDS`] `u64` words. Word 0
//! packs `tag | field_count << 8 | name_id << 32`, where `name_id`
//! indexes a process-wide intern table of `&'static str` names (the
//! hot path caches ids per thread keyed on the string's address, so
//! interning locks only on the first sighting of each name). Spans are
//! written **once, on exit**, as a complete record — this is what makes
//! drop accounting exact and keeps in-flight spans off the shared path
//! (consequence: a sharded snapshot only shows completed spans).

use crate::metrics::MetricsRegistry;
use crate::recorder::{DropClass, DroppedRecords, Recorder, SpanRecord, TraceEvent};
use crate::{FieldValue, SpanId, TraceSink};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Words per ring slot: header + timestamp(s) + up to
/// [`MAX_EVENT_FIELDS`] key/value pairs at two words each.
const SLOT_WORDS: usize = 10;

/// Event fields beyond this many are silently truncated (the pipeline
/// emits at most three today).
const MAX_EVENT_FIELDS: usize = 4;

const TAG_SPAN: u64 = 1;
const TAG_EVENT: u64 = 2;
const TAG_HIST: u64 = 3;

const VT_U64: u64 = 0;
const VT_I64: u64 = 1;
const VT_F64: u64 = 2;
const VT_STR: u64 = 3;

/// Distinguishes live sharded recorders so the per-thread writer
/// registry of two coexisting instances never interferes.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's writers, one per live [`ShardedRecorder`] it has
    /// recorded into. Dropping a writer returns its shard to the free
    /// list, so thread exit hands the shard to the next thread.
    static WRITERS: RefCell<Vec<ThreadWriter>> = const { RefCell::new(Vec::new()) };
}

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it — telemetry must never take the pipeline down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn header(tag: u64, field_count: u64, name_id: u32) -> u64 {
    tag | (field_count << 8) | (u64::from(name_id) << 32)
}

/// Process-wide `&'static str` → dense id intern table. Locked only on
/// the first sighting of a name per thread; the hot path hits the
/// per-thread cache keyed on the string's (address, length).
#[derive(Default)]
struct NameTable {
    by_name: HashMap<&'static str, u32>,
    list: Vec<&'static str>,
}

impl NameTable {
    fn intern(&mut self, name: &'static str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.list.len() as u32;
        self.list.push(name);
        self.by_name.insert(name, id);
        id
    }
}

/// A bounded single-producer single-consumer ring of fixed-width
/// slots, built from plain atomics (this crate forbids `unsafe`).
///
/// The producer writes the slot words `Relaxed` and publishes with a
/// `Release` store of `tail`; the consumer observes `tail` with
/// `Acquire`, reads the words `Relaxed`, and retires slots with a
/// `Release` store of `head` which the producer re-acquires before
/// reuse. `head`/`tail` are monotonic counters; the slot index is the
/// counter masked by the (power-of-two) capacity.
struct SpscRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next slot the producer will write (producer-owned).
    tail: AtomicU64,
    /// Next slot the consumer will read (consumer-owned).
    head: AtomicU64,
}

struct Slot([AtomicU64; SLOT_WORDS]);

impl SpscRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(8);
        SpscRing {
            slots: (0..capacity)
                .map(|_| Slot(<[AtomicU64; SLOT_WORDS]>::default()))
                .collect(),
            mask: capacity as u64 - 1,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
        }
    }

    /// Appends one record; `false` (record lost) when the ring is full.
    fn push(&self, words: &[u64; SLOT_WORDS]) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return false;
        }
        let slot = &self.slots[(tail & self.mask) as usize];
        for (cell, &w) in slot.0.iter().zip(words.iter()) {
            cell.store(w, Ordering::Relaxed);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Drains every published record, retiring each slot as soon as it
    /// has been read so a hammering producer regains space early.
    fn drain(&self, mut f: impl FnMut(&[u64; SLOT_WORDS])) {
        let mut head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut buf = [0u64; SLOT_WORDS];
        while head != tail {
            let slot = &self.slots[(head & self.mask) as usize];
            for (dst, cell) in buf.iter_mut().zip(slot.0.iter()) {
                *dst = cell.load(Ordering::Relaxed);
            }
            head = head.wrapping_add(1);
            self.head.store(head, Ordering::Release);
            f(&buf);
        }
    }
}

struct Shard {
    ring: SpscRing,
    /// Records lost to a full ring, indexed by [`DropClass`].
    drops: [AtomicU64; 3],
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            ring: SpscRing::new(capacity),
            drops: Default::default(),
        }
    }
}

const CLASSES: [DropClass; 3] = [DropClass::Span, DropClass::Event, DropClass::Histogram];

/// Aggregator-side bookkeeping, all behind one consumer mutex (the
/// producers never touch it).
struct DrainState {
    /// Local copy of the intern table, extended lazily.
    names: Vec<&'static str>,
    /// Per shard: writer-local span seq → dense global span id. An
    /// entry is created on first reference (children exit before their
    /// parents, so a parent is usually referenced before its own
    /// record arrives) and removed once the span's own record lands.
    span_ids: Vec<HashMap<u64, u64>>,
    next_span_id: u64,
    /// Per shard, per class: drop counts already forwarded to the
    /// recorder, so each flush transfers only the delta.
    transferred: Vec<[u64; 3]>,
    transferred_unassigned: [u64; 3],
}

impl DrainState {
    fn new(shards: usize) -> Self {
        DrainState {
            names: Vec::new(),
            span_ids: (0..shards).map(|_| HashMap::new()).collect(),
            next_span_id: 1,
            transferred: vec![[0; 3]; shards],
            transferred_unassigned: [0; 3],
        }
    }

    fn global_span_id(&mut self, shard: usize, local: u64) -> u64 {
        if let Some(&g) = self.span_ids[shard].get(&local) {
            return g;
        }
        let g = self.next_span_id;
        self.next_span_id += 1;
        self.span_ids[shard].insert(local, g);
        g
    }
}

struct Shared {
    sink_id: u64,
    shards: Box<[Shard]>,
    /// Shard indices not currently owned by a thread. `Mutex` hand-off
    /// is what makes shard reuse safe: the previous owner's writes
    /// happen-before the next owner's (single producer at a time).
    free: Mutex<Vec<usize>>,
    names: Mutex<NameTable>,
    /// Records shed by threads that found the shard pool exhausted,
    /// indexed by [`DropClass`].
    unassigned: [AtomicU64; 3],
    recorder: Recorder,
    drain: Mutex<DrainState>,
    stop: AtomicBool,
}

/// Resolves an intern id against the aggregator's local copy of the
/// name table, refreshing it from the shared table on a miss.
fn resolve(shared: &Shared, names: &mut Vec<&'static str>, id: u32) -> &'static str {
    let idx = id as usize;
    if idx >= names.len() {
        let table = lock(&shared.names);
        names.clear();
        names.extend_from_slice(&table.list);
    }
    names.get(idx).copied().unwrap_or("<unknown>")
}

fn apply_record(shared: &Shared, drain: &mut DrainState, shard_idx: usize, words: &[u64; 10]) {
    let tag = words[0] & 0xff;
    let field_count = ((words[0] >> 8) & 0xff) as usize;
    let name = resolve(shared, &mut drain.names, (words[0] >> 32) as u32);
    match tag {
        TAG_SPAN => {
            let local = words[1];
            let parent_local = words[2];
            let id = drain.global_span_id(shard_idx, local);
            drain.span_ids[shard_idx].remove(&local);
            let parent = if parent_local == 0 {
                0
            } else {
                drain.global_span_id(shard_idx, parent_local)
            };
            shared.recorder.ingest_span(SpanRecord {
                id,
                parent,
                name,
                start_ns: words[3],
                end_ns: Some(words[4]),
                tid: shard_idx as u64 + 1,
            });
        }
        TAG_EVENT => {
            let mut fields = Vec::with_capacity(field_count);
            for i in 0..field_count.min(MAX_EVENT_FIELDS) {
                let meta = words[2 + 2 * i];
                let bits = words[3 + 2 * i];
                let key = resolve(shared, &mut drain.names, meta as u32);
                let value = match (meta >> 32) & 0xff {
                    VT_U64 => FieldValue::U64(bits),
                    VT_I64 => FieldValue::I64(bits as i64),
                    VT_F64 => FieldValue::F64(f64::from_bits(bits)),
                    _ => FieldValue::Str(resolve(shared, &mut drain.names, bits as u32)),
                };
                fields.push((key, value));
            }
            shared.recorder.ingest_event(TraceEvent {
                t_ns: words[1],
                name,
                fields,
            });
        }
        TAG_HIST => {
            TraceSink::histogram_record(&shared.recorder, name, words[1]);
        }
        _ => {}
    }
}

/// Drains every shard into the recorder and forwards new drop counts.
/// Consumer-side only; concurrent calls serialize on the drain mutex.
fn flush_shared(shared: &Shared) {
    let mut guard = lock(&shared.drain);
    let drain = &mut *guard;
    for (shard_idx, shard) in shared.shards.iter().enumerate() {
        shard
            .ring
            .drain(|words| apply_record(shared, drain, shard_idx, words));
        for (class_idx, class) in CLASSES.iter().enumerate() {
            let seen = shard.drops[class_idx].load(Ordering::Relaxed);
            let delta = seen - drain.transferred[shard_idx][class_idx];
            if delta > 0 {
                drain.transferred[shard_idx][class_idx] = seen;
                shared.recorder.add_dropped(*class, delta);
            }
        }
    }
    for (class_idx, class) in CLASSES.iter().enumerate() {
        let seen = shared.unassigned[class_idx].load(Ordering::Relaxed);
        let delta = seen - drain.transferred_unassigned[class_idx];
        if delta > 0 {
            drain.transferred_unassigned[class_idx] = seen;
            shared.recorder.add_dropped(*class, delta);
        }
    }
}

/// A span this thread has entered but not yet exited.
struct OpenSpan {
    seq: u64,
    name_id: u32,
    start_ns: u64,
    parent: u64,
}

/// The per-thread producer: owns (at most) one shard of one
/// [`ShardedRecorder`], plus the caches that make recording
/// allocation-free once warm.
struct ThreadWriter {
    sink_id: u64,
    shared: Arc<Shared>,
    shard: Option<usize>,
    next_seq: u64,
    stack: Vec<OpenSpan>,
    /// `&'static str` (address, length) → intern id.
    name_ids: HashMap<(usize, usize), u32>,
    /// `&'static str` (address, length) → exact counter cell.
    counter_cells: HashMap<(usize, usize), Arc<AtomicU64>>,
}

impl ThreadWriter {
    fn attach(shared: &Arc<Shared>, preferred: Option<usize>) -> Self {
        let shard = {
            let mut free = lock(&shared.free);
            match preferred {
                Some(p) => match free.iter().position(|&i| i == p) {
                    Some(pos) => Some(free.swap_remove(pos)),
                    None => free.pop(),
                },
                None => free.pop(),
            }
        };
        ThreadWriter {
            sink_id: shared.sink_id,
            shared: Arc::clone(shared),
            shard,
            next_seq: 0,
            stack: Vec::new(),
            name_ids: HashMap::new(),
            counter_cells: HashMap::new(),
        }
    }

    fn name_id(&mut self, name: &'static str) -> u32 {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(&id) = self.name_ids.get(&key) {
            return id;
        }
        let id = lock(&self.shared.names).intern(name);
        self.name_ids.insert(key, id);
        id
    }

    fn push_record(&self, class: DropClass, words: &[u64; SLOT_WORDS]) {
        match self.shard {
            Some(i) => {
                let shard = &self.shared.shards[i];
                if !shard.ring.push(words) {
                    shard.drops[class as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
            // pool exhausted at attach time: shed, but keep counting
            None => {
                self.shared.unassigned[class as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn span_enter(&mut self, name: &'static str) -> SpanId {
        let name_id = self.name_id(name);
        let start_ns = self.shared.recorder.now_ns();
        let parent = self.stack.last().map_or(0, |s| s.seq);
        self.next_seq += 1;
        let seq = self.next_seq;
        self.stack.push(OpenSpan {
            seq,
            name_id,
            start_ns,
            parent,
        });
        SpanId(seq)
    }

    fn span_exit(&mut self, id: SpanId) {
        let end_ns = self.shared.recorder.now_ns();
        let Some(pos) = self.stack.iter().rposition(|s| s.seq == id.0) else {
            return;
        };
        let open = self.stack.remove(pos);
        let words = [
            header(TAG_SPAN, 0, open.name_id),
            open.seq,
            open.parent,
            open.start_ns,
            end_ns,
            0,
            0,
            0,
            0,
            0,
        ];
        self.push_record(DropClass::Span, &words);
    }

    fn event(&mut self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let name_id = self.name_id(name);
        let n = fields.len().min(MAX_EVENT_FIELDS);
        let mut words = [0u64; SLOT_WORDS];
        words[0] = header(TAG_EVENT, n as u64, name_id);
        words[1] = self.shared.recorder.now_ns();
        for (i, (key, value)) in fields.iter().take(n).enumerate() {
            let key_id = self.name_id(key);
            let (vt, bits) = match value {
                FieldValue::U64(v) => (VT_U64, *v),
                FieldValue::I64(v) => (VT_I64, *v as u64),
                FieldValue::F64(v) => (VT_F64, v.to_bits()),
                FieldValue::Str(s) => (VT_STR, u64::from(self.name_id(s))),
            };
            words[2 + 2 * i] = u64::from(key_id) | (vt << 32);
            words[3 + 2 * i] = bits;
        }
        self.push_record(DropClass::Event, &words);
    }

    fn histogram(&mut self, name: &'static str, value: u64) {
        let name_id = self.name_id(name);
        let words = [header(TAG_HIST, 0, name_id), value, 0, 0, 0, 0, 0, 0, 0, 0];
        self.push_record(DropClass::Histogram, &words);
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(cell) = self.counter_cells.get(&key) {
            cell.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let cell = self.shared.recorder.counter_cell(name);
        cell.fetch_add(delta, Ordering::Relaxed);
        self.counter_cells.insert(key, cell);
    }
}

impl Drop for ThreadWriter {
    fn drop(&mut self) {
        if let Some(i) = self.shard.take() {
            lock(&self.shared.free).push(i);
        }
    }
}

/// Configuration for a [`ShardedRecorder`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of ring shards (= max threads recording concurrently
    /// without shedding). Default: `2 × available_parallelism + 4`,
    /// clamped to `[8, 64]`.
    pub shards: usize,
    /// Slots per shard, rounded up to a power of two (min 8). One slot
    /// holds one complete span, event, or histogram sample.
    pub capacity: usize,
    /// Capacity of the aggregated recorder's retained event ring (the
    /// existing [`Recorder::with_event_capacity`] bound).
    pub event_capacity: usize,
    /// Aggregator drain period. `None` disables the background thread
    /// entirely: records sit in the shards until an explicit
    /// [`ShardedRecorder::flush`] (used by the allocation-budget test,
    /// since draining is the one side that allocates).
    pub drain_interval: Option<Duration>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        ShardConfig {
            shards: (2 * cores + 4).clamp(8, 64),
            capacity: 16_384,
            event_capacity: crate::recorder::DEFAULT_EVENT_CAPACITY,
            drain_interval: Some(Duration::from_millis(5)),
        }
    }
}

/// A [`TraceSink`] whose hot path is wait-free: every recording thread
/// appends to its own bounded SPSC ring shard, and a background
/// aggregator folds the shards into an ordinary [`Recorder`] (spans,
/// events, collapsed stacks, JSON/Chrome export) and its
/// [`MetricsRegistry`] (histograms).
///
/// Snapshot accessors ([`spans`](ShardedRecorder::spans),
/// [`to_json_string`](ShardedRecorder::to_json_string), …) flush
/// pending records first, so they always observe everything recorded
/// *and completed* before the call. In-flight spans are not visible
/// until they exit (spans travel as one complete record).
///
/// Dropping the recorder stops the aggregator thread and performs a
/// final flush.
pub struct ShardedRecorder {
    shared: Arc<Shared>,
    aggregator: Mutex<Option<JoinHandle<()>>>,
}

impl Default for ShardedRecorder {
    fn default() -> Self {
        ShardedRecorder::new()
    }
}

impl ShardedRecorder {
    /// A sharded recorder with [`ShardConfig::default`].
    pub fn new() -> Self {
        ShardedRecorder::with_config(ShardConfig::default())
    }

    /// A sharded recorder with explicit shard count / capacity /
    /// drain policy.
    pub fn with_config(config: ShardConfig) -> Self {
        let count = config.shards.max(1);
        let shards: Box<[Shard]> = (0..count).map(|_| Shard::new(config.capacity)).collect();
        let shared = Arc::new(Shared {
            sink_id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            shards,
            // reversed so `pop()` hands out shard 0 first (the serial
            // path lands on tid 1 in the Chrome export)
            free: Mutex::new((0..count).rev().collect()),
            names: Mutex::new(NameTable::default()),
            unassigned: Default::default(),
            recorder: Recorder::with_event_capacity(config.event_capacity),
            drain: Mutex::new(DrainState::new(count)),
            stop: AtomicBool::new(false),
        });
        let aggregator = config.drain_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mec-obs-aggregator".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::Relaxed) {
                        flush_shared(&shared);
                        std::thread::park_timeout(interval);
                    }
                    flush_shared(&shared);
                })
                .expect("spawn mec-obs aggregator thread")
        });
        ShardedRecorder {
            shared,
            aggregator: Mutex::new(aggregator),
        }
    }

    fn with_writer<R>(
        &self,
        preferred: Option<usize>,
        f: impl FnOnce(&mut ThreadWriter) -> R,
    ) -> R {
        WRITERS.with(|cell| {
            let mut writers = cell.borrow_mut();
            let idx = match writers
                .iter()
                .position(|w| w.sink_id == self.shared.sink_id)
            {
                Some(i) => i,
                None => {
                    // cold path: garbage-collect writers whose sink is
                    // gone (only this thread-local still holds the Arc)
                    writers.retain(|w| Arc::strong_count(&w.shared) > 1);
                    writers.push(ThreadWriter::attach(&self.shared, preferred));
                    writers.len() - 1
                }
            };
            f(&mut writers[idx])
        })
    }

    /// Number of ring shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Drains every shard into the aggregated views right now.
    /// Producers are never blocked by this; concurrent flushes
    /// serialize against each other and the aggregator tick.
    pub fn flush(&self) {
        flush_shared(&self.shared);
    }

    /// The live metrics registry the aggregator folds histogram
    /// samples into (share it with an engine cluster for per-worker
    /// histograms).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.shared.recorder.metrics()
    }

    /// Current value of exact counter `name` (flushes first).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.shared.recorder.counter_value(name)
    }

    /// Snapshot of every exact counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.shared.recorder.counters()
    }

    /// Completed spans aggregated so far (flushes first).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.flush();
        self.shared.recorder.spans()
    }

    /// Aggregated events, oldest first (flushes first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.flush();
        self.shared.recorder.events()
    }

    /// Per-class counts of records lost to full rings, shed by
    /// unassigned threads, or evicted from the retained event ring
    /// (flushes first so shard-side counts are folded in).
    pub fn dropped_records(&self) -> DroppedRecords {
        self.flush();
        self.shared.recorder.dropped_records()
    }

    /// JSON trace export — same schema as [`Recorder::to_json_string`]
    /// (flushes first).
    pub fn to_json_string(&self) -> String {
        self.flush();
        self.shared.recorder.to_json_string()
    }

    /// Chrome trace-event export — see
    /// [`Recorder::to_chrome_trace_string`] (flushes first).
    pub fn to_chrome_trace_string(&self) -> String {
        self.flush();
        self.shared.recorder.to_chrome_trace_string()
    }

    /// Folded-stack lines for `scripts/flamegraph.sh` (flushes first).
    pub fn to_collapsed_stacks(&self) -> String {
        self.flush();
        self.shared.recorder.to_collapsed_stacks()
    }

    /// Prometheus text exposition: the metrics registry snapshot plus
    /// the exact trace counters and the three
    /// `mec_obs_dropped_records{class=…}` series (flushes first).
    pub fn to_prometheus_string(&self) -> String {
        self.flush();
        self.shared.recorder.to_prometheus_string()
    }
}

impl fmt::Debug for ShardedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRecorder")
            .field("shards", &self.shared.shards.len())
            .field("sink_id", &self.shared.sink_id)
            .finish_non_exhaustive()
    }
}

impl Drop for ShardedRecorder {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = lock(&self.aggregator).take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        flush_shared(&self.shared);
    }
}

impl TraceSink for ShardedRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) -> SpanId {
        self.with_writer(None, |w| w.span_enter(name))
    }

    fn span_exit(&self, id: SpanId) {
        if id.is_null() {
            return;
        }
        self.with_writer(None, |w| w.span_exit(id));
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.with_writer(None, |w| w.counter_add(name, delta));
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.with_writer(None, |w| w.event(name, fields));
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.with_writer(None, |w| w.histogram(name, value));
    }

    fn register_worker(&self, worker: usize) {
        let preferred = worker % self.shared.shards.len();
        self.with_writer(Some(preferred), |_| {});
    }

    fn flush(&self) {
        flush_shared(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn manual() -> ShardedRecorder {
        ShardedRecorder::with_config(ShardConfig {
            drain_interval: None,
            ..ShardConfig::default()
        })
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let rec = manual();
        let outer = span(&rec, "outer");
        let inner = span(&rec, "inner");
        inner.finish();
        outer.finish();
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let outer_rec = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_rec = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer_rec.parent, 0);
        assert_eq!(inner_rec.parent, outer_rec.id);
        assert!(outer_rec.end_ns.is_some());
    }

    #[test]
    fn counters_are_exact_and_shared_across_threads() {
        let rec = Arc::new(ShardedRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.counter_add("hits", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter_value("hits"), 4000);
    }

    #[test]
    fn events_round_trip_all_field_types() {
        let rec = manual();
        rec.event(
            "e",
            &[
                ("u", FieldValue::U64(7)),
                ("i", FieldValue::I64(-3)),
                ("x", FieldValue::F64(0.25)),
                ("s", FieldValue::Str("label")),
            ],
        );
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "e");
        assert_eq!(
            events[0].fields,
            vec![
                ("u", FieldValue::U64(7)),
                ("i", FieldValue::I64(-3)),
                ("x", FieldValue::F64(0.25)),
                ("s", FieldValue::Str("label")),
            ]
        );
    }

    #[test]
    fn histogram_samples_land_in_the_registry() {
        let rec = manual();
        rec.histogram_record("stage.nanos", 1_000);
        rec.histogram_record("stage.nanos", 3_000);
        rec.flush();
        let snap = rec.metrics().snapshot();
        let h = snap.histogram("stage.nanos").expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 3_000);
    }

    #[test]
    fn tiny_ring_drops_are_counted_not_blocked_on() {
        let rec = ShardedRecorder::with_config(ShardConfig {
            shards: 1,
            capacity: 8,
            drain_interval: None,
            ..ShardConfig::default()
        });
        for _ in 0..100 {
            rec.event("e", &[]);
        }
        let dropped = rec.dropped_records();
        assert_eq!(dropped.events, 100 - 8);
        assert_eq!(rec.events().len(), 8);
        assert_eq!(dropped.spans, 0);
        assert_eq!(dropped.histogram_samples, 0);
    }

    #[test]
    fn background_aggregator_drains_without_explicit_flush() {
        let rec = ShardedRecorder::with_config(ShardConfig {
            drain_interval: Some(Duration::from_millis(1)),
            ..ShardConfig::default()
        });
        span(&rec, "bg").finish();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if !self::peek_spans(&rec).is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("aggregator never drained the shard");
    }

    /// Reads the recorder's span table *without* triggering the
    /// flush-on-read path, so the background thread must have done it.
    fn peek_spans(rec: &ShardedRecorder) -> Vec<SpanRecord> {
        rec.shared.recorder.spans()
    }

    #[test]
    fn shard_is_recycled_after_thread_exit() {
        let rec = Arc::new(ShardedRecorder::with_config(ShardConfig {
            shards: 1,
            drain_interval: None,
            ..ShardConfig::default()
        }));
        for _ in 0..3 {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || span(rec.as_ref(), "t").finish())
                .join()
                .unwrap();
        }
        assert_eq!(rec.spans().len(), 3);
        assert_eq!(rec.dropped_records().total(), 0);
    }

    #[test]
    fn pool_exhaustion_sheds_with_accounting() {
        let rec = Arc::new(ShardedRecorder::with_config(ShardConfig {
            shards: 1,
            drain_interval: None,
            ..ShardConfig::default()
        }));
        // occupy the only shard from this thread…
        span(rec.as_ref(), "owner").finish();
        // …so a second concurrent thread finds the pool empty
        let rec2 = Arc::clone(&rec);
        std::thread::spawn(move || {
            span(rec2.as_ref(), "shed").finish();
            rec2.event("shed_event", &[]);
        })
        .join()
        .unwrap();
        let d = rec.dropped_records();
        assert_eq!((d.spans, d.events), (1, 1));
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn two_sharded_recorders_do_not_interfere() {
        let a = manual();
        let b = manual();
        let sa = span(&a, "a_root");
        let sb = span(&b, "b_root");
        sb.finish();
        sa.finish();
        assert_eq!(a.spans().len(), 1);
        assert_eq!(b.spans().len(), 1);
        assert_eq!(a.spans()[0].name, "a_root");
        assert_eq!(b.spans()[0].name, "b_root");
    }
}
