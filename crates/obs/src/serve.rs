//! Live telemetry exposition over plain `std::net::TcpListener`.
//!
//! [`serve`] binds a minimal HTTP/1.1 endpoint on a background thread
//! and answers four routes out of a shared [`ShardedRecorder`]:
//!
//! | route      | content type                | payload |
//! |------------|-----------------------------|---------|
//! | `/metrics` | `text/plain; version=0.0.4` | Prometheus exposition (registry + exact counters + drop classes) |
//! | `/trace`   | `application/json`          | the schema-v1 JSON trace snapshot |
//! | `/stacks`  | `text/plain`                | collapsed stacks for `scripts/flamegraph.sh` |
//! | `/healthz` | `text/plain`                | `ok` |
//!
//! `/trace/chrome` additionally serves the Chrome trace-event export.
//! Every response snapshot flushes the shards first, so a scrape
//! always observes completed work. The server is intentionally
//! single-threaded and connection-per-request (`Connection: close`):
//! it exists for scrapes and spot checks, not traffic.

use crate::shard::ShardedRecorder;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Handle to a running exposition endpoint. Dropping it (or calling
/// [`shutdown`](ObsServer::shutdown)) stops the accept loop and joins
/// the server thread.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// The address the listener actually bound — useful with port 0
    /// (`127.0.0.1:0`), where the OS picks a free port.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9464"` or `"127.0.0.1:0"` for an
/// ephemeral port) and serves the recorder's telemetry until the
/// returned [`ObsServer`] is dropped.
pub fn serve(
    recorder: Arc<ShardedRecorder>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("mec-obs-serve".into())
        .spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream, &recorder),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(mut stream: TcpStream, recorder: &ShardedRecorder) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let _ = match path.as_str() {
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &recorder.to_prometheus_string(),
        ),
        "/trace" => respond(
            &mut stream,
            200,
            "application/json",
            &recorder.to_json_string(),
        ),
        "/trace/chrome" => respond(
            &mut stream,
            200,
            "application/json",
            &recorder.to_chrome_trace_string(),
        ),
        "/stacks" => respond(
            &mut stream,
            200,
            "text/plain",
            &recorder.to_collapsed_stacks(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    };
}

/// Reads up to the header terminator and extracts the request path
/// from `GET <path> HTTP/1.1`. Query strings are ignored.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    if method != "GET" {
        return None;
    }
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some(path.to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, TraceSink};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn endpoint_serves_all_routes() {
        let recorder = Arc::new(ShardedRecorder::new());
        span(recorder.as_ref(), "pipeline.solve").finish();
        recorder.counter_add("greedy.moves_evaluated", 3);
        recorder.histogram_record("stage.greedy_nanos", 1_000);
        let server = serve(Arc::clone(&recorder), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("mec_obs_dropped_records{class=\"span\"} 0"));
        assert!(body.contains("greedy_moves_evaluated 3"), "{body}");
        assert!(body.contains("stage_greedy_nanos"), "{body}");

        let (_, body) = get(addr, "/trace");
        assert!(body.contains("\"version\": 1"), "{body}");
        assert!(body.contains("pipeline.solve"), "{body}");

        let (_, body) = get(addr, "/trace/chrome");
        assert!(body.contains("\"traceEvents\""), "{body}");
        assert!(body.contains("\"ph\":\"X\""), "{body}");

        let (head, body) = get(addr, "/stacks");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("pipeline.solve"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let recorder = Arc::new(ShardedRecorder::new());
        let mut server = serve(recorder, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // port is free again: a new bind to the same address succeeds
        let _rebind = TcpListener::bind(addr).expect("rebind after shutdown");
    }
}
