//! Dense vector kernels used by every iterative solver.
//!
//! These are deliberately plain free functions over `&[f64]` — the
//! callers (Lanczos, CG, the parallel engine) own their storage and
//! only need the arithmetic. The arithmetic itself lives in
//! [`crate::kernels`], which selects between the sequential loops and
//! the unrolled 4-lane variants behind the `simd` cargo feature; see
//! that module for the scalar-parity contract.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    crate::kernels::dot(x, y)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    crate::kernels::norm(x)
}

/// `y ← y + alpha · x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernels::axpy(alpha, x, y)
}

/// `x ← alpha · x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    crate::kernels::scale(alpha, x)
}

/// Normalises `x` to unit length in place and returns the original
/// norm. Leaves a zero vector untouched and returns `0.0`.
pub fn normalize(x: &mut [f64]) -> f64 {
    crate::kernels::normalize(x)
}

/// Removes from `x` its components along each (assumed orthonormal)
/// vector in `basis` — one step of modified Gram–Schmidt (blocked
/// classical Gram–Schmidt under the 4-lane kernels).
///
/// # Panics
///
/// Panics if any basis vector length differs from `x`.
pub fn orthogonalize_against(x: &mut [f64], basis: &[Vec<f64>]) {
    crate::kernels::orthogonalize_against(x, basis)
}

/// Maximum absolute component, `‖x‖∞`; `0.0` for an empty slice.
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_and_normalize() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let e1 = vec![1.0, 0.0, 0.0];
        let e2 = vec![0.0, 1.0, 0.0];
        let mut x = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut x, &[e1.clone(), e2.clone()]);
        assert!(dot(&x, &e1).abs() < 1e-12);
        assert!(dot(&x, &e2).abs() < 1e-12);
        assert!((x[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inf_norm_takes_abs() {
        assert_eq!(inf_norm(&[-7.0, 2.0]), 7.0);
        assert_eq!(inf_norm(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_validates_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
