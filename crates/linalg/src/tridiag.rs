//! Symmetric tridiagonal eigensolver (implicit QL with shifts).
//!
//! This is the classic `tql2` algorithm: given the diagonal `d` and
//! sub-diagonal `e` of a symmetric tridiagonal matrix `T`, it returns
//! all eigenvalues in ascending order together with the eigenvectors of
//! `T`. Lanczos reduces the Laplacian to this form; the Fiedler pair is
//! then read out of `T`'s spectrum.

use crate::LinalgError;

/// Eigen-decomposition of a symmetric tridiagonal matrix.
///
/// `values[k]` is the `k`-th smallest eigenvalue; `vectors[k]` is its
/// (unit-norm) eigenvector expressed in the basis `T` was given in.
#[derive(Debug, Clone)]
pub struct TridiagonalEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `vectors[k][i]` is component `i` of eigenvector `k`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenpairs of the symmetric tridiagonal matrix with
/// diagonal `diag` and sub-diagonal `off` (`off[i]` couples rows `i`
/// and `i+1`).
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] when
///   `off.len() + 1 != diag.len()` (except both empty);
/// - [`LinalgError::NoConvergence`] if any eigenvalue needs more than
///   50 QL sweeps (essentially impossible for well-formed input).
///
/// # Example
///
/// ```
/// # use mec_linalg::tridiagonal_eigen;
/// // T = [[2,-1],[-1,2]] has eigenvalues 1 and 3.
/// let eig = tridiagonal_eigen(&[2.0, 2.0], &[-1.0])?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn tridiagonal_eigen(diag: &[f64], off: &[f64]) -> Result<TridiagonalEigen, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(TridiagonalEigen {
            values: vec![],
            vectors: vec![],
        });
    }
    if off.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            actual: off.len(),
        });
    }
    let mut d = diag.to_vec();
    // e is shifted: e[i] couples i-1 and i in the classic formulation.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);

    // z[i][j]: component i of eigenvector j; start with identity.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    const MAX_SWEEPS: usize = 50;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // find small sub-diagonal element
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // form shift
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // accumulate eigenvectors
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // sort ascending, permute vectors accordingly
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|i| z[i][j]).collect())
        .collect();
    Ok(TridiagonalEigen { values, vectors })
}

/// Computes only the eigenvalues (ascending) of the symmetric
/// tridiagonal matrix — the same implicit-QL sweeps as
/// [`tridiagonal_eigen`] without eigenvector accumulation, so the cost
/// drops from cubic to quadratic in the dimension. This is what makes
/// frequent convergence checks affordable in the incremental Lanczos
/// hot path.
///
/// # Errors
///
/// Same as [`tridiagonal_eigen`].
pub fn tridiagonal_eigenvalues(diag: &[f64], off: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(vec![]);
    }
    if off.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            actual: off.len(),
        });
    }
    let mut d = diag.to_vec();
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);

    const MAX_SWEEPS: usize = 50;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    Ok(d)
}

/// Computes the unit eigenvector of the symmetric tridiagonal matrix
/// for the (approximate) eigenvalue `lambda` by inverse iteration,
/// re-orthogonalising against `ortho` each pass so clustered
/// eigenvalues yield independent vectors (pass the vectors already
/// extracted for earlier eigenvalues of the cluster). Deterministic:
/// the start vector is the constant vector, and the returned vector's
/// first non-negligible component is positive.
///
/// Cost is `O(n)` per call — the factorisation is a tridiagonal
/// Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] when `off.len() + 1 != diag.len()`.
pub fn tridiagonal_eigenvector(
    diag: &[f64],
    off: &[f64],
    lambda: f64,
    ortho: &[Vec<f64>],
) -> Result<Vec<f64>, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(vec![]);
    }
    if off.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            actual: off.len(),
        });
    }
    let scale = diag
        .iter()
        .chain(off)
        .fold(1.0f64, |acc, &x| acc.max(x.abs()));
    let tiny = f64::EPSILON * scale;
    let accept = f64::EPSILON * scale * 64.0;

    // U factors of P(T - lambda I): diagonal, first and second
    // superdiagonals (the second fills in under row swaps)
    let mut u = vec![0.0; n];
    let mut s1 = vec![0.0; n];
    let mut s2 = vec![0.0; n];
    let mut best: Option<(f64, Vec<f64>)> = None;
    // attempt 0 starts from the constant vector; later attempts use
    // deterministic pseudo-random starts so that clustered eigenvalues
    // always expose a component along the remaining null direction
    'attempts: for attempt in 0u64..4 {
        let mut x = vec![0.0; n];
        if attempt == 0 {
            x.fill(1.0 / (n as f64).sqrt());
        } else {
            let mut state = 0x7421_d1a6u64 ^ (attempt.wrapping_mul(0x9e37_79b9));
            for xi in x.iter_mut() {
                *xi = (crate::lanczos::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64
                    - 0.5;
            }
        }
        for o in ortho {
            let proj = crate::vector::dot(&x, o);
            crate::vector::axpy(-proj, o, &mut x);
        }
        if crate::vector::normalize(&mut x) <= f64::MIN_POSITIVE {
            continue 'attempts;
        }
        for _ in 0..3 {
            // refactor per pass: O(n), cheaper than caching swap state
            let mut p = diag[0] - lambda;
            let mut q = if n > 1 { off[0] } else { 0.0 };
            let mut r = 0.0;
            for i in 0..n - 1 {
                let a = off[i];
                let b = diag[i + 1] - lambda;
                let c = if i + 1 < n - 1 { off[i + 1] } else { 0.0 };
                let (pp, qq, rr, aa, bb, cc) = if a.abs() > p.abs() {
                    x.swap(i, i + 1);
                    (a, b, c, p, q, r)
                } else {
                    (p, q, r, a, b, c)
                };
                let pivot = if pp.abs() <= tiny {
                    tiny.copysign(pp + f64::MIN_POSITIVE)
                } else {
                    pp
                };
                let mult = aa / pivot;
                x[i + 1] -= mult * x[i];
                u[i] = pivot;
                s1[i] = qq;
                s2[i] = rr;
                p = bb - mult * qq;
                q = cc - mult * rr;
                r = 0.0;
            }
            u[n - 1] = if p.abs() <= tiny {
                tiny.copysign(p + f64::MIN_POSITIVE)
            } else {
                p
            };
            s1[n - 1] = 0.0;
            s2[n - 1] = 0.0;
            // back substitution
            for i in (0..n).rev() {
                let mut acc = x[i];
                if i + 1 < n {
                    acc -= s1[i] * x[i + 1];
                }
                if i + 2 < n {
                    acc -= s2[i] * x[i + 2];
                }
                x[i] = acc / u[i];
            }
            for o in ortho {
                let proj = crate::vector::dot(&x, o);
                crate::vector::axpy(-proj, o, &mut x);
            }
            if crate::vector::normalize(&mut x) <= f64::MIN_POSITIVE {
                continue 'attempts;
            }
        }
        // score the attempt by its true residual ||T x - lambda x||
        let mut res = 0.0f64;
        for i in 0..n {
            let mut acc = (diag[i] - lambda) * x[i];
            if i > 0 {
                acc += off[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += off[i] * x[i + 1];
            }
            res += acc * acc;
        }
        let res = res.sqrt();
        if best.as_ref().is_none_or(|(b, _)| res < *b) {
            best = Some((res, x));
        }
        if res <= accept {
            break;
        }
    }
    let mut x = match best {
        Some((_, x)) => x,
        // every start was annihilated: `ortho` spans the space
        None => vec![0.0; n],
    };
    if let Some(first) = x.iter().find(|v| v.abs() > tiny) {
        if *first < 0.0 {
            for v in &mut x {
                *v = -*v;
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};

    fn residual(diag: &[f64], off: &[f64], lambda: f64, v: &[f64]) -> f64 {
        let n = diag.len();
        let mut r = vec![0.0; n];
        for i in 0..n {
            let mut acc = diag[i] * v[i];
            if i > 0 {
                acc += off[i - 1] * v[i - 1];
            }
            if i + 1 < n {
                acc += off[i] * v[i + 1];
            }
            r[i] = acc - lambda * v[i];
        }
        norm(&r)
    }

    #[test]
    fn two_by_two() {
        let eig = tridiagonal_eigen(&[2.0, 2.0], &[-1.0]).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        for (l, v) in eig.values.iter().zip(&eig.vectors) {
            assert!(residual(&[2.0, 2.0], &[-1.0], *l, v) < 1e-10);
            assert!((norm(v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn single_element() {
        let eig = tridiagonal_eigen(&[5.0], &[]).unwrap();
        assert_eq!(eig.values, vec![5.0]);
        assert_eq!(eig.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn empty_matrix() {
        let eig = tridiagonal_eigen(&[], &[]).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn dimension_mismatch_detected() {
        assert!(matches!(
            tridiagonal_eigen(&[1.0, 2.0], &[0.1, 0.2]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn discrete_laplacian_eigenvalues_match_closed_form() {
        // T_n = tridiag(-1, 2, -1) has eigenvalues 2 - 2 cos(k*pi/(n+1)).
        let n = 12;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for (k, lam) in eig.values.iter().enumerate() {
            let expected =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos();
            assert!(
                (lam - expected).abs() < 1e-10,
                "eigenvalue {k}: got {lam}, expected {expected}"
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 9;
        let diag: Vec<f64> = (0..n).map(|i| (i % 3) as f64 + 1.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| 0.5 + 0.1 * i as f64).collect();
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for a in 0..n {
            for b in 0..n {
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (dot(&eig.vectors[a], &eig.vectors[b]) - expected).abs() < 1e-9,
                    "vectors {a}, {b} not orthonormal"
                );
            }
        }
        for (l, v) in eig.values.iter().zip(&eig.vectors) {
            assert!(residual(&diag, &off, *l, v) < 1e-9);
        }
    }

    #[test]
    fn diagonal_matrix_passes_through() {
        let eig = tridiagonal_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-14);
        assert!((eig.values[1] - 2.0).abs() < 1e-14);
        assert!((eig.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn eigenvalues_only_matches_full_decomposition() {
        let n = 25;
        let diag: Vec<f64> = (0..n).map(|i| 2.0 + ((i * 31) % 5) as f64 * 0.3).collect();
        let off: Vec<f64> = (0..n - 1)
            .map(|i| -1.0 + ((i * 17) % 3) as f64 * 0.2)
            .collect();
        let full = tridiagonal_eigen(&diag, &off).unwrap();
        let vals = tridiagonal_eigenvalues(&diag, &off).unwrap();
        assert_eq!(vals.len(), n);
        for (a, b) in vals.iter().zip(&full.values) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn inverse_iteration_recovers_eigenvectors() {
        let n = 30;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let vals = tridiagonal_eigenvalues(&diag, &off).unwrap();
        let mut found: Vec<Vec<f64>> = vec![];
        for &lam in vals.iter().take(3) {
            let v = tridiagonal_eigenvector(&diag, &off, lam, &found).unwrap();
            assert!(residual(&diag, &off, lam, &v) < 1e-8, "lambda {lam}");
            assert!((norm(&v) - 1.0).abs() < 1e-12);
            for prev in &found {
                assert!(dot(&v, prev).abs() < 1e-8, "not orthogonal");
            }
            found.push(v);
        }
    }

    #[test]
    fn inverse_iteration_separates_a_degenerate_cluster() {
        // block-diagonal: two uncoupled copies of [[2,-1],[-1,2]] give
        // each eigenvalue multiplicity 2
        let diag = vec![2.0, 2.0, 2.0, 2.0];
        let off = vec![-1.0, 0.0, -1.0];
        let vals = tridiagonal_eigenvalues(&diag, &off).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12 && (vals[1] - 1.0).abs() < 1e-12);
        let v0 = tridiagonal_eigenvector(&diag, &off, vals[0], &[]).unwrap();
        let v1 = tridiagonal_eigenvector(&diag, &off, vals[1], std::slice::from_ref(&v0)).unwrap();
        assert!(residual(&diag, &off, 1.0, &v0) < 1e-8);
        assert!(residual(&diag, &off, 1.0, &v1) < 1e-8);
        assert!(dot(&v0, &v1).abs() < 1e-8);
    }

    #[test]
    fn inverse_iteration_is_deterministic_and_sign_canonical() {
        let diag = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let off = vec![0.9, -0.2, 0.6, -0.3];
        let vals = tridiagonal_eigenvalues(&diag, &off).unwrap();
        let a = tridiagonal_eigenvector(&diag, &off, vals[0], &[]).unwrap();
        let b = tridiagonal_eigenvector(&diag, &off, vals[0], &[]).unwrap();
        assert_eq!(a, b);
        assert!(*a.iter().find(|v| v.abs() > 1e-9).unwrap() > 0.0);
    }

    #[test]
    fn values_are_sorted_ascending() {
        let diag: Vec<f64> = (0..20).map(|i| ((i * 7919) % 13) as f64).collect();
        let off: Vec<f64> = (0..19).map(|i| ((i * 104729) % 7) as f64 / 7.0).collect();
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
