//! Symmetric tridiagonal eigensolver (implicit QL with shifts).
//!
//! This is the classic `tql2` algorithm: given the diagonal `d` and
//! sub-diagonal `e` of a symmetric tridiagonal matrix `T`, it returns
//! all eigenvalues in ascending order together with the eigenvectors of
//! `T`. Lanczos reduces the Laplacian to this form; the Fiedler pair is
//! then read out of `T`'s spectrum.

use crate::LinalgError;

/// Eigen-decomposition of a symmetric tridiagonal matrix.
///
/// `values[k]` is the `k`-th smallest eigenvalue; `vectors[k]` is its
/// (unit-norm) eigenvector expressed in the basis `T` was given in.
#[derive(Debug, Clone)]
pub struct TridiagonalEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `vectors[k][i]` is component `i` of eigenvector `k`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenpairs of the symmetric tridiagonal matrix with
/// diagonal `diag` and sub-diagonal `off` (`off[i]` couples rows `i`
/// and `i+1`).
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] when
///   `off.len() + 1 != diag.len()` (except both empty);
/// - [`LinalgError::NoConvergence`] if any eigenvalue needs more than
///   50 QL sweeps (essentially impossible for well-formed input).
///
/// # Example
///
/// ```
/// # use mec_linalg::tridiagonal_eigen;
/// // T = [[2,-1],[-1,2]] has eigenvalues 1 and 3.
/// let eig = tridiagonal_eigen(&[2.0, 2.0], &[-1.0])?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn tridiagonal_eigen(diag: &[f64], off: &[f64]) -> Result<TridiagonalEigen, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(TridiagonalEigen {
            values: vec![],
            vectors: vec![],
        });
    }
    if off.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            actual: off.len(),
        });
    }
    let mut d = diag.to_vec();
    // e is shifted: e[i] couples i-1 and i in the classic formulation.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);

    // z[i][j]: component i of eigenvector j; start with identity.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    const MAX_SWEEPS: usize = 50;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // find small sub-diagonal element
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // form shift
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // accumulate eigenvectors
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // sort ascending, permute vectors accordingly
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|i| z[i][j]).collect())
        .collect();
    Ok(TridiagonalEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};

    fn residual(diag: &[f64], off: &[f64], lambda: f64, v: &[f64]) -> f64 {
        let n = diag.len();
        let mut r = vec![0.0; n];
        for i in 0..n {
            let mut acc = diag[i] * v[i];
            if i > 0 {
                acc += off[i - 1] * v[i - 1];
            }
            if i + 1 < n {
                acc += off[i] * v[i + 1];
            }
            r[i] = acc - lambda * v[i];
        }
        norm(&r)
    }

    #[test]
    fn two_by_two() {
        let eig = tridiagonal_eigen(&[2.0, 2.0], &[-1.0]).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        for (l, v) in eig.values.iter().zip(&eig.vectors) {
            assert!(residual(&[2.0, 2.0], &[-1.0], *l, v) < 1e-10);
            assert!((norm(v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn single_element() {
        let eig = tridiagonal_eigen(&[5.0], &[]).unwrap();
        assert_eq!(eig.values, vec![5.0]);
        assert_eq!(eig.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn empty_matrix() {
        let eig = tridiagonal_eigen(&[], &[]).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn dimension_mismatch_detected() {
        assert!(matches!(
            tridiagonal_eigen(&[1.0, 2.0], &[0.1, 0.2]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn discrete_laplacian_eigenvalues_match_closed_form() {
        // T_n = tridiag(-1, 2, -1) has eigenvalues 2 - 2 cos(k*pi/(n+1)).
        let n = 12;
        let diag = vec![2.0; n];
        let off = vec![-1.0; n - 1];
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for (k, lam) in eig.values.iter().enumerate() {
            let expected =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos();
            assert!(
                (lam - expected).abs() < 1e-10,
                "eigenvalue {k}: got {lam}, expected {expected}"
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 9;
        let diag: Vec<f64> = (0..n).map(|i| (i % 3) as f64 + 1.0).collect();
        let off: Vec<f64> = (0..n - 1).map(|i| 0.5 + 0.1 * i as f64).collect();
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for a in 0..n {
            for b in 0..n {
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (dot(&eig.vectors[a], &eig.vectors[b]) - expected).abs() < 1e-9,
                    "vectors {a}, {b} not orthonormal"
                );
            }
        }
        for (l, v) in eig.values.iter().zip(&eig.vectors) {
            assert!(residual(&diag, &off, *l, v) < 1e-9);
        }
    }

    #[test]
    fn diagonal_matrix_passes_through() {
        let eig = tridiagonal_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-14);
        assert!((eig.values[1] - 2.0).abs() < 1e-14);
        assert!((eig.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn values_are_sorted_ascending() {
        let diag: Vec<f64> = (0..20).map(|i| ((i * 7919) % 13) as f64).collect();
        let off: Vec<f64> = (0..19).map(|i| ((i * 104729) % 7) as f64 / 7.0).collect();
        let eig = tridiagonal_eigen(&diag, &off).unwrap();
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
