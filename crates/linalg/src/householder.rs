//! Householder tridiagonalisation of dense symmetric matrices.
//!
//! The classic two-stage dense symmetric eigensolver: reduce `A` to
//! tridiagonal form `T = Qᵀ A Q` with Householder reflections, then
//! diagonalise `T` with the implicit-QL algorithm
//! ([`tridiagonal_eigen`](crate::tridiagonal_eigen)). `O(n³)` like
//! Jacobi, but with a ~3–6× smaller constant — this is the solver the
//! dense path of the spectral pipeline uses when the sub-graph is too
//! big for Jacobi to be pleasant but sparsity is not worth exploiting.

use crate::tridiag::tridiagonal_eigen;
use crate::{DenseMatrix, LinalgError};

/// Result of a Householder reduction: the tridiagonal entries and the
/// accumulated orthogonal transform.
#[derive(Debug, Clone)]
pub struct HouseholderReduction {
    /// Diagonal of `T`.
    pub diagonal: Vec<f64>,
    /// Sub-diagonal of `T` (length `n − 1`).
    pub off_diagonal: Vec<f64>,
    /// Orthogonal `Q` with `A = Q T Qᵀ`, row-major.
    pub q: DenseMatrix,
}

/// Reduces the symmetric matrix `a` to tridiagonal form.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `a` is not symmetric within
/// `1e-9`.
pub fn householder_tridiagonalize(a: &DenseMatrix) -> Result<HouseholderReduction, LinalgError> {
    let n = a.dim();
    if !a.is_symmetric(1e-9) {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: n,
        });
    }
    // working copy
    let mut m = a.clone();
    let mut q = DenseMatrix::identity(n);
    let mut diag = vec![0.0; n];
    let mut off = vec![0.0; n.saturating_sub(1)];

    for k in 0..n.saturating_sub(2) {
        // build the Householder vector annihilating column k below k+1
        let mut x_norm2 = 0.0;
        for i in (k + 1)..n {
            x_norm2 += m.get(i, k) * m.get(i, k);
        }
        let x0 = m.get(k + 1, k);
        let alpha = -x_norm2.sqrt() * if x0 >= 0.0 { 1.0 } else { -1.0 };
        let v0 = x0 - alpha;
        let mut v = vec![0.0; n];
        v[k + 1] = v0;
        for i in (k + 2)..n {
            v[i] = m.get(i, k);
        }
        let v_norm2 = v0 * v0 + x_norm2 - x0 * x0;
        if v_norm2 <= f64::EPSILON * (1.0 + x_norm2) {
            continue; // column already tridiagonal
        }
        let beta = 2.0 / v_norm2;

        // m ← H m H with H = I − beta v vᵀ, exploiting symmetry:
        // p = beta · m v;  w = p − (beta/2)(pᵀv) v;
        // m ← m − v wᵀ − w vᵀ
        let mut p = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for (j, vj) in v.iter().enumerate() {
                if *vj != 0.0 {
                    acc += m.get(i, j) * vj;
                }
            }
            p[i] = beta * acc;
        }
        let pv: f64 = p.iter().zip(&v).map(|(a, b)| a * b).sum();
        let mut w = p;
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= 0.5 * beta * pv * vi;
        }
        for i in 0..n {
            for j in 0..n {
                let delta = v[i] * w[j] + w[i] * v[j];
                if delta != 0.0 {
                    m.set(i, j, m.get(i, j) - delta);
                }
            }
        }
        // accumulate Q ← Q H
        for i in 0..n {
            let mut acc = 0.0;
            for (j, vj) in v.iter().enumerate() {
                if *vj != 0.0 {
                    acc += q.get(i, j) * vj;
                }
            }
            let s = beta * acc;
            for (j, vj) in v.iter().enumerate() {
                if *vj != 0.0 {
                    q.set(i, j, q.get(i, j) - s * vj);
                }
            }
        }
    }

    for i in 0..n {
        diag[i] = m.get(i, i);
        if i + 1 < n {
            off[i] = m.get(i + 1, i);
        }
    }
    Ok(HouseholderReduction {
        diagonal: diag,
        off_diagonal: off,
        q,
    })
}

/// Full eigendecomposition of a dense symmetric matrix via Householder
/// reduction + implicit QL. Same output contract as
/// [`jacobi_eigen`](crate::jacobi_eigen): `(values ascending,
/// unit eigenvectors)`.
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] if `a` is not symmetric;
/// - [`LinalgError::NoConvergence`] from the QL stage (essentially
///   impossible for well-formed input).
///
/// # Example
///
/// ```
/// # use mec_linalg::{DenseMatrix, householder_eigen};
/// let m = DenseMatrix::from_rows(2, vec![2.0, -1.0, -1.0, 2.0])?;
/// let (vals, _) = householder_eigen(&m)?;
/// assert!((vals[0] - 1.0).abs() < 1e-10);
/// assert!((vals[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn householder_eigen(a: &DenseMatrix) -> Result<(Vec<f64>, Vec<Vec<f64>>), LinalgError> {
    let n = a.dim();
    if n == 0 {
        return Ok((vec![], vec![]));
    }
    let red = householder_tridiagonalize(a)?;
    let t = tridiagonal_eigen(&red.diagonal, &red.off_diagonal)?;
    // eigenvectors of A: Q · (eigenvectors of T)
    let vectors: Vec<Vec<f64>> = t
        .vectors
        .iter()
        .map(|tv| {
            (0..n)
                .map(|i| (0..n).map(|j| red.q.get(i, j) * tv[j]).sum())
                .collect()
        })
        .collect();
    Ok((t.values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};
    use crate::{jacobi_eigen, JacobiOptions};

    fn arrow_matrix(n: usize) -> DenseMatrix {
        // arrowhead: heavy diagonal + first row/col couplings
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, (i + 2) as f64);
            if i > 0 {
                m.set(0, i, 1.0 / (i as f64));
                m.set(i, 0, 1.0 / (i as f64));
            }
        }
        m
    }

    #[test]
    fn reduction_produces_orthogonal_q_and_similar_t() {
        let a = arrow_matrix(8);
        let red = householder_tridiagonalize(&a).unwrap();
        let n = 8;
        // Q orthogonal
        for i in 0..n {
            for j in 0..n {
                let qi: Vec<f64> = (0..n).map(|k| red.q.get(k, i)).collect();
                let qj: Vec<f64> = (0..n).map(|k| red.q.get(k, j)).collect();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&qi, &qj) - expected).abs() < 1e-10, "Q not orthogonal");
            }
        }
        // Q T Qᵀ == A: check by applying both to basis vectors
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            // t_e = T (Qᵀ e)
            let qte: Vec<f64> = (0..n).map(|i| red.q.get(j, i)).collect();
            let mut t_qte = vec![0.0; n];
            for i in 0..n {
                let mut acc = red.diagonal[i] * qte[i];
                if i > 0 {
                    acc += red.off_diagonal[i - 1] * qte[i - 1];
                }
                if i + 1 < n {
                    acc += red.off_diagonal[i] * qte[i + 1];
                }
                t_qte[i] = acc;
            }
            let recon: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|k| red.q.get(i, k) * t_qte[k]).sum())
                .collect();
            for i in 0..n {
                assert!(
                    (recon[i] - a.get(i, j)).abs() < 1e-9,
                    "similarity broken at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matches_jacobi_spectrum() {
        let a = arrow_matrix(12);
        let (hv, hvec) = householder_eigen(&a).unwrap();
        let (jv, _) = jacobi_eigen(&a, &JacobiOptions::default()).unwrap();
        for (x, y) in hv.iter().zip(&jv) {
            assert!((x - y).abs() < 1e-8, "householder {x} vs jacobi {y}");
        }
        // residuals
        for (lam, v) in hv.iter().zip(&hvec) {
            let mut y = vec![0.0; 12];
            crate::SymOp::apply(&a, v, &mut y);
            let res: f64 = y
                .iter()
                .zip(v)
                .map(|(a, b)| (a - lam * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-8, "residual {res}");
            assert!((norm(v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn already_tridiagonal_input_passes_through() {
        let mut m = DenseMatrix::zeros(5);
        for i in 0..5 {
            m.set(i, i, 2.0);
            if i + 1 < 5 {
                m.set(i, i + 1, -1.0);
                m.set(i + 1, i, -1.0);
            }
        }
        let red = householder_tridiagonalize(&m).unwrap();
        for (i, d) in red.diagonal.iter().enumerate() {
            assert!((d - 2.0).abs() < 1e-12, "diag {i}");
        }
        for e in &red.off_diagonal {
            assert!((e.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn small_and_empty_cases() {
        let (v, _) = householder_eigen(&DenseMatrix::zeros(0)).unwrap();
        assert!(v.is_empty());
        let one = DenseMatrix::from_rows(1, vec![4.0]).unwrap();
        let (v1, e1) = householder_eigen(&one).unwrap();
        assert_eq!(v1, vec![4.0]);
        assert_eq!(e1, vec![vec![1.0]]);
        let two = DenseMatrix::from_rows(2, vec![0.0, 3.0, 3.0, 0.0]).unwrap();
        let (v2, _) = householder_eigen(&two).unwrap();
        assert!((v2[0] + 3.0).abs() < 1e-12);
        assert!((v2[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let m = DenseMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(householder_tridiagonalize(&m).is_err());
    }

    #[test]
    fn graph_laplacian_spectrum_matches_closed_form() {
        // path P_6 Laplacian: eigenvalues 2 - 2 cos(k pi / 6)
        let n = 6;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            m.set(i, i, deg);
            if i + 1 < n {
                m.set(i, i + 1, -1.0);
                m.set(i + 1, i, -1.0);
            }
        }
        let (vals, _) = householder_eigen(&m).unwrap();
        for (k, lam) in vals.iter().enumerate() {
            let expected = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / n as f64).cos();
            assert!((lam - expected).abs() < 1e-10, "k={k}");
        }
    }
}
