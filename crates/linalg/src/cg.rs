//! Conjugate-gradient solver for symmetric positive-(semi)definite
//! systems.
//!
//! Used for inverse-iteration refinement of eigenpairs and as an
//! additional workload for the parallel engine benchmarks.

use crate::vector::{axpy, dot, norm};
use crate::{LinalgError, SymOp};

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The (approximate) solution.
    pub solution: Vec<f64>,
    /// Iterations consumed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual: f64,
}

/// Conjugate-gradient solver with relative-residual stopping rule.
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    /// Stop when `‖r‖ ≤ rel_tolerance · ‖b‖`. Default `1e-10`.
    pub rel_tolerance: f64,
    /// Iteration cap. Default `1000`.
    pub max_iterations: usize,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        ConjugateGradient {
            rel_tolerance: 1e-10,
            max_iterations: 1000,
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `A x = b` starting from `x = 0`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
    /// - [`LinalgError::NoConvergence`] if the iteration cap is reached
    ///   before the residual target.
    pub fn solve<A: SymOp>(&self, op: &A, b: &[f64]) -> Result<CgOutcome, LinalgError> {
        let n = op.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let b_norm = norm(b);
        if b_norm == 0.0 {
            return Ok(CgOutcome {
                solution: vec![0.0; n],
                iterations: 0,
                residual: 0.0,
            });
        }
        let target = self.rel_tolerance * b_norm;
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut p = r.clone();
        let mut ap = vec![0.0; n];
        let mut rs_old = dot(&r, &r);
        let mut iterations = 0;
        while rs_old.sqrt() > target {
            if iterations >= self.max_iterations {
                return Err(LinalgError::NoConvergence {
                    iterations,
                    residual: rs_old.sqrt(),
                });
            }
            op.apply(&p, &mut ap);
            let denom = dot(&p, &ap);
            if denom <= 0.0 {
                // direction of zero/negative curvature (semi-definite A):
                // the current x is the best representable answer.
                break;
            }
            let alpha = rs_old / denom;
            axpy(alpha, &p, &mut x);
            axpy(-alpha, &ap, &mut r);
            let rs_new = dot(&r, &r);
            let beta = rs_new / rs_old;
            for (pi, ri) in p.iter_mut().zip(&r) {
                *pi = ri + beta * *pi;
            }
            rs_old = rs_new;
            iterations += 1;
        }
        Ok(CgOutcome {
            solution: x,
            iterations,
            residual: rs_old.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn solves_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])
            .unwrap();
        let out = ConjugateGradient::new().solve(&a, &[1.0, 2.0]).unwrap();
        assert!((out.solution[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((out.solution[1] - 7.0 / 11.0).abs() < 1e-9);
        assert!(out.residual < 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let out = ConjugateGradient::new().solve(&a, &[0.0, 0.0]).unwrap();
        assert_eq!(out.solution, vec![0.0, 0.0]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            ConjugateGradient::new().solve(&a, &[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn laplacian_system_with_compatible_rhs() {
        // L of path 0-1-2; rhs orthogonal to the null space (sums to 0).
        let l = CsrMatrix::laplacian_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let b = [1.0, 0.0, -1.0];
        let out = ConjugateGradient::new().solve(&l, &b).unwrap();
        // check A x = b
        let mut ax = vec![0.0; 3];
        l.apply(&out.solution, &mut ax);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn iteration_cap_reported() {
        let n = 64;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let mut triplets = vec![];
        for &(a, b, w) in &edges {
            triplets.extend([(a, a, w + 0.001), (b, b, w + 0.001), (a, b, -w), (b, a, -w)]);
        }
        let a = CsrMatrix::from_triplets(n, &triplets).unwrap();
        let solver = ConjugateGradient {
            rel_tolerance: 1e-14,
            max_iterations: 2,
        };
        let b = vec![1.0; n];
        assert!(matches!(
            solver.solve(&a, &b),
            Err(LinalgError::NoConvergence { iterations: 2, .. })
        ));
    }

    #[test]
    fn converges_in_at_most_n_iterations_in_exact_arithmetic() {
        // CG on an n-dim SPD system converges in ≤ n steps (plus slack
        // for floating point).
        let n = 30;
        let mut triplets = vec![];
        for i in 0..n {
            triplets.push((i, i, 2.0 + (i % 5) as f64));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
                triplets.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, &triplets).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let out = ConjugateGradient::new().solve(&a, &b).unwrap();
        assert!(out.iterations <= n + 5);
        assert!(out.residual <= 1e-9 * crate::vector::norm(&b) + 1e-12);
    }
}
