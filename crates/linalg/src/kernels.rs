//! Structure-of-arrays numeric kernels shared by every CSR operator.
//!
//! This module is the single home of the inner loops the profiler
//! actually sees: the CSR (Laplacian) matrix-vector product, the dense
//! dot/axpy/normalize trio under the Lanczos recurrence, and the
//! sweep-cut boundary accumulation. Callers in `mec-graph`,
//! `mec-spectral` and `mec-engine` hold their data in SoA form already
//! (parallel `offsets` / `columns` / `weights` arrays); the kernels
//! take those slices directly so there is exactly one implementation of
//! each loop in the workspace.
//!
//! ## The `simd` feature and the scalar-parity contract
//!
//! With the `simd` cargo feature **off** (the default) every kernel is
//! the plain sequential loop the callers used to inline, so results are
//! bit-identical to builds that predate this module, and the feature
//! check compiles away entirely.
//!
//! With the feature **on**, a process-wide switch
//! ([`set_simd_enabled`]) selects hand-unrolled 4-lane variants written
//! for instruction-level parallelism on stable Rust (the toolchain here
//! has no `std::simd`; the unrolled forms are what the autovectorizer
//! and out-of-order hardware want). Two parity classes apply:
//!
//! - **bit-exact**: the CSR matvec kernels block four *rows* per
//!   iteration but keep each row's own accumulation strictly
//!   sequential, and `axpy`/`scale` stay elementwise — these promise
//!   bit-identical output in both modes (covered by exact-equality
//!   proptests);
//! - **1-ulp-scaled**: `dot`/`norm` use four independent partial sums
//!   and `orthogonalize_against` projects against four basis vectors
//!   per pass, which reassociates the reduction — these promise
//!   agreement within a tolerance scaled to the accumulated magnitude.

#[cfg(feature = "simd")]
use std::sync::atomic::{AtomicBool, Ordering};

/// Number of independent accumulator lanes in the unrolled kernels.
///
/// Four f64 chains cover a 128-bit SIMD unit with two-deep pipelining
/// and match the ~4-cycle latency of a dependent FP add, so the
/// unrolled loops keep the adder busy instead of waiting on one chain.
pub const LANES: usize = 4;

#[cfg(feature = "simd")]
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// `true` when the unrolled 4-lane kernels are active.
///
/// Always `false` when the `simd` cargo feature is off, letting the
/// compiler erase the dispatch branch entirely.
#[inline(always)]
pub fn simd_enabled() -> bool {
    #[cfg(feature = "simd")]
    {
        SIMD_ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "simd"))]
    {
        false
    }
}

/// Selects the kernel variant at runtime and returns the effective
/// state. Without the `simd` cargo feature this is a no-op that always
/// returns `false` — the scalar build has nothing to switch to, which
/// is what makes feature-off builds reproduce historical results
/// bit-for-bit.
///
/// The switch exists so one benchmark binary can measure both variants
/// in a single process; library code never toggles it.
pub fn set_simd_enabled(on: bool) -> bool {
    #[cfg(feature = "simd")]
    {
        SIMD_ENABLED.store(on, Ordering::Relaxed);
        on
    }
    #[cfg(not(feature = "simd"))]
    {
        let _ = on;
        false
    }
}

/// Name of the active kernel variant, for benchmark reports.
pub fn kernel_name() -> &'static str {
    if simd_enabled() {
        "simd"
    } else {
        "scalar"
    }
}

/// Column-index types a CSR kernel can walk (`u32` adjacency snapshots,
/// `usize` general matrices).
pub trait ColIndex: Copy {
    /// Widens the stored column index to a `usize` offset into `x`.
    fn index(self) -> usize;
}

impl ColIndex for u32 {
    #[inline(always)]
    fn index(self) -> usize {
        self as usize
    }
}

impl ColIndex for usize {
    #[inline(always)]
    fn index(self) -> usize {
        self
    }
}

// ---------------------------------------------------------------------------
// dense vector kernels
// ---------------------------------------------------------------------------

#[inline]
fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

#[cfg(feature = "simd")]
#[inline]
fn dot_unrolled(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n - n % LANES;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k < chunks {
        a0 += x[k] * y[k];
        a1 += x[k + 1] * y[k + 1];
        a2 += x[k + 2] * y[k + 2];
        a3 += x[k + 3] * y[k + 3];
        k += LANES;
    }
    let mut tail = 0.0;
    for i in chunks..n {
        tail += x[i] * y[i];
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

/// Dot product `xᵀy`. Reassociated under the 4-lane variant
/// (1-ulp-scaled parity class).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    #[cfg(feature = "simd")]
    if simd_enabled() {
        return dot_unrolled(x, y);
    }
    dot_scalar(x, y)
}

/// `y ← y + alpha · x`. Elementwise in both modes, so bit-exact.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha · x`. Elementwise in both modes, so bit-exact.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Removes from `x` its components along each (assumed orthonormal)
/// vector in `basis`.
///
/// Scalar mode is one step of modified Gram–Schmidt, exactly the
/// historical loop. The 4-lane variant projects against [`LANES`]
/// basis vectors per pass (classical Gram–Schmidt within the block,
/// with one fused subtraction sweep) — the callers in the Lanczos
/// recurrence always orthogonalize twice, which is the classic
/// "twice is enough" regime where the blocked form is stable. The
/// block form reads `x` once per four basis vectors instead of four
/// times, which is where the win comes from.
///
/// # Panics
///
/// Panics if any basis vector length differs from `x`.
pub fn orthogonalize_against(x: &mut [f64], basis: &[Vec<f64>]) {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        orthogonalize_blocked(x, basis);
        return;
    }
    for b in basis {
        let c = dot(x, b);
        axpy(-c, b, x);
    }
}

#[cfg(feature = "simd")]
fn orthogonalize_blocked(x: &mut [f64], basis: &[Vec<f64>]) {
    let mut chunks = basis.chunks_exact(LANES);
    for block in &mut chunks {
        let (b0, b1, b2, b3) = (&block[0], &block[1], &block[2], &block[3]);
        assert_eq!(b0.len(), x.len(), "orthogonalize: length mismatch");
        assert_eq!(b1.len(), x.len(), "orthogonalize: length mismatch");
        assert_eq!(b2.len(), x.len(), "orthogonalize: length mismatch");
        assert_eq!(b3.len(), x.len(), "orthogonalize: length mismatch");
        // four independent dot chains over one pass of x
        let (mut c0, mut c1, mut c2, mut c3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &xi) in x.iter().enumerate() {
            c0 += xi * b0[i];
            c1 += xi * b1[i];
            c2 += xi * b2[i];
            c3 += xi * b3[i];
        }
        // one fused subtraction sweep for the whole block
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = ((*xi - c0 * b0[i]) - c1 * b1[i]) - (c2 * b2[i] + c3 * b3[i]);
        }
    }
    for b in chunks.remainder() {
        let c = dot(x, b);
        axpy(-c, b, x);
    }
}

/// Euclidean norm `‖x‖₂`. Same parity class as [`dot`].
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Normalises `x` to unit length in place and returns the original
/// norm. Leaves a zero vector untouched and returns `0.0`.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

// ---------------------------------------------------------------------------
// CSR kernels
// ---------------------------------------------------------------------------

/// Plain CSR matrix-vector product: `y[r] = Σ values·x[col]` for each
/// of the `offsets.len() - 1` rows. Columns index the full-length `x`;
/// `y` is row-block local. Bit-exact in both modes: the 4-lane variant
/// interleaves four rows but keeps every row's accumulation sequential.
///
/// # Panics
///
/// Panics if `y` has fewer rows than `offsets` describes.
pub fn csr_matvec<C: ColIndex>(
    offsets: &[usize],
    columns: &[C],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let rows = offsets.len() - 1;
    assert!(y.len() >= rows, "y length mismatch");
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let blocks = rows - rows % LANES;
        let mut r = 0;
        while r < blocks {
            let o = [offsets[r], offsets[r + 1], offsets[r + 2], offsets[r + 3]];
            let end = offsets[r + 4];
            let lens = [o[1] - o[0], o[2] - o[1], o[3] - o[2], end - o[3]];
            let m = lens[0].min(lens[1]).min(lens[2]).min(lens[3]);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            // lock-step across four rows: independent chains, each row
            // still accumulates in its own sequential order
            for k in 0..m {
                a0 += values[o[0] + k] * x[columns[o[0] + k].index()];
                a1 += values[o[1] + k] * x[columns[o[1] + k].index()];
                a2 += values[o[2] + k] * x[columns[o[2] + k].index()];
                a3 += values[o[3] + k] * x[columns[o[3] + k].index()];
            }
            for k in m..lens[0] {
                a0 += values[o[0] + k] * x[columns[o[0] + k].index()];
            }
            for k in m..lens[1] {
                a1 += values[o[1] + k] * x[columns[o[1] + k].index()];
            }
            for k in m..lens[2] {
                a2 += values[o[2] + k] * x[columns[o[2] + k].index()];
            }
            for k in m..lens[3] {
                a3 += values[o[3] + k] * x[columns[o[3] + k].index()];
            }
            y[r] = a0;
            y[r + 1] = a1;
            y[r + 2] = a2;
            y[r + 3] = a3;
            r += LANES;
        }
        for r in blocks..rows {
            y[r] = row_dot(
                &columns[offsets[r]..offsets[r + 1]],
                &values[offsets[r]..offsets[r + 1]],
                x,
            );
        }
        return;
    }
    for r in 0..rows {
        y[r] = row_dot(
            &columns[offsets[r]..offsets[r + 1]],
            &values[offsets[r]..offsets[r + 1]],
            x,
        );
    }
}

#[inline(always)]
fn row_dot<C: ColIndex>(columns: &[C], values: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (c, v) in columns.iter().zip(values) {
        acc += v * x[c.index()];
    }
    acc
}

#[inline(always)]
fn row_lap<C: ColIndex>(columns: &[C], weights: &[f64], x: &[f64]) -> (f64, f64) {
    let mut acc = 0.0;
    let mut deg = 0.0;
    for (c, w) in columns.iter().zip(weights) {
        acc += w * x[c.index()];
        deg += w;
    }
    (acc, deg)
}

/// Graph-Laplacian matvec `y[r] = deg_r · x[x_base + r] − Σ w·x[col]`
/// with the weighted degree accumulated in-loop (the adjacency-snapshot
/// form). `x_base` offsets the diagonal term for row blocks whose rows
/// start partway into `x`; columns always index the full-length `x`.
/// Bit-exact in both modes.
///
/// # Panics
///
/// Panics if `y` has fewer rows than `offsets` describes.
pub fn csr_laplacian_matvec<C: ColIndex>(
    offsets: &[usize],
    columns: &[C],
    weights: &[f64],
    x: &[f64],
    x_base: usize,
    y: &mut [f64],
) {
    let rows = offsets.len() - 1;
    assert!(y.len() >= rows, "y length mismatch");
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let blocks = rows - rows % LANES;
        let mut r = 0;
        while r < blocks {
            let o = [offsets[r], offsets[r + 1], offsets[r + 2], offsets[r + 3]];
            let end = offsets[r + 4];
            let lens = [o[1] - o[0], o[2] - o[1], o[3] - o[2], end - o[3]];
            let m = lens[0].min(lens[1]).min(lens[2]).min(lens[3]);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut d0, mut d1, mut d2, mut d3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for k in 0..m {
                let (w0, w1) = (weights[o[0] + k], weights[o[1] + k]);
                let (w2, w3) = (weights[o[2] + k], weights[o[3] + k]);
                a0 += w0 * x[columns[o[0] + k].index()];
                d0 += w0;
                a1 += w1 * x[columns[o[1] + k].index()];
                d1 += w1;
                a2 += w2 * x[columns[o[2] + k].index()];
                d2 += w2;
                a3 += w3 * x[columns[o[3] + k].index()];
                d3 += w3;
            }
            for k in m..lens[0] {
                a0 += weights[o[0] + k] * x[columns[o[0] + k].index()];
                d0 += weights[o[0] + k];
            }
            for k in m..lens[1] {
                a1 += weights[o[1] + k] * x[columns[o[1] + k].index()];
                d1 += weights[o[1] + k];
            }
            for k in m..lens[2] {
                a2 += weights[o[2] + k] * x[columns[o[2] + k].index()];
                d2 += weights[o[2] + k];
            }
            for k in m..lens[3] {
                a3 += weights[o[3] + k] * x[columns[o[3] + k].index()];
                d3 += weights[o[3] + k];
            }
            y[r] = d0 * x[x_base + r] - a0;
            y[r + 1] = d1 * x[x_base + r + 1] - a1;
            y[r + 2] = d2 * x[x_base + r + 2] - a2;
            y[r + 3] = d3 * x[x_base + r + 3] - a3;
            r += LANES;
        }
        for r in blocks..rows {
            let (acc, deg) = row_lap(
                &columns[offsets[r]..offsets[r + 1]],
                &weights[offsets[r]..offsets[r + 1]],
                x,
            );
            y[r] = deg * x[x_base + r] - acc;
        }
        return;
    }
    for r in 0..rows {
        let (acc, deg) = row_lap(
            &columns[offsets[r]..offsets[r + 1]],
            &weights[offsets[r]..offsets[r + 1]],
            x,
        );
        y[r] = deg * x[x_base + r] - acc;
    }
}

/// Graph-Laplacian matvec with **precomputed** weighted degrees
/// (`y[r] = degrees[r] · x[x_base + r] − Σ w·x[col]`), the row-block
/// form used by the parallel engine. Bit-exact in both modes.
///
/// # Panics
///
/// Panics if `degrees` or `y` has fewer rows than `offsets` describes.
pub fn csr_laplacian_matvec_deg<C: ColIndex>(
    offsets: &[usize],
    columns: &[C],
    weights: &[f64],
    degrees: &[f64],
    x: &[f64],
    x_base: usize,
    y: &mut [f64],
) {
    let rows = offsets.len() - 1;
    assert!(degrees.len() >= rows, "degrees length mismatch");
    assert!(y.len() >= rows, "y length mismatch");
    // the adjacency part is a plain matvec; fold in the diagonal after
    csr_matvec(offsets, columns, weights, x, y);
    for r in 0..rows {
        y[r] = degrees[r] * x[x_base + r] - y[r];
    }
}

// ---------------------------------------------------------------------------
// sweep-cut kernel
// ---------------------------------------------------------------------------

/// Advances the running sweep-cut boundary weight when one vertex moves
/// to the `local` side: every incident edge whose other endpoint is
/// already local leaves the boundary (`cut − w`), every other edge
/// joins it (`cut + w`). `columns`/`weights` are the vertex's SoA
/// adjacency row; `local` is the membership array the sweep maintains.
///
/// Scalar mode folds into `cut` in row order — exactly the historical
/// loop. The 4-lane variant accumulates the signed row sum in four
/// independent chains, which reassociates the fold (1-ulp-scaled
/// parity class).
#[inline]
pub fn sweep_boundary_update<C: ColIndex>(
    mut cut: f64,
    columns: &[C],
    weights: &[f64],
    local: &[bool],
) -> f64 {
    #[cfg(feature = "simd")]
    if simd_enabled() {
        let n = columns.len();
        let chunks = n - n % LANES;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut k = 0;
        while k < chunks {
            // branchless sign select keeps the four chains independent
            let s0 = if local[columns[k].index()] {
                -weights[k]
            } else {
                weights[k]
            };
            let s1 = if local[columns[k + 1].index()] {
                -weights[k + 1]
            } else {
                weights[k + 1]
            };
            let s2 = if local[columns[k + 2].index()] {
                -weights[k + 2]
            } else {
                weights[k + 2]
            };
            let s3 = if local[columns[k + 3].index()] {
                -weights[k + 3]
            } else {
                weights[k + 3]
            };
            a0 += s0;
            a1 += s1;
            a2 += s2;
            a3 += s3;
            k += LANES;
        }
        for i in chunks..n {
            let w = weights[i];
            a0 += if local[columns[i].index()] { -w } else { w };
        }
        return cut + ((a0 + a1) + (a2 + a3));
    }
    for (c, w) in columns.iter().zip(weights) {
        if local[c.index()] {
            cut -= w;
        } else {
            cut += w;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn matvec_small() {
        // [[1,2],[2,-1]] * [3,4] = [11, 2]
        let offsets = [0usize, 2, 4];
        let columns = [0u32, 1, 0, 1];
        let values = [1.0, 2.0, 2.0, -1.0];
        let mut y = [0.0; 2];
        csr_matvec(&offsets, &columns, &values, &[3.0, 4.0], &mut y);
        assert_eq!(y, [11.0, 2.0]);
    }

    #[test]
    fn laplacian_annihilates_constants() {
        // triangle, unit weights
        let offsets = [0usize, 2, 4, 6];
        let columns = [1u32, 2, 0, 2, 0, 1];
        let weights = [1.0; 6];
        let mut y = [9.0; 3];
        csr_laplacian_matvec(&offsets, &columns, &weights, &[5.0; 3], 0, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn precomputed_degrees_match_inloop() {
        let offsets = [0usize, 2, 4, 6];
        let columns = [1usize, 2, 0, 2, 0, 1];
        let weights = [1.0, 3.0, 1.0, 2.0, 3.0, 2.0];
        let degrees = [4.0, 3.0, 5.0];
        let x = [0.5, -1.5, 2.0];
        let (mut a, mut b) = ([0.0; 3], [0.0; 3]);
        csr_laplacian_matvec(&offsets, &columns, &weights, &x, 0, &mut a);
        csr_laplacian_matvec_deg(&offsets, &columns, &weights, &degrees, &x, 0, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn sweep_update_signs() {
        let columns = [0u32, 1, 2];
        let weights = [1.0, 2.0, 4.0];
        let local = [true, false, true];
        // -1 + 2 - 4 = -3 on top of cut = 10
        assert_eq!(sweep_boundary_update(10.0, &columns, &weights, &local), 7.0);
    }

    #[test]
    fn mode_switch_reports_variant() {
        // feature off: always scalar; feature on: toggles both ways
        if cfg!(feature = "simd") {
            assert!(set_simd_enabled(true));
            assert_eq!(kernel_name(), "simd");
            assert!(!set_simd_enabled(false));
            assert_eq!(kernel_name(), "scalar");
            set_simd_enabled(true);
        } else {
            assert!(!set_simd_enabled(true));
            assert_eq!(kernel_name(), "scalar");
        }
    }
}
