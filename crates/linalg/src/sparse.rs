//! Compressed-sparse-row symmetric matrices.

use crate::{LinalgError, SymOp};

/// A square sparse matrix in CSR form.
///
/// Construction is from coordinate triplets; duplicate `(row, col)`
/// entries are summed, rows are sorted by column. The type is used for
/// graph Laplacians, so symmetry is the caller's contract (checked by
/// [`CsrMatrix::is_symmetric`] in tests).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    dim: usize,
    offsets: Vec<usize>,
    columns: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n × n` matrix from `(row, col, value)` triplets.
    /// Duplicates are summed; explicit zeros are kept.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::IndexOutOfBounds`] if a triplet index `≥ n`;
    /// - [`LinalgError::NonFiniteEntry`] for NaN/infinite values.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self, LinalgError> {
        for &(r, c, v) in triplets {
            if r >= n {
                return Err(LinalgError::IndexOutOfBounds { index: r, dim: n });
            }
            if c >= n {
                return Err(LinalgError::IndexOutOfBounds { index: c, dim: n });
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFiniteEntry(v));
            }
        }
        // bucket per row, merge duplicates
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            rows[r].push((c, v));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut columns = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for row in &mut rows {
            row.sort_by_key(|&(c, _)| c);
            let mut iter = row.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                columns.push(c);
                values.push(v);
            }
            offsets.push(columns.len());
        }
        Ok(CsrMatrix {
            dim: n,
            offsets,
            columns,
            values,
        })
    }

    /// Builds the graph Laplacian `L = D − A` of an undirected weighted
    /// graph given as an edge list over `n` nodes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_triplets`](Self::from_triplets); a
    /// self-loop yields [`LinalgError::IndexOutOfBounds`]-free but
    /// cancels to zero on the diagonal, so it is rejected as a
    /// dimension-style misuse via `debug_assert`.
    pub fn laplacian_from_edges(
        n: usize,
        edges: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        let mut triplets = Vec::with_capacity(edges.len() * 4);
        for &(a, b, w) in edges {
            debug_assert_ne!(a, b, "self-loops have no Laplacian meaning");
            triplets.push((a, a, w));
            triplets.push((b, b, w));
            triplets.push((a, b, -w));
            triplets.push((b, a, -w));
        }
        CsrMatrix::from_triplets(n, &triplets)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.columns.len()
    }

    /// Entry `(r, c)`, `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.dim && c < self.dim, "index out of bounds");
        let (lo, hi) = (self.offsets[r], self.offsets[r + 1]);
        match self.columns[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// `true` when the matrix equals its transpose (exact comparison).
    pub fn is_symmetric(&self) -> bool {
        for r in 0..self.dim {
            let (lo, hi) = (self.offsets[r], self.offsets[r + 1]);
            for (c, v) in self.columns[lo..hi].iter().zip(&self.values[lo..hi]) {
                if self.get(*c, r) != *v {
                    return false;
                }
            }
        }
        true
    }

    /// Iterates the stored `(col, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> impl ExactSizeIterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.offsets[r], self.offsets[r + 1]);
        self.columns[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }
}

impl SymOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "x length mismatch");
        assert_eq!(y.len(), self.dim, "y length mismatch");
        crate::kernels::csr_matvec(&self.offsets, &self.columns, &self.values, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_merge_and_sort() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 2.0), (0, 0, 1.0), (0, 1, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 1.0), (1, 5.0)]);
    }

    #[test]
    fn rejects_bad_triplets() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, &[(2, 0, 1.0)]),
            Err(LinalgError::IndexOutOfBounds { index: 2, dim: 2 })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, &[(0, 0, f64::NAN)]),
            Err(LinalgError::NonFiniteEntry(_))
        ));
    }

    #[test]
    fn matvec_matches_dense() {
        // [[1,2],[2,-1]] * [3,4] = [11, 2]
        let m = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, -1.0)])
            .unwrap();
        let mut y = vec![0.0; 2];
        m.apply(&[3.0, 4.0], &mut y);
        assert_eq!(y, vec![11.0, 2.0]);
        assert!(m.is_symmetric());
    }

    #[test]
    fn asymmetry_detected() {
        let m = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]).unwrap();
        assert!(!m.is_symmetric());
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = CsrMatrix::laplacian_from_edges(
            4,
            &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0), (3, 0, 5.0)],
        )
        .unwrap();
        assert!(l.is_symmetric());
        let mut y = vec![0.0; 4];
        l.apply(&[1.0; 4], &mut y);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
        assert_eq!(l.get(0, 0), 7.0); // deg(0) = 2 + 5
        assert_eq!(l.get(0, 1), -2.0);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert_eq!(m.dim(), 0);
        assert_eq!(m.nnz(), 0);
        let mut y: Vec<f64> = vec![];
        m.apply(&[], &mut y);
    }
}
