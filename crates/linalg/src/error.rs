//! Error type for the linear-algebra kernels.

use std::error::Error;
use std::fmt;

/// Errors raised by matrix construction and the iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions do not agree (`expected`, `actual`).
    DimensionMismatch {
        /// Dimension the operation required.
        expected: usize,
        /// Dimension that was supplied.
        actual: usize,
    },
    /// A triplet refers to a row/column outside the matrix.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Matrix dimension.
        dim: usize,
    },
    /// A non-finite entry was supplied.
    NonFiniteEntry(f64),
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm (or off-diagonal norm) at the last iteration.
        residual: f64,
    },
    /// The requested eigenpair count exceeds what the operator admits.
    TooManyEigenpairs {
        /// Pairs requested.
        requested: usize,
        /// Operator dimension.
        dim: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            LinalgError::NonFiniteEntry(v) => write!(f, "non-finite entry {v}"),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::TooManyEigenpairs { requested, dim } => write!(
                f,
                "requested {requested} eigenpairs from operator of dimension {dim}"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = LinalgError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 2");
        assert!(LinalgError::NonFiniteEntry(f64::NAN)
            .to_string()
            .contains("non-finite"));
        assert!(LinalgError::NoConvergence {
            iterations: 10,
            residual: 0.5
        }
        .to_string()
        .contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
