//! Inverse-iteration refinement of approximate eigenpairs.
//!
//! Lanczos delivers eigenpairs to a configured tolerance; when a
//! tighter residual is wanted (e.g. for the Theorem 2 cross-checks or
//! ill-conditioned Laplacians), one or two steps of shifted inverse
//! iteration — solving `(A − σI) y = x` with conjugate gradients —
//! sharpen the pair at a fraction of a full re-solve.

use crate::vector::{axpy, dot, norm, normalize};
use crate::{ConjugateGradient, Eigenpair, LinalgError, SymOp};

/// A symmetric operator shifted by `−σ` and regularised: applies
/// `(A − σI + εI) x`, keeping CG stable when `σ` is (near) an
/// eigenvalue.
struct ShiftedOp<'a, A: SymOp> {
    inner: &'a A,
    shift: f64,
    regularisation: f64,
}

impl<A: SymOp> SymOp for ShiftedOp<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        let c = self.regularisation - self.shift;
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += c * xi;
        }
    }
}

/// Tuning for [`refine_eigenpair`].
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Inverse-iteration steps (default 2).
    pub steps: usize,
    /// Regularisation added to the shifted system so CG stays positive
    /// definite near the eigenvalue (default `1e-8`).
    pub regularisation: f64,
    /// Inner CG solver settings.
    pub cg: ConjugateGradient,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            steps: 2,
            regularisation: 1e-8,
            cg: ConjugateGradient {
                rel_tolerance: 1e-8,
                max_iterations: 500,
            },
        }
    }
}

/// Residual norm `‖A v − λ v‖₂` of a candidate pair.
pub fn residual_norm<A: SymOp>(op: &A, pair: &Eigenpair) -> f64 {
    let n = op.dim();
    let mut y = vec![0.0; n];
    op.apply(&pair.vector, &mut y);
    axpy(-pair.value, &pair.vector, &mut y);
    norm(&y)
}

/// Refines an approximate eigenpair by shifted inverse iteration with
/// Rayleigh-quotient updates.
///
/// Returns the refined pair; the result is only replaced when its
/// residual actually improved, so refinement never degrades a pair.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if the pair's vector length
/// differs from the operator dimension. Inner CG convergence failures
/// are treated as "no improvement", not errors — the original pair is
/// returned.
pub fn refine_eigenpair<A: SymOp>(
    op: &A,
    pair: &Eigenpair,
    opts: &RefineOptions,
) -> Result<Eigenpair, LinalgError> {
    let n = op.dim();
    if pair.vector.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: pair.vector.len(),
        });
    }
    if n == 0 {
        return Ok(pair.clone());
    }
    let mut best = pair.clone();
    let mut best_res = residual_norm(op, &best);
    let mut current = pair.clone();

    for _ in 0..opts.steps {
        let shifted = ShiftedOp {
            inner: op,
            shift: current.value,
            regularisation: opts.regularisation,
        };
        let Ok(solve) = opts.cg.solve(&shifted, &current.vector) else {
            break; // CG stalled: keep the best pair found so far
        };
        let mut v = solve.solution;
        if normalize(&mut v) == 0.0 {
            break;
        }
        // Rayleigh quotient for the updated vector
        let mut av = vec![0.0; n];
        op.apply(&v, &mut av);
        let lambda = dot(&v, &av);
        current = Eigenpair {
            value: lambda,
            vector: v,
        };
        let res = residual_norm(op, &current);
        if res < best_res {
            best_res = res;
            best = current.clone();
        } else {
            break; // converged (or oscillating): stop early
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{smallest_eigenpairs, CsrMatrix, LanczosOptions};

    fn path_laplacian(n: usize) -> CsrMatrix {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        CsrMatrix::laplacian_from_edges(n, &edges).unwrap()
    }

    #[test]
    fn refinement_tightens_a_loose_pair() {
        let l = path_laplacian(40);
        // deliberately loose Lanczos
        let opts = LanczosOptions {
            tolerance: 1e-3,
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let rough = smallest_eigenpairs(&l, 2, &opts).unwrap();
        let before = residual_norm(&l, &rough[1]);
        let refined = refine_eigenpair(&l, &rough[1], &RefineOptions::default()).unwrap();
        let after = residual_norm(&l, &refined);
        assert!(
            after <= before,
            "refinement must not worsen: {after} > {before}"
        );
        assert!(after < 1e-6, "expected a tight pair, residual {after}");
        let expected = 2.0 - 2.0 * (std::f64::consts::PI / 40.0).cos();
        assert!((refined.value - expected).abs() < 1e-8);
    }

    #[test]
    fn refinement_is_a_fixed_point_on_exact_pairs() {
        let l = path_laplacian(20);
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        let refined = refine_eigenpair(&l, &pairs[1], &RefineOptions::default()).unwrap();
        assert!((refined.value - pairs[1].value).abs() < 1e-9);
        assert!(residual_norm(&l, &refined) <= residual_norm(&l, &pairs[1]) + 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let l = path_laplacian(5);
        let bad = Eigenpair {
            value: 1.0,
            vector: vec![1.0; 3],
        };
        assert!(matches!(
            refine_eigenpair(&l, &bad, &RefineOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn residual_norm_is_zero_for_true_pairs() {
        // K_2 Laplacian with weight 3: (6, [1,-1]/sqrt(2))
        let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)]).unwrap();
        let s = 1.0 / 2.0f64.sqrt();
        let pair = Eigenpair {
            value: 6.0,
            vector: vec![s, -s],
        };
        assert!(residual_norm(&l, &pair) < 1e-12);
    }
}
