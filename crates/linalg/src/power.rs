//! Power iteration for the largest eigenpair.
//!
//! The paper's formula (11) brackets every cut of a sub-graph between
//! the extreme Laplacian eigenvalues; the small end comes from
//! [`smallest_eigenpairs`](crate::smallest_eigenpairs), this module
//! supplies the large end.

use crate::vector::{axpy, dot, norm, normalize};
use crate::{Eigenpair, LinalgError, SymOp};

/// Tuning for [`largest_eigenpair`].
#[derive(Debug, Clone)]
pub struct PowerOptions {
    /// Residual tolerance `‖Av − λv‖ ≤ tolerance · |λ|`. Default `1e-9`.
    pub tolerance: f64,
    /// Iteration cap. Default `5000`.
    pub max_iterations: usize,
    /// Seed for the deterministic start vector.
    pub seed: u64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            tolerance: 1e-9,
            max_iterations: 5000,
            seed: 0x9077_e21a,
        }
    }
}

/// Computes the eigenpair with the largest *absolute* eigenvalue by
/// power iteration. For positive semi-definite operators (graph
/// Laplacians) this is the largest eigenvalue itself.
///
/// # Errors
///
/// - [`LinalgError::TooManyEigenpairs`] for an empty operator;
/// - [`LinalgError::NoConvergence`] if the iteration cap is reached
///   (e.g. when the two largest eigenvalues coincide exactly, where
///   any vector in their span is still returned if it satisfies the
///   residual test).
pub fn largest_eigenpair<A: SymOp>(op: &A, opts: &PowerOptions) -> Result<Eigenpair, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::TooManyEigenpairs {
            requested: 1,
            dim: 0,
        });
    }
    // deterministic pseudo-random start (SplitMix64)
    let mut state = opts.seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut v: Vec<f64> = (0..n)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    normalize(&mut v);
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 0..opts.max_iterations {
        op.apply(&v, &mut av);
        lambda = dot(&v, &av);
        // residual ‖Av − λv‖
        let mut r = av.clone();
        axpy(-lambda, &v, &mut r);
        if norm(&r) <= opts.tolerance * lambda.abs().max(1e-30) {
            return Ok(Eigenpair {
                value: lambda,
                vector: v,
            });
        }
        let len = normalize(&mut av);
        if len == 0.0 {
            // operator annihilated the vector: restart elsewhere
            v = (0..n)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
                .collect();
            normalize(&mut v);
            continue;
        }
        std::mem::swap(&mut v, &mut av);
        let _ = it;
    }
    Err(LinalgError::NoConvergence {
        iterations: opts.max_iterations,
        residual: lambda,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn finds_dominant_eigenvalue_of_k2() {
        // K_2 Laplacian with weight 3: spectrum {0, 6}
        let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)]).unwrap();
        let pair = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        assert!((pair.value - 6.0).abs() < 1e-7);
    }

    #[test]
    fn complete_graph_lambda_max_is_n() {
        let n = 20;
        let mut edges = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b, 1.0));
            }
        }
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let pair = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        assert!((pair.value - n as f64).abs() < 1e-6);
    }

    #[test]
    fn path_graph_lambda_max_matches_closed_form() {
        // P_n: lambda_max = 2 - 2 cos((n-1) pi / n)
        let n = 16;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let pair = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        let expected = 2.0 - 2.0 * ((n - 1) as f64 * std::f64::consts::PI / n as f64).cos();
        assert!((pair.value - expected).abs() < 1e-6);
    }

    #[test]
    fn residual_is_small() {
        let edges: Vec<_> = (0..29).map(|i| (i, i + 1, 1.0 + (i % 3) as f64)).collect();
        let l = CsrMatrix::laplacian_from_edges(30, &edges).unwrap();
        let pair = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        let mut av = vec![0.0; 30];
        l.apply(&pair.vector, &mut av);
        axpy(-pair.value, &pair.vector, &mut av);
        assert!(norm(&av) < 1e-7);
    }

    #[test]
    fn empty_operator_is_rejected() {
        let l = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert!(matches!(
            largest_eigenpair(&l, &PowerOptions::default()),
            Err(LinalgError::TooManyEigenpairs { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let edges: Vec<_> = (0..9).map(|i| (i, i + 1, 1.0)).collect();
        let l = CsrMatrix::laplacian_from_edges(10, &edges).unwrap();
        let a = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        let b = largest_eigenpair(&l, &PowerOptions::default()).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
}
