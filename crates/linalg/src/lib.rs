//! Sparse symmetric linear algebra for the spectral offloading stage.
//!
//! The paper (§III-B) reads the minimum cut of each compressed sub-graph
//! off the eigenvector of the graph Laplacian belonging to the second
//! smallest eigenvalue. This crate supplies everything needed to compute
//! that eigenpair from scratch, with no external linear-algebra
//! dependency:
//!
//! - [`SymOp`] — the symmetric-operator contract (`y = A x`) that both
//!   the serial CSR matrix and the `mec-engine` parallel backend
//!   implement;
//! - [`CsrMatrix`] — compressed-sparse-row symmetric matrices;
//! - [`lanczos`] — Lanczos tridiagonalisation with full
//!   re-orthogonalisation and optional deflation of known eigenvectors;
//! - [`tridiagonal_eigen`] — implicit-QL eigensolver for symmetric
//!   tridiagonal matrices;
//! - [`jacobi_eigen`] — a dense Jacobi reference solver used for
//!   cross-validation and small systems;
//! - [`householder_eigen`] — the classic dense two-stage solver
//!   (Householder reduction + QL), faster than Jacobi at equal
//!   robustness;
//! - [`refine_eigenpair`] — shifted inverse iteration to sharpen
//!   approximate pairs;
//! - [`ConjugateGradient`] — an SPD solver used for inverse-iteration
//!   refinement of eigenpairs.
//!
//! # Example: Fiedler pair of a path graph
//!
//! ```
//! use mec_linalg::{CsrMatrix, smallest_eigenpairs, LanczosOptions};
//!
//! # fn main() -> Result<(), mec_linalg::LinalgError> {
//! // Laplacian of the path 0-1-2 (unit weights).
//! let l = CsrMatrix::from_triplets(
//!     3,
//!     &[
//!         (0, 0, 1.0), (0, 1, -1.0),
//!         (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
//!         (2, 1, -1.0), (2, 2, 1.0),
//!     ],
//! )?;
//! let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default())?;
//! assert!(pairs[0].value.abs() < 1e-8);          // lambda_1 = 0
//! assert!((pairs[1].value - 1.0).abs() < 1e-8);  // lambda_2 = 1 for P_3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// index-based loops over rows/columns are the natural idiom in the
// numeric kernels here; iterator gymnastics would obscure the math
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod cg;
mod dense;
mod error;
mod householder;
pub mod kernels;
mod lanczos;
mod power;
mod refine;
mod sparse;
mod tridiag;
pub mod vector;

pub use cg::{CgOutcome, ConjugateGradient};
pub use dense::{jacobi_eigen, DenseMatrix, JacobiOptions};
pub use error::LinalgError;
pub use householder::{householder_eigen, householder_tridiagonalize, HouseholderReduction};
pub use lanczos::{
    lanczos, lanczos_traced, lanczos_with, smallest_eigenpairs, smallest_eigenpairs_traced,
    smallest_eigenpairs_with, Eigenpair, LanczosOptions, LanczosResult, LanczosRun, LanczosScratch,
};
pub use power::{largest_eigenpair, PowerOptions};
pub use refine::{refine_eigenpair, residual_norm, RefineOptions};
pub use sparse::CsrMatrix;
pub use tridiag::{tridiagonal_eigen, tridiagonal_eigenvalues, tridiagonal_eigenvector};

/// A real symmetric linear operator: everything the iterative solvers
/// need to know about a matrix.
///
/// Implementations must be genuinely symmetric (`xᵀ(Ay) = yᵀ(Ax)`);
/// Lanczos silently produces garbage otherwise.
pub trait SymOp {
    /// Dimension `n` of the operator (matrices are `n × n`).
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl<T: SymOp + ?Sized> SymOp for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}
