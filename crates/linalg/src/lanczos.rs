//! Lanczos iteration for extreme eigenpairs of symmetric operators.
//!
//! The paper's spectral stage needs the two smallest eigenpairs of each
//! compressed sub-graph's Laplacian (Theorem 1: the minimum cut is read
//! off the second-smallest eigenvalue's eigenvector). [`lanczos`]
//! reduces the operator to a small tridiagonal matrix; the Ritz pairs of
//! that matrix approximate the operator's extreme eigenpairs. Full
//! re-orthogonalisation keeps the Krylov basis honest, and breakdown is
//! handled by restarting with a fresh direction — which makes the solver
//! correct on *disconnected* graphs too (multiple zero eigenvalues).

use crate::tridiag::tridiagonal_eigen;
use crate::vector::{axpy, dot, normalize, orthogonalize_against};
use crate::{jacobi_eigen, DenseMatrix, JacobiOptions, LinalgError, SymOp};
use mec_obs::{FieldValue, TraceSink};

/// One converged eigenpair.
#[derive(Debug, Clone)]
pub struct Eigenpair {
    /// The eigenvalue.
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Tuning knobs for [`lanczos`] / [`smallest_eigenpairs`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Krylov-subspace dimension (capped at the operator
    /// dimension). Default `400`.
    pub max_dim: usize,
    /// Ritz-pair residual tolerance. Default `1e-10`.
    pub tolerance: f64,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
    /// Operator dimension at or below which the dense Jacobi solver is
    /// used directly instead of iterating. Default `32`.
    pub dense_cutoff: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_dim: 400,
            tolerance: 1e-10,
            seed: 0x5eed_c0de,
            dense_cutoff: 32,
        }
    }
}

/// Raw output of the Lanczos recurrence: `T = tridiag(beta, alpha,
/// beta)` plus the orthonormal Krylov basis `V` with `A ≈ V T Vᵀ` on
/// the captured subspace.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Diagonal of `T`.
    pub alphas: Vec<f64>,
    /// Sub-diagonal of `T` (one shorter than `alphas`).
    pub betas: Vec<f64>,
    /// Orthonormal basis vectors, `basis[j]` spanning the Krylov space.
    pub basis: Vec<Vec<f64>>,
}

/// SplitMix64 — deterministic start vectors without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_unit_vector(n: usize, seed: &mut u64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|_| (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    normalize(&mut v);
    v
}

/// Runs the Lanczos recurrence with full re-orthogonalisation for up to
/// `steps` iterations (capped at the operator dimension), restarting on
/// breakdown so that the basis keeps growing even across invariant
/// subspaces.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `steps == 0` while the
/// operator is non-empty.
pub fn lanczos<A: SymOp>(
    op: &A,
    steps: usize,
    opts: &LanczosOptions,
) -> Result<LanczosResult, LinalgError> {
    lanczos_traced(op, steps, opts, &mec_obs::NullSink)
}

/// [`lanczos`] with telemetry: bumps the `lanczos.iterations` counter
/// per recurrence step and `lanczos.restarts` per breakdown restart on
/// `sink`. Numerically identical to the untraced entry point.
///
/// # Errors
///
/// Same as [`lanczos`].
pub fn lanczos_traced<A: SymOp>(
    op: &A,
    steps: usize,
    opts: &LanczosOptions,
    sink: &dyn TraceSink,
) -> Result<LanczosResult, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Ok(LanczosResult {
            alphas: vec![],
            betas: vec![],
            basis: vec![],
        });
    }
    if steps == 0 {
        return Err(LinalgError::DimensionMismatch {
            expected: 1,
            actual: 0,
        });
    }
    let m = steps.min(n);
    let mut seed = opts.seed;
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas = Vec::with_capacity(m);
    let mut betas = Vec::with_capacity(m.saturating_sub(1));

    let mut v = random_unit_vector(n, &mut seed);
    let mut w = vec![0.0; n];
    let breakdown_tol = 1e-12;
    let mut restarts = 0u64;

    while basis.len() < m {
        op.apply(&v, &mut w);
        let alpha = dot(&v, &w);
        alphas.push(alpha);
        axpy(-alpha, &v, &mut w);
        if let Some(prev) = basis.last() {
            let beta_prev = *betas.last().unwrap_or(&0.0);
            axpy(-beta_prev, prev, &mut w);
        }
        basis.push(std::mem::replace(&mut v, vec![0.0; n]));
        if basis.len() == m {
            break;
        }
        // full re-orthogonalisation, twice for stability
        orthogonalize_against(&mut w, &basis);
        orthogonalize_against(&mut w, &basis);
        let beta = normalize(&mut w);
        if beta <= breakdown_tol {
            // invariant subspace exhausted: restart in a fresh direction
            let mut fresh = random_unit_vector(n, &mut seed);
            orthogonalize_against(&mut fresh, &basis);
            orthogonalize_against(&mut fresh, &basis);
            let r = normalize(&mut fresh);
            if r <= breakdown_tol {
                break; // the whole space is spanned
            }
            restarts += 1;
            betas.push(0.0);
            v = fresh;
        } else {
            betas.push(beta);
            v = std::mem::take(&mut w);
        }
        w = vec![0.0; n];
    }
    sink.counter_add("lanczos.iterations", alphas.len() as u64);
    if restarts > 0 {
        sink.counter_add("lanczos.restarts", restarts);
    }
    Ok(LanczosResult {
        alphas,
        betas,
        basis,
    })
}

/// Computes the `k` smallest eigenpairs of `op`, sorted ascending.
///
/// Small operators (`dim ≤ opts.dense_cutoff`) are solved exactly with
/// the dense Jacobi reference; larger ones run Lanczos with growing
/// subspace until the requested Ritz pairs converge to
/// `opts.tolerance`.
///
/// # Errors
///
/// - [`LinalgError::TooManyEigenpairs`] if `k > op.dim()`;
/// - [`LinalgError::NoConvergence`] if `opts.max_dim` is exhausted
///   before the pairs converge.
///
/// # Example
///
/// ```
/// # use mec_linalg::{CsrMatrix, smallest_eigenpairs, LanczosOptions};
/// // 2-node graph Laplacian with edge weight 3: eigenvalues {0, 6}.
/// let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)])?;
/// let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default())?;
/// assert!(pairs[0].value.abs() < 1e-9);
/// assert!((pairs[1].value - 6.0).abs() < 1e-9);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn smallest_eigenpairs<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
) -> Result<Vec<Eigenpair>, LinalgError> {
    smallest_eigenpairs_traced(op, k, opts, &mec_obs::NullSink)
}

/// [`smallest_eigenpairs`] with telemetry: each Krylov burst emits a
/// `lanczos.burst` event (subspace dimension, residual estimate,
/// convergence flag), dense fallbacks bump `lanczos.dense_solves`, and
/// converged iterative solves bump `lanczos.solves`. Numerically
/// identical to the untraced entry point.
///
/// # Errors
///
/// Same as [`smallest_eigenpairs`].
pub fn smallest_eigenpairs_traced<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
    sink: &dyn TraceSink,
) -> Result<Vec<Eigenpair>, LinalgError> {
    let n = op.dim();
    if k > n {
        return Err(LinalgError::TooManyEigenpairs {
            requested: k,
            dim: n,
        });
    }
    if k == 0 {
        return Ok(vec![]);
    }
    if n <= opts.dense_cutoff {
        sink.counter_add("lanczos.dense_solves", 1);
        let dense = DenseMatrix::from_op(op);
        // Householder + QL for anything non-trivial; Jacobi's sturdier
        // rotations only for very small systems where its cost is nil.
        let (vals, vecs) = if n <= 8 {
            jacobi_eigen(&dense, &JacobiOptions::default())?
        } else {
            crate::householder_eigen(&dense)?
        };
        return Ok(vals
            .into_iter()
            .zip(vecs)
            .take(k)
            .map(|(value, vector)| Eigenpair { value, vector })
            .collect());
    }

    // grow the Krylov space in bursts, testing convergence between them
    let mut dim = (4 * k + 20).min(n);
    loop {
        let run = lanczos_traced(op, dim, opts, sink)?;
        let t = tridiagonal_eigen(&run.alphas, &run.betas)?;
        let m = run.alphas.len();
        if m >= k {
            // Ritz residual estimate: |beta_m * s[m-1]| per pair; when the
            // basis spans the full space the Ritz pairs are exact.
            let beta_last = if m < n {
                run.betas.last().copied().unwrap_or(0.0)
            } else {
                0.0
            };
            let converged = (0..k).all(|i| {
                let tail = t.vectors[i][m - 1].abs();
                beta_last * tail <= opts.tolerance.max(1e-14 * t.values[k - 1].abs())
            });
            if sink.enabled() {
                let residual = (0..k)
                    .map(|i| beta_last * t.vectors[i][m - 1].abs())
                    .fold(0.0f64, f64::max);
                sink.event(
                    "lanczos.burst",
                    &[
                        ("dim", FieldValue::from(m)),
                        ("residual", FieldValue::from(residual)),
                        ("converged", FieldValue::from(converged || m >= n)),
                    ],
                );
            }
            if converged || m >= n {
                sink.counter_add("lanczos.solves", 1);
                let mut out = Vec::with_capacity(k);
                for i in 0..k {
                    let mut x = vec![0.0; n];
                    for (j, b) in run.basis.iter().enumerate() {
                        axpy(t.vectors[i][j], b, &mut x);
                    }
                    normalize(&mut x);
                    out.push(Eigenpair {
                        value: t.values[i],
                        vector: x,
                    });
                }
                return Ok(out);
            }
        }
        if dim >= opts.max_dim.min(n) {
            return Err(LinalgError::NoConvergence {
                iterations: dim,
                residual: run.betas.last().copied().unwrap_or(0.0),
            });
        }
        dim = (dim * 2).min(opts.max_dim.min(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::norm;
    use crate::CsrMatrix;

    fn residual(op: &impl SymOp, pair: &Eigenpair) -> f64 {
        let n = op.dim();
        let mut y = vec![0.0; n];
        op.apply(&pair.vector, &mut y);
        axpy(-pair.value, &pair.vector, &mut y);
        norm(&y)
    }

    fn path_laplacian(n: usize) -> CsrMatrix {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        CsrMatrix::laplacian_from_edges(n, &edges).unwrap()
    }

    fn cycle_laplacian(n: usize) -> CsrMatrix {
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((n - 1, 0, 1.0));
        CsrMatrix::laplacian_from_edges(n, &edges).unwrap()
    }

    #[test]
    fn path_graph_fiedler_value_matches_closed_form() {
        // P_n Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
        for n in [8usize, 33, 80] {
            let l = path_laplacian(n);
            let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
            assert!(pairs[0].value.abs() < 1e-8, "n={n}: lambda1 not 0");
            let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
            assert!(
                (pairs[1].value - expected).abs() < 1e-7,
                "n={n}: got {}, expected {expected}",
                pairs[1].value
            );
            for p in &pairs {
                assert!(residual(&l, p) < 1e-6, "n={n}: residual too large");
            }
        }
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n eigenvalues: 2 - 2 cos(2 pi k / n); lambda2 has multiplicity 2.
        let n = 40;
        let l = cycle_laplacian(n);
        let pairs = smallest_eigenpairs(&l, 3, &LanczosOptions::default()).unwrap();
        let lam2 = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(pairs[0].value.abs() < 1e-8);
        assert!((pairs[1].value - lam2).abs() < 1e-7);
        assert!((pairs[2].value - lam2).abs() < 1e-7);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: eigenvalues 0 and n (multiplicity n-1).
        let n = 50;
        let mut edges = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b, 1.0));
            }
        }
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let pairs = smallest_eigenpairs(&l, 4, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-7);
        for p in &pairs[1..] {
            assert!((p.value - n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn disconnected_graph_has_double_zero() {
        // two disjoint edges: eigenvalues {0, 0, 2, 2}
        let l = CsrMatrix::laplacian_from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let opts = LanczosOptions {
            dense_cutoff: 0, // force the iterative path
            ..LanczosOptions::default()
        };
        let pairs = smallest_eigenpairs(&l, 3, &opts).unwrap();
        assert!(pairs[0].value.abs() < 1e-9);
        assert!(pairs[1].value.abs() < 1e-9);
        assert!((pairs[2].value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dense_cutoff_path_agrees_with_lanczos_path() {
        let l = path_laplacian(30);
        let dense_opts = LanczosOptions::default(); // 30 <= 32 → Jacobi
        let iter_opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let a = smallest_eigenpairs(&l, 2, &dense_opts).unwrap();
        let b = smallest_eigenpairs(&l, 2, &iter_opts).unwrap();
        assert!((a[1].value - b[1].value).abs() < 1e-7);
        // eigenvectors agree up to sign
        let dot_abs: f64 = a[1]
            .vector
            .iter()
            .zip(&b[1].vector)
            .map(|(x, y)| x * y)
            .sum::<f64>()
            .abs();
        assert!((dot_abs - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weighted_two_node_graph() {
        let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)]).unwrap();
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-12);
        assert!((pairs[1].value - 6.0).abs() < 1e-9);
    }

    #[test]
    fn requesting_too_many_pairs_errors() {
        let l = path_laplacian(3);
        assert!(matches!(
            smallest_eigenpairs(&l, 4, &LanczosOptions::default()),
            Err(LinalgError::TooManyEigenpairs { .. })
        ));
    }

    #[test]
    fn zero_pairs_is_empty() {
        let l = path_laplacian(3);
        assert!(smallest_eigenpairs(&l, 0, &LanczosOptions::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lanczos_basis_is_orthonormal() {
        let l = path_laplacian(60);
        let run = lanczos(&l, 25, &LanczosOptions::default()).unwrap();
        assert_eq!(run.alphas.len(), 25);
        assert_eq!(run.betas.len(), 24);
        for (i, a) in run.basis.iter().enumerate() {
            for (j, b) in run.basis.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot(a, b) - expected).abs() < 1e-8,
                    "basis {i},{j} not orthonormal"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let l = path_laplacian(50);
        let opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let a = smallest_eigenpairs(&l, 2, &opts).unwrap();
        let b = smallest_eigenpairs(&l, 2, &opts).unwrap();
        assert_eq!(a[1].value.to_bits(), b[1].value.to_bits());
        assert_eq!(a[1].vector, b[1].vector);
    }

    #[test]
    fn empty_operator() {
        let l = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert!(smallest_eigenpairs(&l, 0, &LanczosOptions::default())
            .unwrap()
            .is_empty());
        let run = lanczos(&l, 5, &LanczosOptions::default()).unwrap();
        assert!(run.basis.is_empty());
    }
}
