//! Lanczos iteration for extreme eigenpairs of symmetric operators.
//!
//! The paper's spectral stage needs the two smallest eigenpairs of each
//! compressed sub-graph's Laplacian (Theorem 1: the minimum cut is read
//! off the second-smallest eigenvalue's eigenvector). [`lanczos`]
//! reduces the operator to a small tridiagonal matrix; the Ritz pairs of
//! that matrix approximate the operator's extreme eigenpairs. Full
//! re-orthogonalisation keeps the Krylov basis honest, and breakdown is
//! handled by restarting with a fresh direction — which makes the solver
//! correct on *disconnected* graphs too (multiple zero eigenvalues).

use crate::tridiag::{tridiagonal_eigen, tridiagonal_eigenvalues, tridiagonal_eigenvector};
use crate::vector::{axpy, dot, normalize, orthogonalize_against};
use crate::{jacobi_eigen, DenseMatrix, JacobiOptions, LinalgError, SymOp};
use mec_obs::{FieldValue, TraceSink};

/// One converged eigenpair.
#[derive(Debug, Clone)]
pub struct Eigenpair {
    /// The eigenvalue.
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Tuning knobs for [`lanczos`] / [`smallest_eigenpairs`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Krylov-subspace dimension (capped at the operator
    /// dimension). Default `400`.
    pub max_dim: usize,
    /// Ritz-pair residual tolerance. Default `1e-10`.
    pub tolerance: f64,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
    /// Operator dimension at or below which the dense Jacobi solver is
    /// used directly instead of iterating. Default `32`.
    pub dense_cutoff: usize,
    /// When `true`, a caller-supplied start vector (the `warm` argument
    /// of [`lanczos_with`] / [`smallest_eigenpairs_with`]) seeds the
    /// first Krylov direction instead of the pseudo-random one. Default
    /// `false`; with the flag off every entry point is bit-identical to
    /// the historical behaviour regardless of what `warm` holds.
    pub warm_start: bool,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_dim: 400,
            tolerance: 1e-10,
            seed: 0x5eed_c0de,
            dense_cutoff: 32,
            warm_start: false,
        }
    }
}

/// Reusable buffers for repeated Lanczos solves.
///
/// The recurrence needs one length-`n` vector per Krylov step plus two
/// working vectors; a cold run allocates them all. Threading one
/// `LanczosScratch` through repeated [`lanczos_with`] /
/// [`smallest_eigenpairs_with`] calls recycles every retired basis
/// vector through an internal pool, so a warm solve at the same (or
/// smaller) dimension performs **zero** heap allocations in the
/// recurrence — the property `tests/alloc_budget.rs` pins.
#[derive(Debug, Default)]
pub struct LanczosScratch {
    alphas: Vec<f64>,
    betas: Vec<f64>,
    basis: Vec<Vec<f64>>,
    pool: Vec<Vec<f64>>,
}

impl LanczosScratch {
    /// An empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the previous run's basis vectors back into the pool.
    fn retire(&mut self) {
        self.pool.append(&mut self.basis);
    }

    /// Checks a zeroed length-`n` buffer out of the pool (allocating
    /// only when the pool is dry or too small).
    fn checkout(&mut self, n: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(n, 0.0);
        buf
    }
}

/// Borrowed view of one Lanczos run living inside a
/// [`LanczosScratch`] — the zero-copy analogue of [`LanczosResult`].
#[derive(Debug)]
pub struct LanczosRun<'a> {
    /// Diagonal of `T`.
    pub alphas: &'a [f64],
    /// Sub-diagonal of `T` (one shorter than `alphas`).
    pub betas: &'a [f64],
    /// Orthonormal basis vectors spanning the Krylov space.
    pub basis: &'a [Vec<f64>],
}

/// Raw output of the Lanczos recurrence: `T = tridiag(beta, alpha,
/// beta)` plus the orthonormal Krylov basis `V` with `A ≈ V T Vᵀ` on
/// the captured subspace.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Diagonal of `T`.
    pub alphas: Vec<f64>,
    /// Sub-diagonal of `T` (one shorter than `alphas`).
    pub betas: Vec<f64>,
    /// Orthonormal basis vectors, `basis[j]` spanning the Krylov space.
    pub basis: Vec<Vec<f64>>,
}

/// SplitMix64 — deterministic start vectors without a rand dependency.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fills `v` with the deterministic pseudo-random unit vector —
/// allocation-free so the recurrence can recycle its buffers.
fn random_unit_vector_into(v: &mut [f64], seed: &mut u64) {
    for x in v.iter_mut() {
        *x = (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    normalize(v);
}

/// Runs the Lanczos recurrence with full re-orthogonalisation for up to
/// `steps` iterations (capped at the operator dimension), restarting on
/// breakdown so that the basis keeps growing even across invariant
/// subspaces.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `steps == 0` while the
/// operator is non-empty.
pub fn lanczos<A: SymOp>(
    op: &A,
    steps: usize,
    opts: &LanczosOptions,
) -> Result<LanczosResult, LinalgError> {
    lanczos_traced(op, steps, opts, &mec_obs::NullSink)
}

/// [`lanczos`] with telemetry: bumps the `lanczos.iterations` counter
/// per recurrence step and `lanczos.restarts` per breakdown restart on
/// `sink`. Numerically identical to the untraced entry point.
///
/// # Errors
///
/// Same as [`lanczos`].
pub fn lanczos_traced<A: SymOp>(
    op: &A,
    steps: usize,
    opts: &LanczosOptions,
    sink: &dyn TraceSink,
) -> Result<LanczosResult, LinalgError> {
    let mut scratch = LanczosScratch::new();
    let run = lanczos_with(op, steps, opts, None, sink, &mut scratch)?;
    Ok(LanczosResult {
        alphas: run.alphas.to_vec(),
        betas: run.betas.to_vec(),
        basis: run.basis.to_vec(),
    })
}

/// [`lanczos_traced`] running entirely inside a caller-owned
/// [`LanczosScratch`]: the returned [`LanczosRun`] borrows the arena,
/// and a warm re-run at the same dimension performs no heap
/// allocations in the recurrence.
///
/// `warm` optionally seeds the first Krylov direction; it is honoured
/// only when `opts.warm_start` is set *and* its length matches the
/// operator (and it is not numerically zero) — otherwise the usual
/// seeded pseudo-random start vector is used, keeping results
/// bit-identical to [`lanczos`].
///
/// # Errors
///
/// Same as [`lanczos`].
pub fn lanczos_with<'s, A: SymOp>(
    op: &A,
    steps: usize,
    opts: &LanczosOptions,
    warm: Option<&[f64]>,
    sink: &dyn TraceSink,
    scratch: &'s mut LanczosScratch,
) -> Result<LanczosRun<'s>, LinalgError> {
    let n = op.dim();
    scratch.retire();
    scratch.alphas.clear();
    scratch.betas.clear();
    if n == 0 {
        return Ok(LanczosRun {
            alphas: &scratch.alphas,
            betas: &scratch.betas,
            basis: &scratch.basis,
        });
    }
    if steps == 0 {
        return Err(LinalgError::DimensionMismatch {
            expected: 1,
            actual: 0,
        });
    }
    let m = steps.min(n);
    let mut seed = opts.seed;
    scratch.alphas.reserve(m);
    scratch.betas.reserve(m.saturating_sub(1));
    scratch.basis.reserve(m);
    let breakdown_tol = 1e-12;

    let mut v = scratch.checkout(n);
    match warm {
        Some(w0) if opts.warm_start && w0.len() == n => {
            v.copy_from_slice(w0);
            if normalize(&mut v) <= breakdown_tol {
                random_unit_vector_into(&mut v, &mut seed);
            }
        }
        _ => random_unit_vector_into(&mut v, &mut seed),
    }
    let mut w = scratch.checkout(n);
    let mut restarts = 0u64;

    while scratch.basis.len() < m {
        op.apply(&v, &mut w);
        let alpha = dot(&v, &w);
        scratch.alphas.push(alpha);
        axpy(-alpha, &v, &mut w);
        if let Some(prev) = scratch.basis.last() {
            let beta_prev = *scratch.betas.last().unwrap_or(&0.0);
            axpy(-beta_prev, prev, &mut w);
        }
        let recycled = scratch.checkout(n);
        scratch.basis.push(std::mem::replace(&mut v, recycled));
        if scratch.basis.len() == m {
            break;
        }
        // full re-orthogonalisation, twice for stability
        orthogonalize_against(&mut w, &scratch.basis);
        orthogonalize_against(&mut w, &scratch.basis);
        let beta = normalize(&mut w);
        if beta <= breakdown_tol {
            // invariant subspace exhausted: restart in a fresh direction
            random_unit_vector_into(&mut v, &mut seed);
            orthogonalize_against(&mut v, &scratch.basis);
            orthogonalize_against(&mut v, &scratch.basis);
            let r = normalize(&mut v);
            if r <= breakdown_tol {
                break; // the whole space is spanned
            }
            restarts += 1;
            scratch.betas.push(0.0);
            w.fill(0.0);
        } else {
            scratch.betas.push(beta);
            std::mem::swap(&mut v, &mut w);
            w.fill(0.0);
        }
    }
    scratch.pool.push(v);
    scratch.pool.push(w);
    sink.counter_add("lanczos.iterations", scratch.alphas.len() as u64);
    sink.histogram_record("lanczos.iterations", scratch.alphas.len() as u64);
    if restarts > 0 {
        sink.counter_add("lanczos.restarts", restarts);
    }
    Ok(LanczosRun {
        alphas: &scratch.alphas,
        betas: &scratch.betas,
        basis: &scratch.basis,
    })
}

/// Computes the `k` smallest eigenpairs of `op`, sorted ascending.
///
/// Small operators (`dim ≤ opts.dense_cutoff`) are solved exactly with
/// the dense Jacobi reference; larger ones run Lanczos with growing
/// subspace until the requested Ritz pairs converge to
/// `opts.tolerance`.
///
/// # Errors
///
/// - [`LinalgError::TooManyEigenpairs`] if `k > op.dim()`;
/// - [`LinalgError::NoConvergence`] if `opts.max_dim` is exhausted
///   before the pairs converge.
///
/// # Example
///
/// ```
/// # use mec_linalg::{CsrMatrix, smallest_eigenpairs, LanczosOptions};
/// // 2-node graph Laplacian with edge weight 3: eigenvalues {0, 6}.
/// let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)])?;
/// let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default())?;
/// assert!(pairs[0].value.abs() < 1e-9);
/// assert!((pairs[1].value - 6.0).abs() < 1e-9);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn smallest_eigenpairs<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
) -> Result<Vec<Eigenpair>, LinalgError> {
    smallest_eigenpairs_traced(op, k, opts, &mec_obs::NullSink)
}

/// [`smallest_eigenpairs`] with telemetry: each Krylov burst emits a
/// `lanczos.burst` event (subspace dimension, residual estimate,
/// convergence flag), dense fallbacks bump `lanczos.dense_solves`, and
/// converged iterative solves bump `lanczos.solves`. Numerically
/// identical to the untraced entry point.
///
/// # Errors
///
/// Same as [`smallest_eigenpairs`].
pub fn smallest_eigenpairs_traced<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
    sink: &dyn TraceSink,
) -> Result<Vec<Eigenpair>, LinalgError> {
    let mut scratch = LanczosScratch::new();
    smallest_eigenpairs_with(op, k, opts, None, sink, &mut scratch)
}

/// [`smallest_eigenpairs_traced`] with a caller-owned
/// [`LanczosScratch`] and an optional warm-start vector.
///
/// The Krylov recurrence recycles `scratch`'s buffer pool, so repeated
/// solves stop allocating once the arena is warm. `warm` seeds the
/// first Krylov direction when `opts.warm_start` is set (see
/// [`lanczos_with`]); with the flag off the result is bit-identical to
/// [`smallest_eigenpairs`].
///
/// # Errors
///
/// Same as [`smallest_eigenpairs`].
pub fn smallest_eigenpairs_with<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
    warm: Option<&[f64]>,
    sink: &dyn TraceSink,
    scratch: &mut LanczosScratch,
) -> Result<Vec<Eigenpair>, LinalgError> {
    let n = op.dim();
    if k > n {
        return Err(LinalgError::TooManyEigenpairs {
            requested: k,
            dim: n,
        });
    }
    if k == 0 {
        return Ok(vec![]);
    }
    if n <= opts.dense_cutoff {
        sink.counter_add("lanczos.dense_solves", 1);
        let dense = DenseMatrix::from_op(op);
        // Householder + QL for anything non-trivial; Jacobi's sturdier
        // rotations only for very small systems where its cost is nil.
        let (vals, vecs) = if n <= 8 {
            jacobi_eigen(&dense, &JacobiOptions::default())?
        } else {
            crate::householder_eigen(&dense)?
        };
        return Ok(vals
            .into_iter()
            .zip(vecs)
            .take(k)
            .map(|(value, vector)| Eigenpair { value, vector })
            .collect());
    }

    // `warm_start` opts into the incremental hot path: the Krylov
    // basis grows step by step with cheap eigenvalue-only convergence
    // checks instead of the restart-ladder below, so the solve stops at
    // the smallest sufficient dimension and never recomputes a prefix.
    // With the flag off the historical schedule runs bit-identically.
    if opts.warm_start {
        return solve_incremental(op, k, opts, warm, sink, scratch);
    }

    // grow the Krylov space in bursts, testing convergence between them
    let mut dim = (4 * k + 20).min(n);
    loop {
        let run = lanczos_with(op, dim, opts, warm, sink, scratch)?;
        let t = tridiagonal_eigen(run.alphas, run.betas)?;
        let m = run.alphas.len();
        if m >= k {
            // Ritz residual estimate: |beta_m * s[m-1]| per pair; when the
            // basis spans the full space the Ritz pairs are exact.
            let beta_last = if m < n {
                run.betas.last().copied().unwrap_or(0.0)
            } else {
                0.0
            };
            let converged = (0..k).all(|i| {
                let tail = t.vectors[i][m - 1].abs();
                beta_last * tail <= opts.tolerance.max(1e-14 * t.values[k - 1].abs())
            });
            if sink.enabled() {
                let residual = (0..k)
                    .map(|i| beta_last * t.vectors[i][m - 1].abs())
                    .fold(0.0f64, f64::max);
                sink.event(
                    "lanczos.burst",
                    &[
                        ("dim", FieldValue::from(m)),
                        ("residual", FieldValue::from(residual)),
                        ("converged", FieldValue::from(converged || m >= n)),
                    ],
                );
            }
            if converged || m >= n {
                sink.counter_add("lanczos.solves", 1);
                let mut out = Vec::with_capacity(k);
                for i in 0..k {
                    let mut x = vec![0.0; n];
                    for (j, b) in run.basis.iter().enumerate() {
                        axpy(t.vectors[i][j], b, &mut x);
                    }
                    normalize(&mut x);
                    out.push(Eigenpair {
                        value: t.values[i],
                        vector: x,
                    });
                }
                return Ok(out);
            }
        }
        if dim >= opts.max_dim.min(n) {
            return Err(LinalgError::NoConvergence {
                iterations: dim,
                residual: run.betas.last().copied().unwrap_or(0.0),
            });
        }
        dim = (dim * 2).min(opts.max_dim.min(n));
    }
}

/// The `warm_start` hot path of [`smallest_eigenpairs_with`]: one
/// continuous Lanczos recurrence (optionally seeded by `warm`) with
/// geometric convergence checkpoints. Each checkpoint costs `O(m²)`
/// (eigenvalues-only QL plus `k` inverse-iteration vectors) instead of
/// the `O(m³)` full tridiagonal decomposition, and no prefix of the
/// recurrence is ever recomputed — the two properties that make the
/// recursive bisection front-end fast.
///
/// Convergence uses the same Ritz-residual criterion as the cold path
/// (`beta · |s[m-1]| ≤ tolerance`), with the genuine next `beta` rather
/// than the previous step's, so accepted pairs are at least as
/// converged as the cold solver's.
fn solve_incremental<A: SymOp>(
    op: &A,
    k: usize,
    opts: &LanczosOptions,
    warm: Option<&[f64]>,
    sink: &dyn TraceSink,
    scratch: &mut LanczosScratch,
) -> Result<Vec<Eigenpair>, LinalgError> {
    let n = op.dim();
    let cap = opts.max_dim.min(n).max(k);
    scratch.retire();
    scratch.alphas.clear();
    scratch.betas.clear();
    let mut seed = opts.seed;
    let breakdown_tol = 1e-12;

    let mut v = scratch.checkout(n);
    let warm_seeded = matches!(warm, Some(w0) if w0.len() == n);
    match warm {
        Some(w0) if warm_seeded => {
            v.copy_from_slice(w0);
            if normalize(&mut v) <= breakdown_tol {
                random_unit_vector_into(&mut v, &mut seed);
            }
        }
        _ => random_unit_vector_into(&mut v, &mut seed),
    }
    let mut w = scratch.checkout(n);
    let mut restarts = 0u64;
    let mut checkpoints = 0u64;
    // a warm seed is already near the target eigenvector, so start
    // checking earlier than the cold burst size
    let mut next_check = if warm_seeded {
        (2 * k + 8).min(cap)
    } else {
        (4 * k + 20).min(cap)
    };

    loop {
        // one recurrence step — same arithmetic as `lanczos_with`
        op.apply(&v, &mut w);
        let alpha = dot(&v, &w);
        scratch.alphas.push(alpha);
        axpy(-alpha, &v, &mut w);
        if let Some(prev) = scratch.basis.last() {
            let beta_prev = *scratch.betas.last().unwrap_or(&0.0);
            axpy(-beta_prev, prev, &mut w);
        }
        let recycled = scratch.checkout(n);
        scratch.basis.push(std::mem::replace(&mut v, recycled));
        let m = scratch.basis.len();
        let mut spanned = m >= cap;
        if !spanned {
            orthogonalize_against(&mut w, &scratch.basis);
            orthogonalize_against(&mut w, &scratch.basis);
            let beta = normalize(&mut w);
            if beta <= breakdown_tol {
                random_unit_vector_into(&mut v, &mut seed);
                orthogonalize_against(&mut v, &scratch.basis);
                orthogonalize_against(&mut v, &scratch.basis);
                if normalize(&mut v) <= breakdown_tol {
                    spanned = true; // the whole space is spanned
                } else {
                    restarts += 1;
                    scratch.betas.push(0.0);
                    w.fill(0.0);
                }
            } else {
                scratch.betas.push(beta);
                std::mem::swap(&mut v, &mut w);
                w.fill(0.0);
            }
        }

        if m >= k && (m >= next_check || spanned) {
            checkpoints += 1;
            let vals = tridiagonal_eigenvalues(&scratch.alphas, &scratch.betas[..m - 1])?;
            // the genuine next beta when the recurrence prepared one
            // (betas.len() == m), the cold-path estimate beta_{m-1}
            // when stopped at the cap (betas.len() == m - 1)
            let beta_last = if m < n {
                scratch.betas.last().copied().unwrap_or(0.0)
            } else {
                0.0
            };
            let threshold = opts.tolerance.max(1e-14 * vals[k - 1].abs());
            let mut svecs: Vec<Vec<f64>> = Vec::with_capacity(k);
            let mut converged = true;
            for val in vals.iter().take(k) {
                let s = tridiagonal_eigenvector(
                    &scratch.alphas,
                    &scratch.betas[..m - 1],
                    *val,
                    &svecs,
                )?;
                converged &= beta_last * s[m - 1].abs() <= threshold;
                svecs.push(s);
            }
            if sink.enabled() {
                let residual = svecs
                    .iter()
                    .map(|s| beta_last * s[m - 1].abs())
                    .fold(0.0f64, f64::max);
                sink.event(
                    "lanczos.burst",
                    &[
                        ("dim", FieldValue::from(m)),
                        ("residual", FieldValue::from(residual)),
                        ("converged", FieldValue::from(converged || spanned)),
                    ],
                );
            }
            if converged || spanned {
                scratch.pool.push(v);
                scratch.pool.push(w);
                sink.counter_add("lanczos.iterations", m as u64);
                // iterations-to-convergence and checkpoint-count
                // distributions: cheap enough (two relaxed-atomic
                // bumps, or a branch on the null sink) to stay on
                // under warm_start
                sink.histogram_record("lanczos.iterations", m as u64);
                sink.histogram_record("lanczos.checkpoints", checkpoints);
                if restarts > 0 {
                    sink.counter_add("lanczos.restarts", restarts);
                }
                if !converged {
                    return Err(LinalgError::NoConvergence {
                        iterations: m,
                        residual: scratch.betas.last().copied().unwrap_or(0.0),
                    });
                }
                sink.counter_add("lanczos.solves", 1);
                let mut out = Vec::with_capacity(k);
                for (val, s) in vals.iter().take(k).zip(&svecs) {
                    let mut x = vec![0.0; n];
                    for (j, b) in scratch.basis.iter().enumerate() {
                        axpy(s[j], b, &mut x);
                    }
                    normalize(&mut x);
                    out.push(Eigenpair {
                        value: *val,
                        vector: x,
                    });
                }
                return Ok(out);
            }
            // grow ~1/3 before the next check: geometric enough to
            // amortise the O(m²) eigenvalue sweep, fine enough to stop
            // near the minimal sufficient dimension
            next_check = (m + (m / 3).max(8)).min(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::norm;
    use crate::CsrMatrix;

    fn residual(op: &impl SymOp, pair: &Eigenpair) -> f64 {
        let n = op.dim();
        let mut y = vec![0.0; n];
        op.apply(&pair.vector, &mut y);
        axpy(-pair.value, &pair.vector, &mut y);
        norm(&y)
    }

    fn path_laplacian(n: usize) -> CsrMatrix {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        CsrMatrix::laplacian_from_edges(n, &edges).unwrap()
    }

    fn cycle_laplacian(n: usize) -> CsrMatrix {
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((n - 1, 0, 1.0));
        CsrMatrix::laplacian_from_edges(n, &edges).unwrap()
    }

    #[test]
    fn path_graph_fiedler_value_matches_closed_form() {
        // P_n Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
        for n in [8usize, 33, 80] {
            let l = path_laplacian(n);
            let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
            assert!(pairs[0].value.abs() < 1e-8, "n={n}: lambda1 not 0");
            let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
            assert!(
                (pairs[1].value - expected).abs() < 1e-7,
                "n={n}: got {}, expected {expected}",
                pairs[1].value
            );
            for p in &pairs {
                assert!(residual(&l, p) < 1e-6, "n={n}: residual too large");
            }
        }
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n eigenvalues: 2 - 2 cos(2 pi k / n); lambda2 has multiplicity 2.
        let n = 40;
        let l = cycle_laplacian(n);
        let pairs = smallest_eigenpairs(&l, 3, &LanczosOptions::default()).unwrap();
        let lam2 = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(pairs[0].value.abs() < 1e-8);
        assert!((pairs[1].value - lam2).abs() < 1e-7);
        assert!((pairs[2].value - lam2).abs() < 1e-7);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: eigenvalues 0 and n (multiplicity n-1).
        let n = 50;
        let mut edges = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b, 1.0));
            }
        }
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let pairs = smallest_eigenpairs(&l, 4, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-7);
        for p in &pairs[1..] {
            assert!((p.value - n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn disconnected_graph_has_double_zero() {
        // two disjoint edges: eigenvalues {0, 0, 2, 2}
        let l = CsrMatrix::laplacian_from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let opts = LanczosOptions {
            dense_cutoff: 0, // force the iterative path
            ..LanczosOptions::default()
        };
        let pairs = smallest_eigenpairs(&l, 3, &opts).unwrap();
        assert!(pairs[0].value.abs() < 1e-9);
        assert!(pairs[1].value.abs() < 1e-9);
        assert!((pairs[2].value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dense_cutoff_path_agrees_with_lanczos_path() {
        let l = path_laplacian(30);
        let dense_opts = LanczosOptions::default(); // 30 <= 32 → Jacobi
        let iter_opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let a = smallest_eigenpairs(&l, 2, &dense_opts).unwrap();
        let b = smallest_eigenpairs(&l, 2, &iter_opts).unwrap();
        assert!((a[1].value - b[1].value).abs() < 1e-7);
        // eigenvectors agree up to sign
        let dot_abs: f64 = a[1]
            .vector
            .iter()
            .zip(&b[1].vector)
            .map(|(x, y)| x * y)
            .sum::<f64>()
            .abs();
        assert!((dot_abs - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weighted_two_node_graph() {
        let l = CsrMatrix::laplacian_from_edges(2, &[(0, 1, 3.0)]).unwrap();
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-12);
        assert!((pairs[1].value - 6.0).abs() < 1e-9);
    }

    #[test]
    fn requesting_too_many_pairs_errors() {
        let l = path_laplacian(3);
        assert!(matches!(
            smallest_eigenpairs(&l, 4, &LanczosOptions::default()),
            Err(LinalgError::TooManyEigenpairs { .. })
        ));
    }

    #[test]
    fn zero_pairs_is_empty() {
        let l = path_laplacian(3);
        assert!(smallest_eigenpairs(&l, 0, &LanczosOptions::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lanczos_basis_is_orthonormal() {
        let l = path_laplacian(60);
        let run = lanczos(&l, 25, &LanczosOptions::default()).unwrap();
        assert_eq!(run.alphas.len(), 25);
        assert_eq!(run.betas.len(), 24);
        for (i, a) in run.basis.iter().enumerate() {
            for (j, b) in run.basis.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot(a, b) - expected).abs() < 1e-8,
                    "basis {i},{j} not orthonormal"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let l = path_laplacian(50);
        let opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let a = smallest_eigenpairs(&l, 2, &opts).unwrap();
        let b = smallest_eigenpairs(&l, 2, &opts).unwrap();
        assert_eq!(a[1].value.to_bits(), b[1].value.to_bits());
        assert_eq!(a[1].vector, b[1].vector);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_plain_path() {
        let l = path_laplacian(50);
        let opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let plain = smallest_eigenpairs(&l, 2, &opts).unwrap();
        let mut scratch = LanczosScratch::new();
        // a stale warm vector must be ignored while warm_start is off
        let stale = vec![1.0; 50];
        for _ in 0..3 {
            let warm = smallest_eigenpairs_with(
                &l,
                2,
                &opts,
                Some(&stale),
                &mec_obs::NullSink,
                &mut scratch,
            )
            .unwrap();
            for (a, b) in plain.iter().zip(&warm) {
                assert_eq!(a.value.to_bits(), b.value.to_bits());
                assert_eq!(a.vector, b.vector);
            }
        }
    }

    #[test]
    fn scratch_reuse_survives_dimension_changes() {
        let mut scratch = LanczosScratch::new();
        for n in [40usize, 12, 64, 12] {
            let l = path_laplacian(n);
            let opts = LanczosOptions {
                dense_cutoff: 0,
                ..LanczosOptions::default()
            };
            let pairs =
                smallest_eigenpairs_with(&l, 2, &opts, None, &mec_obs::NullSink, &mut scratch)
                    .unwrap();
            let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
            assert!((pairs[1].value - expected).abs() < 1e-7, "n={n}");
        }
    }

    #[test]
    fn warm_start_converges_to_the_same_pairs() {
        let l = path_laplacian(70);
        let cold_opts = LanczosOptions {
            dense_cutoff: 0,
            ..LanczosOptions::default()
        };
        let cold = smallest_eigenpairs(&l, 2, &cold_opts).unwrap();
        let warm_opts = LanczosOptions {
            dense_cutoff: 0,
            warm_start: true,
            ..LanczosOptions::default()
        };
        let mut scratch = LanczosScratch::new();
        let warm = smallest_eigenpairs_with(
            &l,
            2,
            &warm_opts,
            Some(&cold[1].vector),
            &mec_obs::NullSink,
            &mut scratch,
        )
        .unwrap();
        assert!((warm[1].value - cold[1].value).abs() < 1e-7);
        let dot_abs = dot(&warm[1].vector, &cold[1].vector).abs();
        assert!((dot_abs - 1.0).abs() < 1e-5);
    }

    #[test]
    fn warm_start_ignores_mismatched_or_zero_seeds() {
        let l = path_laplacian(50);
        let opts = LanczosOptions {
            dense_cutoff: 0,
            warm_start: true,
            ..LanczosOptions::default()
        };
        let plain = smallest_eigenpairs(
            &l,
            2,
            &LanczosOptions {
                dense_cutoff: 0,
                ..LanczosOptions::default()
            },
        )
        .unwrap();
        let mut scratch = LanczosScratch::new();
        // wrong length → random start; the incremental hot path still
        // converges to the same eigenpair (alignment up to sign)
        let short = vec![1.0; 7];
        let a =
            smallest_eigenpairs_with(&l, 2, &opts, Some(&short), &mec_obs::NullSink, &mut scratch)
                .unwrap();
        assert!((a[1].value - plain[1].value).abs() < 1e-8);
        assert!(dot(&a[1].vector, &plain[1].vector).abs() > 1.0 - 1e-8);
        // an all-zero warm vector cannot be normalised → random start
        let zero = vec![0.0; 50];
        let b =
            smallest_eigenpairs_with(&l, 2, &opts, Some(&zero), &mec_obs::NullSink, &mut scratch)
                .unwrap();
        assert!((b[1].value - plain[1].value).abs() < 1e-8);
        assert!(dot(&b[1].vector, &plain[1].vector).abs() > 1.0 - 1e-8);
    }

    #[test]
    fn empty_operator() {
        let l = CsrMatrix::from_triplets(0, &[]).unwrap();
        assert!(smallest_eigenpairs(&l, 0, &LanczosOptions::default())
            .unwrap()
            .is_empty());
        let run = lanczos(&l, 5, &LanczosOptions::default()).unwrap();
        assert!(run.basis.is_empty());
    }
}
