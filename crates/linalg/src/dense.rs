//! Dense symmetric matrices and the Jacobi rotation eigensolver.
//!
//! The Jacobi solver is the crate's *reference* eigensolver: slow but
//! unconditionally robust, used to cross-validate Lanczos in tests and
//! to handle tiny compressed sub-graphs where iteration overhead is not
//! worth it.

use crate::{LinalgError, SymOp};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// The `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            dim: n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `data.len() != n * n`,
    /// [`LinalgError::NonFiniteEntry`] for NaN/infinite entries.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != n * n {
            return Err(LinalgError::DimensionMismatch {
                expected: n * n,
                actual: data.len(),
            });
        }
        if let Some(&bad) = data.iter().find(|v| !v.is_finite()) {
            return Err(LinalgError::NonFiniteEntry(bad));
        }
        Ok(DenseMatrix { dim: n, data })
    }

    /// Densifies any symmetric operator (used by tests and the Jacobi
    /// path for small systems).
    pub fn from_op(op: &dyn SymOp) -> Self {
        let n = op.dim();
        let mut m = DenseMatrix::zeros(n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            op.apply(&e, &mut col);
            e[j] = 0.0;
            for i in 0..n {
                m.set(i, j, col[i]);
            }
        }
        m
    }

    /// Matrix dimension `n` (the matrix is `n × n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.dim && c < self.dim, "index out of bounds");
        self.data[r * self.dim + c]
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.dim && c < self.dim, "index out of bounds");
        self.data[r * self.dim + c] = v;
    }

    /// Maximum absolute off-diagonal entry.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut m = 0.0f64;
        for r in 0..self.dim {
            for c in 0..self.dim {
                if r != c {
                    m = m.max(self.get(r, c).abs());
                }
            }
        }
        m
    }

    /// `true` when `|a_ij - a_ji| ≤ tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.dim {
            for c in (r + 1)..self.dim {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl SymOp for DenseMatrix {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "x length mismatch");
        assert_eq!(y.len(), self.dim, "y length mismatch");
        for r in 0..self.dim {
            let row = &self.data[r * self.dim..(r + 1) * self.dim];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }
}

/// Tuning for [`jacobi_eigen`].
#[derive(Debug, Clone)]
pub struct JacobiOptions {
    /// Stop once the largest off-diagonal entry falls below this.
    pub tolerance: f64,
    /// Hard cap on full sweeps.
    pub max_sweeps: usize,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions {
            tolerance: 1e-12,
            max_sweeps: 100,
        }
    }
}

/// Full eigendecomposition of a symmetric matrix by cyclic Jacobi
/// rotations.
///
/// Returns `(values, vectors)` with eigenvalues ascending and
/// `vectors[k]` the unit eigenvector of `values[k]`.
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] if `m` is not symmetric within
///   `1e-9`;
/// - [`LinalgError::NoConvergence`] if `max_sweeps` is exhausted.
///
/// # Example
///
/// ```
/// # use mec_linalg::{DenseMatrix, jacobi_eigen, JacobiOptions};
/// let m = DenseMatrix::from_rows(2, vec![2.0, -1.0, -1.0, 2.0])?;
/// let (vals, _) = jacobi_eigen(&m, &JacobiOptions::default())?;
/// assert!((vals[0] - 1.0).abs() < 1e-10);
/// assert!((vals[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), mec_linalg::LinalgError>(())
/// ```
pub fn jacobi_eigen(
    m: &DenseMatrix,
    opts: &JacobiOptions,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), LinalgError> {
    let n = m.dim();
    if !m.is_symmetric(1e-9) {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: n,
        });
    }
    let mut a = m.clone();
    let mut v = DenseMatrix::identity(n);
    let mut sweeps = 0;
    // scale-relative stopping: absolute 1e-12 is unreachable once
    // rounding noise accumulates in matrices with large entries.
    let scale = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r, c)))
        .fold(1.0f64, |s, (r, c)| s.max(m.get(r, c).abs()));
    let threshold = opts.tolerance * scale * (n as f64).max(1.0);
    while a.off_diagonal_norm() > threshold {
        sweeps += 1;
        if sweeps > opts.max_sweeps {
            return Err(LinalgError::NoConvergence {
                iterations: sweeps,
                residual: a.off_diagonal_norm(),
            });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= opts.tolerance {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| {
        a.get(x, x)
            .partial_cmp(&a.get(y, y))
            .expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&j| a.get(j, j)).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|i| v.get(i, j)).collect())
        .collect();
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};

    #[test]
    fn construction_and_access() {
        let m = DenseMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert!(!m.is_symmetric(1e-12));
        assert!(DenseMatrix::identity(3).is_symmetric(0.0));
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(
            DenseMatrix::from_rows(2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            DenseMatrix::from_rows(1, vec![f64::INFINITY]),
            Err(LinalgError::NonFiniteEntry(_))
        ));
    }

    #[test]
    fn matvec() {
        let m = DenseMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        let mut y = vec![0.0; 2];
        m.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);
    }

    #[test]
    fn from_op_recovers_matrix() {
        let m =
            DenseMatrix::from_rows(3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 4.0]).unwrap();
        let back = DenseMatrix::from_op(&m);
        assert_eq!(m, back);
    }

    #[test]
    fn jacobi_on_known_spectrum() {
        let m = DenseMatrix::from_rows(2, vec![2.0, -1.0, -1.0, 2.0]).unwrap();
        let (vals, vecs) = jacobi_eigen(&m, &JacobiOptions::default()).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        // residual check
        for (lam, v) in vals.iter().zip(&vecs) {
            let mut y = vec![0.0; 2];
            m.apply(v, &mut y);
            let r: Vec<f64> = y.iter().zip(v).map(|(a, b)| a - lam * b).collect();
            assert!(norm(&r) < 1e-9);
            assert!((norm(v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        // symmetric 4x4
        let m = DenseMatrix::from_rows(
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 1.0, 0.2, 0.5, 1.0, 2.0, 1.0, 0.0, 0.2, 1.0, 1.0,
            ],
        )
        .unwrap();
        let (vals, vecs) = jacobi_eigen(&m, &JacobiOptions::default()).unwrap();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        for a in 0..4 {
            for b in 0..4 {
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!((dot(&vecs[a], &vecs[b]) - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_rejects_asymmetric_input() {
        let m = DenseMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(jacobi_eigen(&m, &JacobiOptions::default()).is_err());
    }

    #[test]
    fn jacobi_trace_is_preserved() {
        let m =
            DenseMatrix::from_rows(3, vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0]).unwrap();
        let (vals, _) = jacobi_eigen(&m, &JacobiOptions::default()).unwrap();
        let trace = 5.0 + 4.0 + 3.0;
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
    }

    #[test]
    fn jacobi_empty_and_single() {
        let (v0, _) = jacobi_eigen(&DenseMatrix::zeros(0), &JacobiOptions::default()).unwrap();
        assert!(v0.is_empty());
        let m = DenseMatrix::from_rows(1, vec![7.0]).unwrap();
        let (v1, e1) = jacobi_eigen(&m, &JacobiOptions::default()).unwrap();
        assert_eq!(v1, vec![7.0]);
        assert_eq!(e1, vec![vec![1.0]]);
    }
}
