//! Scalar ↔ unrolled-kernel parity properties.
//!
//! Every kernel in `mec_linalg::kernels` belongs to one of two parity
//! classes (documented on the kernel itself):
//!
//! * **bit-exact** — the 4-lane variant keeps each output element's
//!   accumulation order identical to the scalar loop (matvec
//!   interleaves rows but never reassociates within a row; axpy and
//!   scale are elementwise). Compared here via `to_bits`.
//! * **1-ulp-scaled** — reductions split into four independent chains
//!   (dot, norm, the sweep boundary fold, blocked Gram–Schmidt)
//!   reassociate the sum. Compared against a tolerance proportional to
//!   machine epsilon times the magnitude actually accumulated.
//!
//! Without `--features simd` the mode switch is inert
//! (`set_simd_enabled(true)` reports `false`) and both runs take the
//! scalar path, so the suite passes trivially; CI runs the test matrix
//! in both feature states so the real comparison is always exercised.
//! Tests serialise on a local mutex because the mode switch is process
//! global and the harness runs tests concurrently.

use mec_linalg::kernels;
use proptest::prelude::*;
use std::sync::Mutex;

static MODE: Mutex<()> = Mutex::new(());

/// Runs `f` once in scalar mode and once with the unrolled kernels
/// (when compiled in), restoring the prior mode after.
fn both_modes<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = MODE.lock().unwrap_or_else(|e| e.into_inner());
    let prior = kernels::simd_enabled();
    kernels::set_simd_enabled(false);
    let scalar = f();
    kernels::set_simd_enabled(true);
    let unrolled = f();
    kernels::set_simd_enabled(prior);
    (scalar, unrolled)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A random CSR matrix in raw SoA form, plus a dense input vector.
/// Columns are `u32` (the adjacency-snapshot index type); rows have
/// uneven lengths so the 4-row lock-step hits its per-row tails.
#[derive(Debug, Clone)]
struct CsrCase {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    x: Vec<f64>,
}

fn arb_csr() -> impl Strategy<Value = CsrCase> {
    (1usize..24, 1usize..24).prop_flat_map(|(rows, cols)| {
        let row_lens = proptest::collection::vec(0usize..8, rows);
        let pool = proptest::collection::vec(((0..cols as u32), -5.0f64..5.0), rows * 8);
        let xs = proptest::collection::vec(-5.0f64..5.0, cols);
        (row_lens, pool, xs).prop_map(|(lens, pool, x)| {
            let mut offsets = vec![0usize];
            let mut columns = Vec::new();
            let mut values = Vec::new();
            let mut cursor = 0;
            for len in lens {
                for _ in 0..len {
                    let (c, v) = pool[cursor % pool.len()];
                    columns.push(c);
                    values.push(v);
                    cursor += 1;
                }
                offsets.push(columns.len());
            }
            CsrCase {
                offsets,
                columns,
                values,
                x,
            }
        })
    })
}

fn arb_vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..200).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(-5.0f64..5.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -- bit-exact class ---------------------------------------------------

    #[test]
    fn csr_matvec_is_bit_exact_across_modes(case in arb_csr()) {
        let rows = case.offsets.len() - 1;
        let (a, b) = both_modes(|| {
            let mut y = vec![0.0; rows];
            kernels::csr_matvec(&case.offsets, &case.columns, &case.values, &case.x, &mut y);
            y
        });
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn csr_laplacian_matvec_is_bit_exact_across_modes(case in arb_csr()) {
        // the diagonal term reads x[x_base + r], so x must cover the
        // row range too: extend it when the matrix is tall
        let rows = case.offsets.len() - 1;
        let mut x = case.x.clone();
        x.resize(x.len().max(rows), 1.0);
        let (a, b) = both_modes(|| {
            let mut y = vec![0.0; rows];
            kernels::csr_laplacian_matvec(
                &case.offsets, &case.columns, &case.values, &x, 0, &mut y,
            );
            y
        });
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn csr_laplacian_matvec_deg_is_bit_exact_across_modes(case in arb_csr()) {
        let rows = case.offsets.len() - 1;
        let mut x = case.x.clone();
        x.resize(x.len().max(rows), 1.0);
        let degrees: Vec<f64> = (0..rows)
            .map(|r| case.values[case.offsets[r]..case.offsets[r + 1]].iter().sum())
            .collect();
        let (a, b) = both_modes(|| {
            let mut y = vec![0.0; rows];
            kernels::csr_laplacian_matvec_deg(
                &case.offsets, &case.columns, &case.values, &degrees, &x, 0, &mut y,
            );
            y
        });
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn axpy_is_bit_exact_across_modes((x, y) in arb_vec_pair(), alpha in -3.0f64..3.0) {
        let (a, b) = both_modes(|| {
            let mut out = y.clone();
            kernels::axpy(alpha, &x, &mut out);
            out
        });
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn scale_is_bit_exact_across_modes((x, _) in arb_vec_pair(), alpha in -3.0f64..3.0) {
        let (a, b) = both_modes(|| {
            let mut out = x.clone();
            kernels::scale(alpha, &mut out);
            out
        });
        prop_assert_eq!(bits(&a), bits(&b));
    }

    // -- reassociated (1-ulp-scaled) class ---------------------------------

    #[test]
    fn dot_parity_within_scaled_tolerance((x, y) in arb_vec_pair()) {
        let (a, b) = both_modes(|| kernels::dot(&x, &y));
        // reassociating a length-n sum perturbs it by at most O(n·eps)
        // of the accumulated magnitude
        let scale: f64 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
        let tol = 8.0 * f64::EPSILON * (x.len() as f64 + 1.0) * scale;
        prop_assert!((a - b).abs() <= tol, "dot drift {} > tol {}", (a - b).abs(), tol);
    }

    #[test]
    fn norm_parity_within_scaled_tolerance((x, _) in arb_vec_pair()) {
        let (a, b) = both_modes(|| kernels::norm(&x));
        let tol = 8.0 * f64::EPSILON * (x.len() as f64 + 1.0) * (1.0 + a);
        prop_assert!((a - b).abs() <= tol, "norm drift {} > tol {}", (a - b).abs(), tol);
    }

    #[test]
    fn normalize_parity_within_scaled_tolerance((x, _) in arb_vec_pair()) {
        let (a, b) = both_modes(|| {
            let mut v = x.clone();
            let n = kernels::normalize(&mut v);
            (n, v)
        });
        let tol = 16.0 * f64::EPSILON * (x.len() as f64 + 1.0) * (1.0 + a.0);
        prop_assert!((a.0 - b.0).abs() <= tol);
        for (s, u) in a.1.iter().zip(&b.1) {
            prop_assert!((s - u).abs() <= 16.0 * f64::EPSILON * (x.len() as f64 + 1.0));
        }
    }

    #[test]
    fn sweep_boundary_update_parity(case in arb_csr(), cut in 0.0f64..1e6) {
        let local: Vec<bool> = case.x.iter().map(|v| *v > 0.0).collect();
        let (a, b) = both_modes(|| {
            kernels::sweep_boundary_update(cut, &case.columns, &case.values, &local)
        });
        let scale: f64 = case.values.iter().map(|w| w.abs()).sum::<f64>() + cut.abs();
        let tol = 8.0 * f64::EPSILON * (case.values.len() as f64 + 1.0) * scale;
        prop_assert!((a - b).abs() <= tol, "cut drift {} > tol {}", (a - b).abs(), tol);
    }

    #[test]
    fn orthogonalize_parity_against_orthonormal_basis(
        seed in proptest::collection::vec(-1.0f64..1.0, 24..96),
        k in 1usize..7,
    ) {
        // build an orthonormal basis deterministically (scalar mode) so
        // both modes project against the same vectors; blocked CGS and
        // sequential MGS then agree to rounding because cross terms
        // b_i·b_j are already at machine-epsilon level
        let n = seed.len();
        let _guard = MODE.lock().unwrap_or_else(|e| e.into_inner());
        let prior = kernels::simd_enabled();
        kernels::set_simd_enabled(false);
        let mut basis: Vec<Vec<f64>> = Vec::new();
        for j in 0..k {
            let mut v: Vec<f64> = (0..n)
                .map(|i| seed[(i * (j + 2) + j) % n] + if i % (j + 1) == 0 { 0.5 } else { 0.0 })
                .collect();
            kernels::orthogonalize_against(&mut v, &basis);
            if kernels::normalize(&mut v) > 1e-9 {
                basis.push(v);
            }
        }
        let run = |on: bool| {
            kernels::set_simd_enabled(on);
            let mut x = seed.clone();
            kernels::orthogonalize_against(&mut x, &basis);
            x
        };
        let scalar = run(false);
        let unrolled = run(true);
        kernels::set_simd_enabled(prior);
        let scale = 1.0 + seed.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for (s, u) in scalar.iter().zip(&unrolled) {
            prop_assert!(
                (s - u).abs() <= 1e-10 * scale,
                "orthogonalize drift {}", (s - u).abs()
            );
        }
    }
}
