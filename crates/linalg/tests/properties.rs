//! Property tests: the iterative solvers must agree with the dense
//! Jacobi reference on arbitrary symmetric matrices, and Laplacian
//! spectra must satisfy their structural guarantees.

use mec_linalg::{
    jacobi_eigen, smallest_eigenpairs, tridiagonal_eigen, ConjugateGradient, CsrMatrix,
    DenseMatrix, JacobiOptions, LanczosOptions, SymOp,
};
use proptest::prelude::*;

/// Random symmetric dense matrix of dimension 2..12.
fn arb_symmetric() -> impl Strategy<Value = DenseMatrix> {
    (2usize..12).prop_flat_map(|n| {
        proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |raw| {
            let mut m = DenseMatrix::zeros(n);
            for i in 0..n {
                for j in i..n {
                    let v = raw[i * n + j];
                    m.set(i, j, v);
                    m.set(j, i, v);
                }
            }
            m
        })
    })
}

/// Random connected weighted graph edge list (path backbone + extras).
fn arb_graph_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (3usize..40).prop_flat_map(|n| {
        let backbone: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let extras = proptest::collection::vec(((0..n), (0..n)), 0..2 * n);
        let weights = proptest::collection::vec(0.1f64..10.0, 3 * n);
        (Just(backbone), extras, weights).prop_map(move |(bb, ex, ws)| {
            let mut edges = vec![];
            let mut wi = 0;
            let mut seen = std::collections::HashSet::new();
            for (a, b) in bb.into_iter().chain(ex) {
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !seen.insert(key) {
                    continue;
                }
                edges.push((key.0, key.1, ws[wi % ws.len()]));
                wi += 1;
            }
            (n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jacobi_reproduces_trace_and_residuals(m in arb_symmetric()) {
        let n = m.dim();
        let (vals, vecs) = jacobi_eigen(&m, &JacobiOptions::default()).unwrap();
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-7 * (1.0 + trace.abs()));
        for (lam, v) in vals.iter().zip(&vecs) {
            let mut y = vec![0.0; n];
            m.apply(v, &mut y);
            let res: f64 = y.iter().zip(v).map(|(a, b)| (a - lam * b).powi(2)).sum::<f64>().sqrt();
            prop_assert!(res < 1e-7, "residual {res}");
        }
    }

    #[test]
    fn laplacian_lambda1_is_zero_and_lambda2_nonnegative((n, edges) in arb_graph_edges()) {
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        prop_assert!(l.is_symmetric());
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        prop_assert!(pairs[0].value.abs() < 1e-7, "lambda1 = {}", pairs[0].value);
        prop_assert!(pairs[1].value > -1e-9, "lambda2 = {}", pairs[1].value);
        // connected backbone graph: lambda2 strictly positive
        prop_assert!(pairs[1].value > 1e-9);
        // Fiedler vector is orthogonal to the constant vector
        let s: f64 = pairs[1].vector.iter().sum();
        prop_assert!(s.abs() < 1e-5, "Fiedler not balanced: {s}");
    }

    #[test]
    fn lanczos_agrees_with_jacobi_on_dense((n, edges) in arb_graph_edges()) {
        let l = CsrMatrix::laplacian_from_edges(n, &edges).unwrap();
        let dense = DenseMatrix::from_op(&l);
        let (jvals, _) = jacobi_eigen(&dense, &JacobiOptions::default()).unwrap();
        let iter_opts = LanczosOptions { dense_cutoff: 0, ..LanczosOptions::default() };
        let pairs = smallest_eigenpairs(&l, 2, &iter_opts).unwrap();
        prop_assert!((pairs[0].value - jvals[0]).abs() < 1e-6);
        prop_assert!((pairs[1].value - jvals[1]).abs() < 1e-6,
            "lanczos {} vs jacobi {}", pairs[1].value, jvals[1]);
    }

    #[test]
    fn cg_solution_satisfies_system(m in arb_symmetric(), shift in 10.0f64..20.0) {
        // make it safely positive definite: A + shift*I
        let n = m.dim();
        let mut spd = m.clone();
        for i in 0..n {
            spd.set(i, i, spd.get(i, i) + shift + 10.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let out = ConjugateGradient::new().solve(&spd, &b).unwrap();
        let mut ax = vec![0.0; n];
        spd.apply(&out.solution, &mut ax);
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn tridiagonal_matches_jacobi(diag in proptest::collection::vec(-3.0f64..3.0, 2..10),
                                  raw_off in proptest::collection::vec(-2.0f64..2.0, 9)) {
        let n = diag.len();
        let off = &raw_off[..n - 1];
        let t = tridiagonal_eigen(&diag, off).unwrap();
        let mut dense = DenseMatrix::zeros(n);
        for i in 0..n {
            dense.set(i, i, diag[i]);
            if i + 1 < n {
                dense.set(i, i + 1, off[i]);
                dense.set(i + 1, i, off[i]);
            }
        }
        let (jvals, _) = jacobi_eigen(&dense, &JacobiOptions::default()).unwrap();
        for (a, b) in t.values.iter().zip(&jvals) {
            prop_assert!((a - b).abs() < 1e-8, "tql2 {a} vs jacobi {b}");
        }
    }
}
