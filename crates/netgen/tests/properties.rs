//! Generator contracts that must hold for every feasible spec: exact
//! counts, per-component connectivity, pin placement, determinism.

use mec_graph::ComponentLabeling;
use mec_netgen::NetgenSpec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SpecCase {
    nodes: usize,
    edges: usize,
    comps: usize,
    pin: f64,
    seed: u64,
}

fn arb_spec() -> impl Strategy<Value = SpecCase> {
    (
        30usize..200,
        1usize..4,
        0.0f64..0.4,
        0u64..1000,
        1.0f64..2.5,
    )
        .prop_map(|(nodes, comps, pin, seed, density)| SpecCase {
            nodes,
            edges: (nodes as f64 * density) as usize,
            comps,
            pin,
            seed,
        })
}

fn build(case: &SpecCase) -> mec_graph::Graph {
    NetgenSpec::new(case.nodes, case.edges.max(case.nodes))
        .components(case.comps)
        .unoffloadable_fraction(case.pin)
        .seed(case.seed)
        .generate()
        .expect("sampled specs stay feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_node_and_edge_counts(case in arb_spec()) {
        let g = build(&case);
        prop_assert_eq!(g.node_count(), case.nodes);
        prop_assert_eq!(g.edge_count(), case.edges.max(case.nodes));
        prop_assert_eq!(g.check_invariants(), Ok(()));
    }

    #[test]
    fn components_are_connected_and_counted(case in arb_spec()) {
        let g = build(&case);
        let labeling = ComponentLabeling::compute(&g);
        prop_assert_eq!(labeling.count(), case.comps);
        // connectivity of each component is implied by the labelling
        // having exactly `comps` classes plus each class being one BFS
        // region; assert sizes are near-equal (generator contract)
        let sizes = labeling.sizes();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "components must be near-equal: {sizes:?}");
    }

    #[test]
    fn pins_cluster_at_component_cores(case in arb_spec()) {
        let g = build(&case);
        let labeling = ComponentLabeling::compute(&g);
        for members in labeling.members() {
            let pinned: Vec<bool> = members.iter().map(|&n| !g.is_offloadable(n)).collect();
            let expected = ((members.len() as f64) * case.pin).floor() as usize;
            prop_assert_eq!(pinned.iter().filter(|&&p| p).count(), expected);
            // pins occupy a prefix of the component's id range
            for (i, &is_pinned) in pinned.iter().enumerate() {
                prop_assert_eq!(is_pinned, i < expected, "pin not in core prefix");
            }
        }
    }

    #[test]
    fn weights_are_finite_and_positive(case in arb_spec()) {
        let g = build(&case);
        for n in g.node_ids() {
            let w = g.node_weight(n);
            prop_assert!(w.is_finite() && w > 0.0);
        }
        for e in g.edges() {
            prop_assert!(e.weight.is_finite() && e.weight > 0.0);
        }
    }

    #[test]
    fn same_seed_same_graph_different_seed_differs(case in arb_spec()) {
        let a = build(&case);
        let b = build(&case);
        prop_assert_eq!(&a, &b);
        let mut other = case.clone();
        other.seed = case.seed.wrapping_add(1);
        let c = build(&other);
        prop_assert_ne!(&a, &c);
    }
}
