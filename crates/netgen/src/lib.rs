//! NETGEN-style random function data-flow graph generator.
//!
//! The paper generates its workloads with NETGEN, "a fast tool for
//! randomly generating network graph based on the number of nodes, the
//! number of edges and the weight of edges provided by users", tuned so
//! the output "is similar to the actual function data flow graph of
//! mobile applications" (§IV). This crate reproduces that role with a
//! seeded, deterministic generator:
//!
//! - the node set is split into *components* (mobile apps are built
//!   from components; the compression stage exploits their boundaries);
//! - each component gets a random spanning tree first, so components
//!   are connected, then extra intra-component edges up to the edge
//!   budget;
//! - a configurable fraction of edges is *highly coupled* (drawn from a
//!   heavier weight range) — these are the pairs label propagation is
//!   supposed to fuse;
//! - a configurable fraction of nodes is unoffloadable.
//!
//! [`NetgenSpec::paper_network`] reproduces the exact `(nodes, edges)`
//! rows of the paper's Table I.
//!
//! # Example
//!
//! ```
//! use mec_netgen::NetgenSpec;
//!
//! let g = NetgenSpec::new(120, 400)
//!     .components(4)
//!     .seed(7)
//!     .generate()?;
//! assert_eq!(g.node_count(), 120);
//! assert_eq!(g.edge_count(), 400);
//! # Ok::<(), mec_netgen::NetgenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mec_graph::{Graph, GraphBuilder, NodeId, ParallelEdgePolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::error::Error;
use std::fmt;

/// Errors raised when a generation spec is unsatisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetgenError {
    /// A graph needs at least one node.
    NoNodes,
    /// Fewer edges requested than needed to keep every component
    /// connected (`needed` = nodes − components).
    TooFewEdges {
        /// Edges requested.
        requested: usize,
        /// Minimum required for connectivity.
        needed: usize,
    },
    /// More edges requested than distinct intra-component pairs exist.
    TooManyEdges {
        /// Edges requested.
        requested: usize,
        /// Maximum representable.
        max: usize,
    },
    /// More components than nodes.
    TooManyComponents {
        /// Components requested.
        components: usize,
        /// Nodes available.
        nodes: usize,
    },
}

impl fmt::Display for NetgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetgenError::NoNodes => f.write_str("at least one node is required"),
            NetgenError::TooFewEdges { requested, needed } => write!(
                f,
                "{requested} edges cannot keep the graph connected (need at least {needed})"
            ),
            NetgenError::TooManyEdges { requested, max } => {
                write!(
                    f,
                    "{requested} edges exceed the {max} distinct pairs available"
                )
            }
            NetgenError::TooManyComponents { components, nodes } => {
                write!(f, "{components} components exceed {nodes} nodes")
            }
        }
    }
}

impl Error for NetgenError {}

/// Specification of a random function data-flow graph.
///
/// Construct with [`NetgenSpec::new`], refine with the builder methods,
/// then call [`generate`](NetgenSpec::generate).
#[derive(Debug, Clone, PartialEq)]
pub struct NetgenSpec {
    nodes: usize,
    edges: usize,
    components: usize,
    node_weight: (f64, f64),
    edge_weight: (f64, f64),
    coupled_weight: (f64, f64),
    coupled_fraction: f64,
    unoffloadable_fraction: f64,
    pinned_edge_factor: f64,
    clusters_per_component: usize,
    intercluster_fraction: f64,
    seed: u64,
}

impl NetgenSpec {
    /// A spec for `nodes` functions and `edges` communication pairs,
    /// with defaults mimicking a mobile app's function data-flow graph:
    /// 1 component per ~125 nodes, computation weights 1–100,
    /// communication weights 1–10 with 30 % highly coupled pairs at
    /// 50–100, and 10 % unoffloadable functions.
    pub fn new(nodes: usize, edges: usize) -> Self {
        NetgenSpec {
            nodes,
            edges,
            components: (nodes / 125).max(1),
            node_weight: (1.0, 100.0),
            edge_weight: (1.0, 10.0),
            coupled_weight: (50.0, 100.0),
            coupled_fraction: 0.30,
            unoffloadable_fraction: 0.10,
            pinned_edge_factor: 3.0,
            clusters_per_component: 4,
            intercluster_fraction: 0.08,
            seed: 0xC0FFEE,
        }
    }

    /// A spec reproducing one row of the paper's Table I — same node
    /// and edge counts, defaults elsewhere.
    pub fn paper_network(nodes: usize, edges: usize) -> Self {
        NetgenSpec::new(nodes, edges)
    }

    /// The five `(nodes, edges)` configurations of Table I:
    /// (250, 1214), (500, 2643), (1000, 4912), (2000, 9578),
    /// (5000, 40243).
    pub fn table1_rows() -> [(usize, usize); 5] {
        [
            (250, 1214),
            (500, 2643),
            (1000, 4912),
            (2000, 9578),
            (5000, 40243),
        ]
    }

    /// Sets the number of components the node set is split into.
    pub fn components(mut self, components: usize) -> Self {
        self.components = components.max(1);
        self
    }

    /// Sets the uniform range for node computation weights.
    pub fn node_weight_range(mut self, lo: f64, hi: f64) -> Self {
        self.node_weight = (lo, hi);
        self
    }

    /// Sets the uniform range for ordinary edge communication weights.
    pub fn edge_weight_range(mut self, lo: f64, hi: f64) -> Self {
        self.edge_weight = (lo, hi);
        self
    }

    /// Sets the weight range used for highly coupled pairs.
    pub fn coupled_weight_range(mut self, lo: f64, hi: f64) -> Self {
        self.coupled_weight = (lo, hi);
        self
    }

    /// Sets the fraction (0–1) of edges drawn from the coupled range.
    pub fn coupled_fraction(mut self, f: f64) -> Self {
        self.coupled_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the fraction (0–1) of nodes marked unoffloadable.
    pub fn unoffloadable_fraction(mut self, f: f64) -> Self {
        self.unoffloadable_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets how many internal clusters (modules) each component has.
    /// Clusters are densely wired inside and sparsely, lightly wired to
    /// each other — the module boundaries real applications have, and
    /// the natural cut lines the offloading algorithms compete to find.
    pub fn clusters_per_component(mut self, k: usize) -> Self {
        self.clusters_per_component = k.max(1);
        self
    }

    /// Sets the fraction (0–1) of each component's extra edges that run
    /// between clusters (always drawn light, never from the coupled
    /// range).
    pub fn intercluster_fraction(mut self, f: f64) -> Self {
        self.intercluster_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the weight multiplier applied to edges that touch an
    /// unoffloadable function (≥ 1 recommended). Sensor and UI code
    /// moves bulky device data, so its calls are heavier than average —
    /// this is what makes the device-side core of each component a
    /// *region* the cut has to respect rather than scattered noise.
    pub fn pinned_edge_factor(mut self, f: f64) -> Self {
        self.pinned_edge_factor = f.max(0.0);
        self
    }

    /// Sets the RNG seed (same spec + same seed ⇒ identical graph).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requested node count.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Requested edge count.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// - [`NetgenError::NoNodes`] for an empty spec;
    /// - [`NetgenError::TooManyComponents`] when `components > nodes`;
    /// - [`NetgenError::TooFewEdges`] when the edge budget cannot keep
    ///   each component connected;
    /// - [`NetgenError::TooManyEdges`] when the budget exceeds the
    ///   number of distinct intra-component pairs.
    pub fn generate(&self) -> Result<Graph, NetgenError> {
        if self.nodes == 0 {
            return Err(NetgenError::NoNodes);
        }
        if self.components > self.nodes {
            return Err(NetgenError::TooManyComponents {
                components: self.components,
                nodes: self.nodes,
            });
        }
        // split nodes into components of near-equal size
        let sizes = split_sizes(self.nodes, self.components);
        let tree_edges: usize = self.nodes - self.components;
        if self.edges < tree_edges {
            return Err(NetgenError::TooFewEdges {
                requested: self.edges,
                needed: tree_edges,
            });
        }
        let max_edges: usize = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        if self.edges > max_edges {
            return Err(NetgenError::TooManyEdges {
                requested: self.edges,
                max: max_edges,
            });
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::with_capacity(self.nodes, self.edges);
        b.parallel_edge_policy(ParallelEdgePolicy::Reject);

        // Unoffloadable functions cluster at the root region of each
        // component (mobile apps keep sensor/UI code together in a few
        // modules), instead of being scattered uniformly: the first
        // ⌊fraction · size⌋ ids of every component are pinned. Tree
        // construction attaches node k to a random earlier node, so low
        // ids form each component's topological core.
        let mut pin_flags = vec![false; self.nodes];
        {
            let mut base = 0usize;
            for &size in &sizes {
                let pinned_here = ((size as f64) * self.unoffloadable_fraction).floor() as usize;
                for flag in pin_flags.iter_mut().skip(base).take(pinned_here) {
                    *flag = true;
                }
                base += size;
            }
        }
        for flag in &pin_flags {
            let w = sample_range(&mut rng, self.node_weight);
            let _ = b.try_add_node(w, !flag).expect("sampled weights are valid");
        }

        // per-component edge budgets: proportional to pair capacity
        let extra_total = self.edges - tree_edges;
        let mut budgets: Vec<usize> = Vec::with_capacity(sizes.len());
        let mut assigned = 0usize;
        let capacity: Vec<usize> = sizes
            .iter()
            .map(|&s| (s * (s - 1) / 2).saturating_sub(s - 1))
            .collect();
        let cap_sum: usize = capacity.iter().sum();
        for (ci, &cap) in capacity.iter().enumerate() {
            let share = if ci + 1 == capacity.len() || cap_sum == 0 {
                extra_total - assigned
            } else {
                (extra_total as u128 * cap as u128 / cap_sum.max(1) as u128) as usize
            };
            let share = share.min(cap);
            budgets.push(share);
            assigned += share;
        }
        // distribute any remainder greedily where capacity remains
        let mut leftover = extra_total - assigned;
        while leftover > 0 {
            let mut progressed = false;
            for (bud, &cap) in budgets.iter_mut().zip(&capacity) {
                if leftover == 0 {
                    break;
                }
                if *bud < cap {
                    *bud += 1;
                    leftover -= 1;
                    progressed = true;
                }
            }
            assert!(
                progressed,
                "edge budget exceeds capacity despite validation"
            );
        }

        // Build each component as a small module graph: every cluster
        // gets its own spanning tree and dense intra-cluster extras;
        // clusters are chained by single light connector edges plus a
        // light sprinkling of inter-cluster extras. Pinned functions
        // live in cluster 0, so each component has a device-coupled
        // core and offloadable peripheral modules.
        let mut base = 0usize;
        for (ci, &size) in sizes.iter().enumerate() {
            let ids: Vec<NodeId> = (base..base + size).map(NodeId::new).collect();
            let boost = |a: usize, c: usize, w: f64| {
                if pin_flags[a] || pin_flags[c] {
                    w * self.pinned_edge_factor
                } else {
                    w
                }
            };
            let k = self.clusters_per_component.min(size);
            let cluster_sizes = split_sizes(size, k);
            // cluster_of[i] and cluster node ranges (offsets into ids)
            let mut offsets = Vec::with_capacity(k + 1);
            offsets.push(0usize);
            for &cs in &cluster_sizes {
                offsets.push(offsets.last().unwrap() + cs);
            }
            let cluster_of = |i: usize| -> usize { offsets.partition_point(|&o| o <= i) - 1 };
            // intra-cluster spanning trees
            for c in 0..k {
                let (lo, hi) = (offsets[c], offsets[c + 1]);
                for i in (lo + 1)..hi {
                    let parent = lo + rng.gen_range(0..(i - lo));
                    let w = self.sample_edge_weight(&mut rng);
                    b.add_edge(
                        ids[parent],
                        ids[i],
                        boost(ids[parent].index(), ids[i].index(), w),
                    )
                    .expect("tree edges are distinct");
                }
            }
            // light connector chain between consecutive clusters
            for c in 1..k {
                let a = offsets[c - 1] + rng.gen_range(0..cluster_sizes[c - 1]);
                let d = offsets[c] + rng.gen_range(0..cluster_sizes[c]);
                let w = self.sample_light_weight(&mut rng);
                b.add_edge(ids[a], ids[d], boost(ids[a].index(), ids[d].index(), w))
                    .expect("connector pairs are fresh");
            }
            // split the extras budget between intra- and inter-cluster
            let budget = budgets[ci];
            let intra_cap: usize = cluster_sizes
                .iter()
                .map(|&cs| (cs * (cs - 1) / 2).saturating_sub(cs.saturating_sub(1)))
                .sum();
            let inter_cap: usize = {
                let all_pairs = size * (size - 1) / 2;
                let intra_pairs: usize = cluster_sizes.iter().map(|&cs| cs * (cs - 1) / 2).sum();
                (all_pairs - intra_pairs).saturating_sub(k - 1)
            };
            let mut inter_target =
                (((budget as f64) * self.intercluster_fraction).round() as usize).min(inter_cap);
            let mut intra_target = budget - inter_target;
            if intra_target > intra_cap {
                inter_target = (inter_target + (intra_target - intra_cap)).min(inter_cap);
                intra_target = intra_cap;
            }
            debug_assert!(intra_target + inter_target == budget || inter_target == inter_cap);
            // intra extras: rejection-sample inside a random cluster
            // weighted by remaining capacity
            let mut added = 0usize;
            while added < intra_target {
                let c = rng.gen_range(0..k);
                let (lo, hi) = (offsets[c], offsets[c + 1]);
                if hi - lo < 2 {
                    continue;
                }
                let a = lo + rng.gen_range(0..(hi - lo));
                let d = lo + rng.gen_range(0..(hi - lo));
                if a == d {
                    continue;
                }
                let w = self.sample_edge_weight(&mut rng);
                if b.add_edge(ids[a], ids[d], boost(ids[a].index(), ids[d].index(), w))
                    .is_ok()
                {
                    added += 1;
                }
            }
            // inter extras: always light
            let mut added = 0usize;
            while added < inter_target {
                let a = rng.gen_range(0..size);
                let d = rng.gen_range(0..size);
                if a == d || cluster_of(a) == cluster_of(d) {
                    continue;
                }
                let w = self.sample_light_weight(&mut rng);
                if b.add_edge(ids[a], ids[d], boost(ids[a].index(), ids[d].index(), w))
                    .is_ok()
                {
                    added += 1;
                }
            }
            base += size;
        }
        Ok(b.build())
    }

    /// Light weights for inter-cluster edges: the bottom third of the
    /// ordinary range, never coupled.
    fn sample_light_weight(&self, rng: &mut ChaCha8Rng) -> f64 {
        let (lo, hi) = self.edge_weight;
        sample_range(rng, (lo, lo + (hi - lo) / 3.0))
    }

    fn sample_edge_weight(&self, rng: &mut ChaCha8Rng) -> f64 {
        if rng.gen_bool(self.coupled_fraction) {
            sample_range(rng, self.coupled_weight)
        } else {
            sample_range(rng, self.edge_weight)
        }
    }
}

fn sample_range(rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

fn split_sizes(nodes: usize, components: usize) -> Vec<usize> {
    let basic = nodes / components;
    let extra = nodes % components;
    (0..components)
        .map(|i| basic + usize::from(i < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::ComponentLabeling;

    #[test]
    fn exact_node_and_edge_counts() {
        let g = NetgenSpec::new(100, 300).seed(1).generate().unwrap();
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 300);
        assert_eq!(g.check_invariants(), Ok(()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NetgenSpec::new(80, 200).seed(42).generate().unwrap();
        let b = NetgenSpec::new(80, 200).seed(42).generate().unwrap();
        let c = NetgenSpec::new(80, 200).seed(43).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn component_count_is_respected() {
        let g = NetgenSpec::new(120, 360)
            .components(4)
            .seed(3)
            .generate()
            .unwrap();
        let labeling = ComponentLabeling::compute(&g);
        assert_eq!(labeling.count(), 4);
        let sizes = labeling.sizes();
        assert!(sizes.iter().all(|&s| s == 30));
    }

    #[test]
    fn single_component_is_connected() {
        let g = NetgenSpec::new(60, 100)
            .components(1)
            .seed(5)
            .generate()
            .unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn weights_respect_ranges() {
        let g = NetgenSpec::new(50, 120)
            .components(1)
            .pinned_edge_factor(1.0)
            .node_weight_range(5.0, 6.0)
            .edge_weight_range(1.0, 2.0)
            .coupled_weight_range(100.0, 101.0)
            .coupled_fraction(0.5)
            .seed(9)
            .generate()
            .unwrap();
        for n in g.node_ids() {
            let w = g.node_weight(n);
            assert!((5.0..6.0).contains(&w));
        }
        let mut coupled = 0usize;
        for e in g.edges() {
            assert!(
                (1.0..2.0).contains(&e.weight) || (100.0..101.0).contains(&e.weight),
                "weight {} outside both ranges",
                e.weight
            );
            if e.weight >= 100.0 {
                coupled += 1;
            }
        }
        // 50% coupled with generous tolerance
        let frac = coupled as f64 / g.edge_count() as f64;
        assert!((0.3..0.7).contains(&frac), "coupled fraction {frac}");
    }

    #[test]
    fn unoffloadable_fraction_is_applied_per_component() {
        let g = NetgenSpec::new(200, 500)
            .components(2)
            .unoffloadable_fraction(0.25)
            .seed(11)
            .generate()
            .unwrap();
        let pinned = g.node_ids().filter(|&n| !g.is_offloadable(n)).count();
        assert_eq!(pinned, 50);
        // pinned ids cluster at each component's low-id core
        assert!(!g.is_offloadable(mec_graph::NodeId::new(0)));
        assert!(g.is_offloadable(mec_graph::NodeId::new(99)));
        assert!(!g.is_offloadable(mec_graph::NodeId::new(100)));
    }

    #[test]
    fn pinned_edge_factor_boosts_pin_incident_edges() {
        let base = NetgenSpec::new(60, 150)
            .seed(4)
            .pinned_edge_factor(1.0)
            .generate()
            .unwrap();
        let boosted = NetgenSpec::new(60, 150)
            .seed(4)
            .pinned_edge_factor(5.0)
            .generate()
            .unwrap();
        let pin_weight = |g: &mec_graph::Graph| -> f64 {
            g.edges()
                .filter(|e| !g.is_offloadable(e.source) || !g.is_offloadable(e.target))
                .map(|e| e.weight)
                .sum()
        };
        assert!((pin_weight(&boosted) - 5.0 * pin_weight(&base)).abs() < 1e-6);
    }

    #[test]
    fn zero_unoffloadable_fraction() {
        let g = NetgenSpec::new(30, 60)
            .unoffloadable_fraction(0.0)
            .seed(2)
            .generate()
            .unwrap();
        assert!(g.node_ids().all(|n| g.is_offloadable(n)));
    }

    #[test]
    fn error_cases() {
        assert_eq!(NetgenSpec::new(0, 0).generate(), Err(NetgenError::NoNodes));
        assert!(matches!(
            NetgenSpec::new(10, 2).components(1).generate(),
            Err(NetgenError::TooFewEdges { needed: 9, .. })
        ));
        assert!(matches!(
            NetgenSpec::new(4, 100).components(1).generate(),
            Err(NetgenError::TooManyEdges { max: 6, .. })
        ));
        assert!(matches!(
            NetgenSpec::new(3, 3).components(5).generate(),
            Err(NetgenError::TooManyComponents { .. })
        ));
    }

    #[test]
    fn table1_presets_have_published_sizes() {
        for (nodes, edges) in NetgenSpec::table1_rows() {
            let spec = NetgenSpec::paper_network(nodes, edges);
            assert_eq!(spec.node_count(), nodes);
            assert_eq!(spec.edge_count(), edges);
        }
        // generate the smallest row end-to-end
        let (n, e) = NetgenSpec::table1_rows()[0];
        let g = NetgenSpec::paper_network(n, e).seed(1).generate().unwrap();
        assert_eq!(g.node_count(), 250);
        assert_eq!(g.edge_count(), 1214);
    }

    #[test]
    fn dense_budget_saturates_components() {
        // complete graph on 6 nodes in 2 components of 3: max = 2 * 3 = 6
        let g = NetgenSpec::new(6, 6)
            .components(2)
            .seed(1)
            .generate()
            .unwrap();
        assert_eq!(g.edge_count(), 6);
        let labeling = ComponentLabeling::compute(&g);
        assert_eq!(labeling.count(), 2);
    }

    #[test]
    fn generated_components_have_real_module_structure() {
        // the intended clusters must score high modularity — this is
        // what gives the cut algorithms something to find
        let g = NetgenSpec::new(125, 500)
            .components(1)
            .seed(8)
            .generate()
            .unwrap();
        let k = 4;
        let sizes = super::split_sizes(125, k);
        let mut raw = Vec::new();
        for (c, &s) in sizes.iter().enumerate() {
            raw.extend(std::iter::repeat_n(c, s));
        }
        let intended = mec_graph::NodeGrouping::from_raw(&raw);
        let q = g.modularity(&intended);
        assert!(q > 0.3, "intended clusters score modularity {q}");
        // random grouping scores far worse
        let shuffled: Vec<usize> = (0..125).map(|i| (i * 7) % k).collect();
        let q_rand = g.modularity(&mec_graph::NodeGrouping::from_raw(&shuffled));
        assert!(q > q_rand + 0.2, "clusters {q} vs random {q_rand}");
    }

    #[test]
    fn pinned_coupling_concentrates_in_the_core() {
        let g = NetgenSpec::new(120, 400)
            .components(1)
            .seed(3)
            .generate()
            .unwrap();
        // boosted pinned edges make device coupling a visible fraction
        let frac = g.pinned_coupling_fraction();
        assert!(frac > 0.10, "pinned coupling fraction {frac}");
    }

    #[test]
    fn error_display() {
        assert!(NetgenError::NoNodes.to_string().contains("at least one"));
        assert!(NetgenError::TooFewEdges {
            requested: 1,
            needed: 5
        }
        .to_string()
        .contains("need at least 5"));
    }
}
