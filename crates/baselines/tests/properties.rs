//! Property tests: flow duality, exactness bounds, and refinement
//! monotonicity on arbitrary generated graphs.

use mec_baselines::{edmonds_karp, stoer_wagner, KernighanLin, MaxFlowBisector};
use mec_graph::{Bipartition, NodeId, Side};
use mec_netgen::NetgenSpec;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = mec_graph::Graph> {
    (6usize..40, 0u64..500).prop_map(|(nodes, seed)| {
        NetgenSpec::new(nodes, nodes * 2)
            .components(1)
            .unoffloadable_fraction(0.0)
            .seed(seed)
            .generate()
            .expect("feasible spec")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn max_flow_equals_min_cut(g in arb_graph(), s in 0usize..6, t in 0usize..6) {
        let n = g.node_count();
        let (s, t) = (NodeId::new(s % n), NodeId::new((t + 7) % n));
        if s == t { return Ok(()); }
        let res = edmonds_karp(&g, s, t).unwrap();
        // duality: the flow value equals the induced cut's weight
        prop_assert!((res.flow_value - res.partition.cut_weight(&g)).abs() < 1e-9);
        // terminals are separated
        prop_assert_eq!(res.partition.side(s), Side::Local);
        prop_assert_eq!(res.partition.side(t), Side::Remote);
    }

    #[test]
    fn st_cut_upper_bounds_global_min_cut(g in arb_graph(), s in 0usize..6, t in 0usize..6) {
        let n = g.node_count();
        let (s, t) = (NodeId::new(s % n), NodeId::new((t + 3) % n));
        if s == t { return Ok(()); }
        let exact = stoer_wagner(&g).unwrap().cut_weight;
        let st = edmonds_karp(&g, s, t).unwrap().flow_value;
        prop_assert!(st >= exact - 1e-9, "s-t cut {st} below global minimum {exact}");
    }

    #[test]
    fn stoer_wagner_partition_attains_reported_weight(g in arb_graph()) {
        let cut = stoer_wagner(&g).unwrap();
        prop_assert!(cut.partition.is_proper());
        prop_assert!((cut.partition.cut_weight(&g) - cut.cut_weight).abs() < 1e-9);
    }

    #[test]
    fn kl_refinement_never_worsens_any_start(g in arb_graph(), split in 1usize..5) {
        let n = g.node_count();
        let initial = Bipartition::from_fn(n, |i| {
            if i % split.max(1) == 0 { Side::Local } else { Side::Remote }
        });
        if !initial.is_proper() { return Ok(()); }
        let refined = KernighanLin::new().refine(&g, initial.clone());
        prop_assert!(refined.cut_weight(&g) <= initial.cut_weight(&g) + 1e-9);
        // refinement preserves side counts (KL swaps pairs)
        prop_assert_eq!(refined.count_on(Side::Local), initial.count_on(Side::Local));
    }

    #[test]
    fn all_bisectors_return_proper_partitions(g in arb_graph()) {
        for p in [
            MaxFlowBisector::new().bisect(&g).unwrap(),
            KernighanLin::new().bisect(&g).unwrap(),
            stoer_wagner(&g).unwrap().partition,
        ] {
            prop_assert!(p.is_proper());
            prop_assert_eq!(p.len(), g.node_count());
        }
    }
}
