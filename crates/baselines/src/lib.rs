//! Baseline graph bipartitioners the paper compares against (§IV):
//!
//! - [`MaxFlowBisector`] — Ford–Fulkerson-family minimum cut via the
//!   Edmonds–Karp max-flow algorithm ([`edmonds_karp`]), with endpoint
//!   selection heuristics for turning the *s–t* cut into a graph
//!   bipartition;
//! - [`KernighanLin`] — the Kernighan–Lin swap heuristic;
//! - [`stoer_wagner`] — the exact global minimum cut, not part of the
//!   paper's comparison but used here as ground truth in tests and
//!   ablations;
//! - [`MultilevelBisector`] — a METIS-style coarsen–partition–refine
//!   scheme implementing the paper's stated future work (reducing the
//!   algorithm's computational complexity).
//!
//! All three produce [`mec_graph::Bipartition`]s, so they plug into the
//! same offloading pipeline as the spectral method.
//!
//! # Example
//!
//! ```
//! use mec_baselines::{KernighanLin, MaxFlowBisector, stoer_wagner};
//! use mec_graph::GraphBuilder;
//!
//! # fn main() -> Result<(), mec_baselines::BaselineError> {
//! let mut b = GraphBuilder::new();
//! let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
//! b.add_edge(n[0], n[1], 9.0).unwrap();
//! b.add_edge(n[2], n[3], 9.0).unwrap();
//! b.add_edge(n[1], n[2], 1.0).unwrap();
//! let g = b.build();
//!
//! let exact = stoer_wagner(&g)?;
//! assert_eq!(exact.cut_weight, 1.0);
//! let kl = KernighanLin::new().bisect(&g)?;
//! let mf = MaxFlowBisector::new().bisect(&g)?;
//! assert!(kl.cut_weight(&g) >= exact.cut_weight);
//! assert!(mf.cut_weight(&g) >= exact.cut_weight);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernighan_lin;
mod maxflow;
mod multilevel;
mod stoer_wagner;

pub use kernighan_lin::KernighanLin;
pub use maxflow::{edmonds_karp, MaxFlowBisector, MaxFlowResult, TrialSelection};
pub use multilevel::MultilevelBisector;
pub use stoer_wagner::{stoer_wagner, GlobalMinCut};

use std::error::Error;
use std::fmt;

/// Errors raised by the baseline partitioners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The graph has no nodes.
    EmptyGraph,
    /// A bipartition needs at least two nodes.
    TooFewNodes {
        /// Nodes available.
        nodes: usize,
    },
    /// Source and sink of a max-flow query must differ.
    IdenticalTerminals,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::EmptyGraph => f.write_str("cannot partition an empty graph"),
            BaselineError::TooFewNodes { nodes } => {
                write!(f, "bipartition needs at least 2 nodes, got {nodes}")
            }
            BaselineError::IdenticalTerminals => {
                f.write_str("source and sink must be different nodes")
            }
        }
    }
}

impl Error for BaselineError {}
