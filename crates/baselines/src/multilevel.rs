//! Multilevel (coarsen–partition–refine) bipartitioning.
//!
//! The paper's conclusion names reducing the algorithm's computational
//! complexity as future work; the classic answer in graph partitioning
//! is the METIS-style multilevel scheme implemented here:
//!
//! 1. **Coarsen** — repeatedly contract a heavy-edge matching (each
//!    node pairs with its heaviest-edge unmatched neighbour), shrinking
//!    the graph geometrically while preserving its cut structure;
//! 2. **Partition** — solve the small coarsest graph directly
//!    (Kernighan–Lin from a balanced seed);
//! 3. **Uncoarsen** — project the partition back level by level,
//!    running a few Kernighan–Lin refinement passes at each level.
//!
//! Each level costs `O(E)` to build and refine, so the whole method is
//! near-linear — far below the spectral pipeline's eigensolve — while
//! producing cuts of comparable quality on modular graphs.

use crate::{BaselineError, KernighanLin};
use mec_graph::{Bipartition, Graph, NodeGrouping, NodeId, QuotientGraph, Side};

/// Multilevel bipartitioner.
#[derive(Debug, Clone)]
pub struct MultilevelBisector {
    /// Stop coarsening once the graph is at or below this size.
    coarsen_target: usize,
    /// Kernighan–Lin pass cap used at the base level and during each
    /// refinement step.
    refine_passes: usize,
}

impl Default for MultilevelBisector {
    fn default() -> Self {
        // An 80-node coarsest graph keeps module boundaries visible to
        // the base Kernighan–Lin solve: on 100–150-node modular graphs
        // a 40-node target over-coarsened, producing cuts refinement
        // could not recover (and more uncoarsening levels to refine).
        MultilevelBisector {
            coarsen_target: 80,
            refine_passes: 4,
        }
    }
}

impl MultilevelBisector {
    /// A bisector with the default coarsening target (80 nodes) and 4
    /// refinement passes per level.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the coarsest-graph size (at least 4).
    pub fn coarsen_target(mut self, target: usize) -> Self {
        self.coarsen_target = target.max(4);
        self
    }

    /// Sets the refinement pass cap per level (at least 1).
    pub fn refine_passes(mut self, passes: usize) -> Self {
        self.refine_passes = passes.max(1);
        self
    }

    /// Bipartitions `g` with the multilevel scheme.
    ///
    /// # Errors
    ///
    /// - [`BaselineError::EmptyGraph`] for an empty graph;
    /// - [`BaselineError::TooFewNodes`] for a single-node graph.
    pub fn bisect(&self, g: &Graph) -> Result<Bipartition, BaselineError> {
        let n = g.node_count();
        if n == 0 {
            return Err(BaselineError::EmptyGraph);
        }
        if n < 2 {
            return Err(BaselineError::TooFewNodes { nodes: n });
        }

        // --- coarsening phase -----------------------------------------
        // levels[0] is the original; each entry pairs the graph with the
        // grouping that produced the NEXT (coarser) level.
        let mut graphs: Vec<Graph> = vec![g.clone()];
        let mut groupings: Vec<NodeGrouping> = Vec::new();
        while graphs.last().expect("non-empty").node_count() > self.coarsen_target {
            let current = graphs.last().expect("non-empty");
            let grouping = heavy_edge_matching(current);
            let coarse_n = grouping.group_count();
            // stall guard: require at least 5% shrinkage per level
            if coarse_n as f64 > 0.95 * current.node_count() as f64 {
                break;
            }
            let quotient = QuotientGraph::contract(current, grouping.clone());
            groupings.push(grouping);
            graphs.push(quotient.graph().clone());
        }

        // --- base partition --------------------------------------------
        let kl = KernighanLin::new().max_passes(self.refine_passes);
        let coarsest = graphs.last().expect("non-empty");
        let mut cut = if coarsest.node_count() >= 2 {
            kl.bisect(coarsest)?
        } else {
            Bipartition::uniform(coarsest.node_count(), Side::Remote)
        };

        // --- uncoarsening + refinement ----------------------------------
        for level in (0..groupings.len()).rev() {
            let fine = &graphs[level];
            let grouping = &groupings[level];
            // project: every fine node inherits its group's side
            let projected = Bipartition::from_fn(fine.node_count(), |i| {
                cut.side(NodeId::new(grouping.group_of(NodeId::new(i))))
            });
            cut = kl.refine(fine, projected);
        }
        Ok(cut)
    }
}

/// Heavy-edge matching: scan nodes in id order; each unmatched node
/// pairs with its heaviest-edge unmatched neighbour (ties: lower id).
/// Matched pairs become one group, leftovers stay singletons.
fn heavy_edge_matching(g: &Graph) -> NodeGrouping {
    let n = g.node_count();
    const UNMATCHED: usize = usize::MAX;
    let mut mate = vec![UNMATCHED; n];
    for u in 0..n {
        if mate[u] != UNMATCHED {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for nb in g.neighbors(NodeId::new(u)) {
            let v = nb.node.index();
            if v == u || mate[v] != UNMATCHED {
                continue;
            }
            let w = g.edge_weight(nb.edge);
            let better = match best {
                None => true,
                Some((bv, bw)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((v, w));
            }
        }
        if let Some((v, _)) = best {
            mate[u] = v;
            mate[v] = u;
        } else {
            mate[u] = u; // singleton
        }
    }
    // groups: pair id = min(u, mate[u])
    let raw: Vec<usize> = (0..n).map(|u| u.min(mate[u])).collect();
    NodeGrouping::from_raw(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_netgen::NetgenSpec;

    fn bridged_cliques(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..2 * k).map(|_| b.add_node(1.0)).collect();
        for side in 0..2 {
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_edge(n[side * k + i], n[side * k + j], 8.0).unwrap();
                }
            }
        }
        b.add_edge(n[k - 1], n[k], 0.5).unwrap();
        b.build()
    }

    #[test]
    fn finds_the_bridge_on_small_and_large_dumbbells() {
        for k in [4usize, 10, 30] {
            let g = bridged_cliques(k);
            let cut = MultilevelBisector::new().bisect(&g).unwrap();
            assert!(cut.is_proper(), "k={k}");
            assert!(
                (cut.cut_weight(&g) - 0.5).abs() < 1e-9,
                "k={k}: cut {}",
                cut.cut_weight(&g)
            );
        }
    }

    #[test]
    fn heavy_edge_matching_halves_ish_the_graph() {
        let g = NetgenSpec::new(100, 300).seed(1).generate().unwrap();
        let grouping = heavy_edge_matching(&g);
        let k = grouping.group_count();
        assert!(k >= 50, "matching can at best halve: {k}");
        assert!(k < 90, "matching should shrink substantially: {k}");
        // every group is 1 or 2 nodes, and pairs are adjacent
        for members in grouping.members() {
            assert!(members.len() <= 2);
            if members.len() == 2 {
                assert!(g.edge_between(members[0], members[1]).is_some());
            }
        }
    }

    #[test]
    fn comparable_quality_to_direct_kl_in_aggregate() {
        // different local optima per instance; in aggregate the
        // multilevel cuts must be in the same quality class as direct
        // KL (they are usually better on modular graphs, where the
        // coarse levels expose the module boundaries)
        let mut ml_total = 0.0;
        let mut kl_total = 0.0;
        for seed in 0..6u64 {
            let g = NetgenSpec::new(120, 420)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            ml_total += MultilevelBisector::new().bisect(&g).unwrap().cut_weight(&g);
            kl_total += KernighanLin::new().bisect(&g).unwrap().cut_weight(&g);
        }
        assert!(
            ml_total <= 1.5 * kl_total,
            "multilevel total {ml_total} vs KL total {kl_total}"
        );
    }

    #[test]
    fn respects_configuration_knobs() {
        let g = bridged_cliques(20);
        let fast = MultilevelBisector::new()
            .coarsen_target(8)
            .refine_passes(1)
            .bisect(&g)
            .unwrap();
        assert!(fast.is_proper());
    }

    #[test]
    fn rejects_degenerate_graphs() {
        assert_eq!(
            MultilevelBisector::new()
                .bisect(&GraphBuilder::new().build())
                .unwrap_err(),
            BaselineError::EmptyGraph
        );
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        assert_eq!(
            MultilevelBisector::new().bisect(&b.build()).unwrap_err(),
            BaselineError::TooFewNodes { nodes: 1 }
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 5.0).unwrap();
        b.add_edge(n[2], n[3], 5.0).unwrap();
        b.add_edge(n[4], n[5], 5.0).unwrap();
        let g = b.build();
        // coarsening fuses each heavy pair; the 3-supernode base level
        // then admits a zero cut (direct balanced KL could not: any
        // 3|3 split of three disjoint pairs must cut one of them)
        let cut = MultilevelBisector::new()
            .coarsen_target(4)
            .bisect(&g)
            .unwrap();
        assert!(cut.is_proper());
        assert_eq!(cut.cut_weight(&g), 0.0);
    }

    #[test]
    fn deterministic() {
        let g = NetgenSpec::new(150, 500).seed(7).generate().unwrap();
        let a = MultilevelBisector::new().bisect(&g).unwrap();
        let b = MultilevelBisector::new().bisect(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stays_above_the_exact_minimum() {
        for seed in 0..4u64 {
            let g = NetgenSpec::new(40, 120)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let exact = crate::stoer_wagner(&g).unwrap().cut_weight;
            let ml = MultilevelBisector::new().bisect(&g).unwrap().cut_weight(&g);
            assert!(ml >= exact - 1e-9, "seed {seed}: {ml} < exact {exact}");
        }
    }
}
