//! Stoer–Wagner exact global minimum cut.
//!
//! Not one of the paper's comparison points, but the natural ground
//! truth for every heuristic in this workspace: it finds the cheapest
//! cut over *all* bipartitions in `O(V³)` with no terminal choice.

use crate::BaselineError;
use mec_graph::{Bipartition, Graph, Side};

/// An exact global minimum cut.
#[derive(Debug, Clone)]
pub struct GlobalMinCut {
    /// Weight of the minimum cut.
    pub cut_weight: f64,
    /// A bipartition attaining it.
    pub partition: Bipartition,
}

/// Computes the exact global minimum cut of `g` with the Stoer–Wagner
/// algorithm.
///
/// Disconnected graphs return a zero-weight cut separating one
/// component from the rest.
///
/// # Errors
///
/// - [`BaselineError::EmptyGraph`] for an empty graph;
/// - [`BaselineError::TooFewNodes`] for a single-node graph.
pub fn stoer_wagner(g: &Graph) -> Result<GlobalMinCut, BaselineError> {
    let n = g.node_count();
    if n == 0 {
        return Err(BaselineError::EmptyGraph);
    }
    if n < 2 {
        return Err(BaselineError::TooFewNodes { nodes: n });
    }
    // dense working copy of the weighted adjacency
    let mut w = vec![vec![0.0f64; n]; n];
    for e in g.edges() {
        w[e.source.index()][e.target.index()] += e.weight;
        w[e.target.index()][e.source.index()] += e.weight;
    }
    // merged[v] lists the original nodes currently fused into v
    let mut merged: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_weight = f64::INFINITY;
    let mut best_side: Vec<usize> = Vec::new();

    while active.len() > 1 {
        // maximum-adjacency (minimum-cut-phase) ordering
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut weights: Vec<f64> = active.iter().map(|_| 0.0).collect();
        let mut order = Vec::with_capacity(m);
        for _ in 0..m {
            // pick the most tightly connected unused vertex
            let (pos, _) = weights
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_a[*i])
                .max_by(|(ia, wa), (ib, wb)| {
                    wa.partial_cmp(wb)
                        .expect("weights are finite")
                        .then(ib.cmp(ia))
                })
                .expect("an unused vertex remains");
            in_a[pos] = true;
            order.push(pos);
            for (i, &v) in active.iter().enumerate() {
                if !in_a[i] {
                    weights[i] += w[active[pos]][v];
                }
            }
        }
        let last = order[m - 1];
        let prev = order[m - 2];
        // cut-of-the-phase: last vertex alone vs the rest
        let phase_weight: f64 = active
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != last)
            .map(|(_, &v)| w[active[last]][v])
            .sum();
        if phase_weight < best_weight {
            best_weight = phase_weight;
            best_side = merged[active[last]].clone();
        }
        // merge last into prev
        let (vl, vp) = (active[last], active[prev]);
        let moved = std::mem::take(&mut merged[vl]);
        merged[vp].extend(moved);
        for &v in &active {
            if v != vl && v != vp {
                w[vp][v] += w[vl][v];
                w[v][vp] = w[vp][v];
            }
        }
        active.remove(last);
    }

    let mut sides = vec![Side::Local; n];
    for &i in &best_side {
        sides[i] = Side::Remote;
    }
    Ok(GlobalMinCut {
        cut_weight: best_weight,
        partition: Bipartition::from_sides(sides),
    })
}

/// Brute-force minimum cut by enumerating all bipartitions — test
/// oracle for graphs of up to ~20 nodes.
///
/// # Panics
///
/// Panics if `g` has fewer than 2 or more than 24 nodes.
#[cfg(test)]
pub(crate) fn brute_force_min_cut(g: &Graph) -> (f64, Bipartition) {
    let n = g.node_count();
    assert!((2..=24).contains(&n), "brute force needs 2..=24 nodes");
    let mut best = (f64::INFINITY, Bipartition::uniform(n, Side::Local));
    // fix node 0 on the Local side to halve the space; skip improper
    for mask in 1u32..(1 << (n - 1)) {
        let p = Bipartition::from_fn(n, |i| {
            if i == 0 {
                Side::Local
            } else if mask & (1 << (i - 1)) != 0 {
                Side::Remote
            } else {
                Side::Local
            }
        });
        let cw = p.cut_weight(g);
        if cw < best.0 {
            best = (cw, p);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_netgen::NetgenSpec;

    #[test]
    fn finds_bridge_cut() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 7.0).unwrap();
        }
        b.add_edge(n[2], n[3], 0.5).unwrap();
        let g = b.build();
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.cut_weight - 0.5).abs() < 1e-12);
        assert!((cut.partition.cut_weight(&g) - 0.5).abs() < 1e-12);
        assert_eq!(cut.partition.count_on(Side::Remote), 3);
    }

    #[test]
    fn two_node_graph() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 4.0).unwrap();
        let cut = stoer_wagner(&b.build()).unwrap();
        assert_eq!(cut.cut_weight, 4.0);
        assert!(cut.partition.is_proper());
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 3.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        let g = b.build();
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.cut_weight, 0.0);
        assert_eq!(cut.partition.cut_weight(&g), 0.0);
        assert!(cut.partition.is_proper());
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        for seed in 0..6 {
            let g = NetgenSpec::new(10, 20)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let sw = stoer_wagner(&g).unwrap();
            let (bf_weight, _) = brute_force_min_cut(&g);
            assert!(
                (sw.cut_weight - bf_weight).abs() < 1e-9,
                "seed {seed}: SW {} vs brute force {bf_weight}",
                sw.cut_weight
            );
        }
    }

    #[test]
    fn errors_on_degenerate_graphs() {
        assert_eq!(
            stoer_wagner(&GraphBuilder::new().build()).unwrap_err(),
            BaselineError::EmptyGraph
        );
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        assert_eq!(
            stoer_wagner(&b.build()).unwrap_err(),
            BaselineError::TooFewNodes { nodes: 1 }
        );
    }

    #[test]
    fn cut_weight_matches_partition_weight() {
        let g = NetgenSpec::new(30, 80)
            .components(1)
            .seed(9)
            .generate()
            .unwrap();
        let cut = stoer_wagner(&g).unwrap();
        assert!((cut.partition.cut_weight(&g) - cut.cut_weight).abs() < 1e-9);
    }
}
