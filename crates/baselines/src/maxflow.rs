//! Edmonds–Karp maximum flow / minimum s–t cut.
//!
//! The paper's first comparison algorithm: "Ford-fulkerson algorithm
//! which is used to solve maximum flow finding from source node s to
//! target or sink node t … a specialized Ford-Fulkerson algorithm, also
//! called as Edmond-Karp algorithm guarantees to find maximum flow in
//! limited number of iterations" (§IV). An undirected edge of weight
//! `w` becomes a pair of directed arcs of capacity `w`; after the last
//! augmentation the nodes reachable from `s` in the residual network
//! form the minimum-cut side.

use crate::BaselineError;
use mec_graph::{Bipartition, Graph, NodeId, Side};
use std::collections::VecDeque;

/// Result of a max-flow computation between two terminals.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// Value of the maximum flow (= weight of the minimum s–t cut).
    pub flow_value: f64,
    /// Bipartition induced by the final residual network: nodes
    /// reachable from `s` are [`Side::Local`], the rest
    /// [`Side::Remote`].
    pub partition: Bipartition,
}

/// Residual network: paired arcs, `arc ^ 1` is the reverse arc.
struct Residual {
    /// Per-node outgoing arc indices.
    head: Vec<Vec<u32>>,
    /// Arc target node.
    to: Vec<u32>,
    /// Remaining capacity.
    cap: Vec<f64>,
}

impl Residual {
    fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut head = vec![Vec::new(); n];
        let m = g.edge_count();
        let mut to = Vec::with_capacity(4 * m);
        let mut cap = Vec::with_capacity(4 * m);
        for e in g.edges() {
            let (a, b) = (e.source.index(), e.target.index());
            // undirected edge → both directions at full capacity; each
            // direction still gets its paired reverse arc so the
            // algorithm stays a plain directed max-flow.
            for (u, v) in [(a, b), (b, a)] {
                head[u].push(to.len() as u32);
                to.push(v as u32);
                cap.push(e.weight);
                head[v].push(to.len() as u32);
                to.push(u as u32);
                cap.push(0.0);
            }
        }
        Residual { head, to, cap }
    }

    /// BFS for a shortest augmenting path; returns per-node incoming
    /// arc, or `None` when `t` is unreachable.
    fn bfs(&self, s: usize, t: usize) -> Option<Vec<u32>> {
        const NONE: u32 = u32::MAX;
        let mut pred = vec![NONE; self.head.len()];
        let mut seen = vec![false; self.head.len()];
        seen[s] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.head[u] {
                let v = self.to[a as usize] as usize;
                if !seen[v] && self.cap[a as usize] > 1e-12 {
                    seen[v] = true;
                    pred[v] = a;
                    if v == t {
                        return Some(pred);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    fn reachable_from(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.head.len()];
        seen[s] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.head[u] {
                let v = self.to[a as usize] as usize;
                if !seen[v] && self.cap[a as usize] > 1e-12 {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

/// Computes the maximum flow (and minimum cut) from `s` to `t` with
/// Edmonds–Karp (BFS augmenting paths).
///
/// # Errors
///
/// - [`BaselineError::EmptyGraph`] on an empty graph;
/// - [`BaselineError::IdenticalTerminals`] when `s == t`.
///
/// # Panics
///
/// Panics if `s` or `t` is out of bounds.
pub fn edmonds_karp(g: &Graph, s: NodeId, t: NodeId) -> Result<MaxFlowResult, BaselineError> {
    let n = g.node_count();
    if n == 0 {
        return Err(BaselineError::EmptyGraph);
    }
    assert!(s.index() < n && t.index() < n, "terminal out of bounds");
    if s == t {
        return Err(BaselineError::IdenticalTerminals);
    }
    let mut r = Residual::from_graph(g);
    let mut flow = 0.0f64;
    while let Some(pred) = r.bfs(s.index(), t.index()) {
        // bottleneck along the path
        let mut bottleneck = f64::INFINITY;
        let mut v = t.index();
        while v != s.index() {
            let a = pred[v] as usize;
            bottleneck = bottleneck.min(r.cap[a]);
            v = r.to[a ^ 1] as usize;
        }
        // apply
        let mut v = t.index();
        while v != s.index() {
            let a = pred[v] as usize;
            r.cap[a] -= bottleneck;
            r.cap[a ^ 1] += bottleneck;
            v = r.to[a ^ 1] as usize;
        }
        flow += bottleneck;
    }
    let reach = r.reachable_from(s.index());
    let partition = Bipartition::from_fn(n, |i| if reach[i] { Side::Local } else { Side::Remote });
    Ok(MaxFlowResult {
        flow_value: flow,
        partition,
    })
}

/// How a multi-trial bisection picks among the candidate s–t cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialSelection {
    /// Keep the lightest cut (pure minimum-cut semantics; default).
    /// s–t minimum cuts tend to peel single nodes under this rule.
    #[default]
    MinWeight,
    /// Keep the cut with the best ratio score `weight / (|A| · |B|)` —
    /// trades a little weight for a usable bipartition.
    MinRatio,
}

/// Graph bipartitioner built on repeated s–t minimum cuts.
///
/// A global bipartition has no designated terminals, so the bisector
/// fixes `s` at the node with the largest weighted degree (the hub the
/// paper's propagation also starts from) and tries the `trials`
/// BFS-farthest candidates as `t`, keeping the best cut under the
/// configured [`TrialSelection`].
#[derive(Debug, Clone)]
pub struct MaxFlowBisector {
    trials: usize,
    selection: TrialSelection,
}

impl Default for MaxFlowBisector {
    fn default() -> Self {
        MaxFlowBisector {
            trials: 3,
            selection: TrialSelection::default(),
        }
    }
}

impl MaxFlowBisector {
    /// A bisector with the default 3 sink candidates and
    /// [`TrialSelection::MinWeight`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many sink candidates to try (at least 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets how the winning trial is chosen.
    pub fn selection(mut self, selection: TrialSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Bipartitions `g` by the lightest of the trialled s–t cuts.
    ///
    /// # Errors
    ///
    /// - [`BaselineError::EmptyGraph`] for an empty graph;
    /// - [`BaselineError::TooFewNodes`] for a single-node graph.
    pub fn bisect(&self, g: &Graph) -> Result<Bipartition, BaselineError> {
        let n = g.node_count();
        if n == 0 {
            return Err(BaselineError::EmptyGraph);
        }
        if n < 2 {
            return Err(BaselineError::TooFewNodes { nodes: n });
        }
        // source: heaviest hub
        let s = g
            .node_ids()
            .max_by(|&a, &b| {
                g.weighted_degree(a)
                    .partial_cmp(&g.weighted_degree(b))
                    .expect("degrees are finite")
                    .then(b.cmp(&a))
            })
            .expect("graph is non-empty");
        // sink candidates: farthest nodes by BFS hop distance
        let order = g.bfs_order(s);
        let mut best: Option<(f64, Bipartition)> = None;
        for &t in order.iter().rev().take(self.trials) {
            if t == s {
                continue;
            }
            let res = edmonds_karp(g, s, t)?;
            let score = match self.selection {
                TrialSelection::MinWeight => res.flow_value,
                TrialSelection::MinRatio => {
                    let a = res.partition.count_on(Side::Local).max(1);
                    let b = res.partition.count_on(Side::Remote).max(1);
                    res.flow_value / (a as f64 * b as f64)
                }
            };
            let keep = match &best {
                None => true,
                Some((bs, _)) => score < *bs,
            };
            if keep {
                best = Some((score, res.partition));
            }
        }
        let (_, partition) = best.expect("at least one sink candidate exists");
        Ok(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;

    fn bridge_graph() -> Graph {
        // 0-1 heavy, 2-3 heavy, bridge 1-2 light
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 9.0).unwrap();
        b.add_edge(n[2], n[3], 9.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn flow_equals_min_cut_on_bridge() {
        let g = bridge_graph();
        let r = edmonds_karp(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        assert!((r.flow_value - 1.0).abs() < 1e-12);
        assert!((r.partition.cut_weight(&g) - 1.0).abs() < 1e-12);
        assert_eq!(r.partition.side(NodeId::new(0)), Side::Local);
        assert_eq!(r.partition.side(NodeId::new(3)), Side::Remote);
    }

    #[test]
    fn flow_saturates_parallel_paths() {
        // diamond: s=0, t=3, two disjoint paths of capacity 2 and 3
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 2.0).unwrap();
        b.add_edge(n[1], n[3], 2.0).unwrap();
        b.add_edge(n[0], n[2], 3.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        let r = edmonds_karp(&b.build(), NodeId::new(0), NodeId::new(3)).unwrap();
        assert!((r.flow_value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // path with capacities 5, 1, 5
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 5.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.add_edge(n[2], n[3], 5.0).unwrap();
        let r = edmonds_karp(&b.build(), NodeId::new(0), NodeId::new(3)).unwrap();
        assert!((r.flow_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_terminals_have_zero_flow() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 4.0).unwrap();
        let r = edmonds_karp(&b.build(), x, z).unwrap();
        assert_eq!(r.flow_value, 0.0);
        assert!(r.partition.is_proper());
    }

    #[test]
    fn identical_terminals_rejected() {
        let g = bridge_graph();
        assert_eq!(
            edmonds_karp(&g, NodeId::new(1), NodeId::new(1)).unwrap_err(),
            BaselineError::IdenticalTerminals
        );
    }

    #[test]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new().build();
        assert_eq!(
            MaxFlowBisector::new().bisect(&g).unwrap_err(),
            BaselineError::EmptyGraph
        );
    }

    #[test]
    fn single_node_rejected() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        assert_eq!(
            MaxFlowBisector::new().bisect(&b.build()).unwrap_err(),
            BaselineError::TooFewNodes { nodes: 1 }
        );
    }

    #[test]
    fn bisector_finds_bridge() {
        let g = bridge_graph();
        let p = MaxFlowBisector::new().bisect(&g).unwrap();
        assert!(p.is_proper());
        assert!((p.cut_weight(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_trials_never_hurt() {
        let g = bridge_graph();
        let one = MaxFlowBisector::new().trials(1).bisect(&g).unwrap();
        let five = MaxFlowBisector::new().trials(5).bisect(&g).unwrap();
        assert!(five.cut_weight(&g) <= one.cut_weight(&g) + 1e-12);
    }

    #[test]
    fn undirected_flow_is_symmetric() {
        let g = bridge_graph();
        let ab = edmonds_karp(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        let ba = edmonds_karp(&g, NodeId::new(3), NodeId::new(0)).unwrap();
        assert!((ab.flow_value - ba.flow_value).abs() < 1e-12);
    }
}
