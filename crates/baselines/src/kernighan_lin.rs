//! The Kernighan–Lin bipartitioning heuristic.
//!
//! The paper's second comparison algorithm (§IV): starting from a
//! balanced bipartition, KL computes for every node the *D-value*
//! (external minus internal coupling), greedily selects node swaps by
//! gain, and commits the best prefix of the swap sequence; passes
//! repeat until no positive-gain prefix exists.

use crate::BaselineError;
use mec_graph::{Bipartition, Graph, NodeId, Side};

/// Kernighan–Lin graph bipartitioner.
#[derive(Debug, Clone)]
pub struct KernighanLin {
    max_passes: usize,
}

impl Default for KernighanLin {
    fn default() -> Self {
        KernighanLin { max_passes: 20 }
    }
}

impl KernighanLin {
    /// A partitioner with the default pass cap (20).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of improvement passes (at least 1).
    pub fn max_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes.max(1);
        self
    }

    /// Bipartitions `g`, starting from the index-balanced split (first
    /// half local, second half remote) and refining with KL passes.
    ///
    /// # Errors
    ///
    /// - [`BaselineError::EmptyGraph`] for an empty graph;
    /// - [`BaselineError::TooFewNodes`] for a single-node graph.
    pub fn bisect(&self, g: &Graph) -> Result<Bipartition, BaselineError> {
        let n = g.node_count();
        if n == 0 {
            return Err(BaselineError::EmptyGraph);
        }
        if n < 2 {
            return Err(BaselineError::TooFewNodes { nodes: n });
        }
        let initial =
            Bipartition::from_fn(n, |i| if i < n / 2 { Side::Local } else { Side::Remote });
        Ok(self.refine(g, initial))
    }

    /// Refines an existing bipartition with KL passes (exposed so the
    /// pipeline can post-process cuts produced by other strategies).
    pub fn refine(&self, g: &Graph, mut partition: Bipartition) -> Bipartition {
        for _ in 0..self.max_passes {
            let gain = self.one_pass(g, &mut partition);
            if gain <= 1e-12 {
                break;
            }
        }
        partition
    }

    /// One KL pass. Returns the committed gain (0 when no improving
    /// prefix was found; the partition is then unchanged).
    fn one_pass(&self, g: &Graph, partition: &mut Bipartition) -> f64 {
        let n = g.node_count();
        // D[v] = external - internal coupling of v under `partition`
        let mut d = vec![0.0f64; n];
        for e in g.edges() {
            let (a, b) = (e.source.index(), e.target.index());
            if partition.as_slice()[a] == partition.as_slice()[b] {
                d[a] -= e.weight;
                d[b] -= e.weight;
            } else {
                d[a] += e.weight;
                d[b] += e.weight;
            }
        }
        let mut locked = vec![false; n];
        let mut sides: Vec<Side> = partition.as_slice().to_vec();
        let mut swaps: Vec<(usize, usize, f64)> = Vec::new();
        let pair_budget = partition
            .count_on(Side::Local)
            .min(partition.count_on(Side::Remote));
        for _ in 0..pair_budget {
            // best unlocked pair (a local, b remote) maximising
            // gain = D[a] + D[b] - 2 w(a,b)
            let mut best: Option<(usize, usize, f64)> = None;
            for a in 0..n {
                if locked[a] || sides[a] != Side::Local {
                    continue;
                }
                for b in 0..n {
                    if locked[b] || sides[b] != Side::Remote {
                        continue;
                    }
                    let w_ab = g
                        .edge_between(NodeId::new(a), NodeId::new(b))
                        .map_or(0.0, |e| g.edge_weight(e));
                    let gain = d[a] + d[b] - 2.0 * w_ab;
                    let better = match best {
                        None => true,
                        Some((.., bg)) => gain > bg,
                    };
                    if better {
                        best = Some((a, b, gain));
                    }
                }
            }
            let Some((a, b, gain)) = best else { break };
            // tentatively swap, lock, update D-values
            locked[a] = true;
            locked[b] = true;
            sides[a] = Side::Remote;
            sides[b] = Side::Local;
            swaps.push((a, b, gain));
            for (x, flip_partner) in [(a, b), (b, a)] {
                for nb in g.neighbors(NodeId::new(x)) {
                    let v = nb.node.index();
                    if locked[v] {
                        continue;
                    }
                    let w = g.edge_weight(nb.edge);
                    // x moved across: edges to x change external/internal
                    // status for v. If v is now on x's new side, the edge
                    // became internal (D decreases), else external.
                    let x_new_side = sides[x];
                    if sides[v] == x_new_side {
                        d[v] -= 2.0 * w;
                    } else {
                        d[v] += 2.0 * w;
                    }
                    let _ = flip_partner;
                }
            }
        }
        // best prefix of cumulative gains
        let mut best_prefix = 0usize;
        let mut best_sum = 0.0f64;
        let mut run = 0.0f64;
        for (k, &(_, _, gain)) in swaps.iter().enumerate() {
            run += gain;
            if run > best_sum + 1e-12 {
                best_sum = run;
                best_prefix = k + 1;
            }
        }
        for &(a, b, _) in swaps.iter().take(best_prefix) {
            partition.assign(NodeId::new(a), Side::Remote);
            partition.assign(NodeId::new(b), Side::Local);
        }
        best_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_netgen::NetgenSpec;

    /// Graph where the index-balanced start is maximally wrong: nodes
    /// {0,2} are tightly coupled, {1,3} are tightly coupled, the cross
    /// edges are light.
    fn interleaved() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[2], 10.0).unwrap();
        b.add_edge(n[1], n[3], 10.0).unwrap();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn fixes_bad_initial_partition() {
        let g = interleaved();
        // initial split {0,1} | {2,3} cuts both heavy edges: weight 20
        let p = KernighanLin::new().bisect(&g).unwrap();
        assert!((p.cut_weight(&g) - 2.0).abs() < 1e-12);
        assert_eq!(p.count_on(Side::Local), 2);
    }

    #[test]
    fn preserves_balance() {
        let g = NetgenSpec::new(40, 120)
            .components(1)
            .seed(5)
            .generate()
            .unwrap();
        let p = KernighanLin::new().bisect(&g).unwrap();
        assert_eq!(p.count_on(Side::Local), 20);
        assert_eq!(p.count_on(Side::Remote), 20);
    }

    #[test]
    fn never_worse_than_initial_cut() {
        for seed in 0..5 {
            let g = NetgenSpec::new(30, 90)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let n = g.node_count();
            let initial =
                Bipartition::from_fn(n, |i| if i < n / 2 { Side::Local } else { Side::Remote });
            let refined = KernighanLin::new().refine(&g, initial.clone());
            assert!(
                refined.cut_weight(&g) <= initial.cut_weight(&g) + 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn refine_is_idempotent_at_fixed_point() {
        let g = interleaved();
        let p1 = KernighanLin::new().bisect(&g).unwrap();
        let p2 = KernighanLin::new().refine(&g, p1.clone());
        assert_eq!(p1.cut_weight(&g), p2.cut_weight(&g));
    }

    #[test]
    fn two_node_graph() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 2.0).unwrap();
        let p = KernighanLin::new().bisect(&b.build()).unwrap();
        assert!(p.is_proper());
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert_eq!(
            KernighanLin::new()
                .bisect(&GraphBuilder::new().build())
                .unwrap_err(),
            BaselineError::EmptyGraph
        );
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        assert_eq!(
            KernighanLin::new().bisect(&b.build()).unwrap_err(),
            BaselineError::TooFewNodes { nodes: 1 }
        );
    }

    #[test]
    fn deterministic() {
        let g = NetgenSpec::new(24, 60)
            .components(1)
            .seed(3)
            .generate()
            .unwrap();
        let a = KernighanLin::new().bisect(&g).unwrap();
        let b = KernighanLin::new().bisect(&g).unwrap();
        assert_eq!(a, b);
    }
}
