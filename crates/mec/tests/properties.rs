//! Property tests for the cost model: the pricing formulas must be
//! internally consistent, monotone, and policy-sane for arbitrary
//! plans.

use mec_graph::{Bipartition, NodeId, Side};
use mec_model::{AllocationPolicy, Scenario, SystemParams, UserWorkload};
use mec_netgen::NetgenSpec;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_case() -> impl Strategy<Value = (Scenario, Vec<Bipartition>)> {
    (
        1usize..5,
        20usize..80,
        0u64..300,
        proptest::collection::vec(any::<bool>(), 32),
        prop_oneof![
            Just(AllocationPolicy::EqualShare),
            Just(AllocationPolicy::ProportionalToLoad),
            Just(AllocationPolicy::Fifo),
        ],
    )
        .prop_map(|(users, nodes, seed, mask, policy)| {
            let graph = Arc::new(
                NetgenSpec::new(nodes, nodes * 2)
                    .seed(seed)
                    .generate()
                    .expect("feasible"),
            );
            let params = SystemParams {
                allocation: policy,
                ..SystemParams::default()
            };
            let scenario = Scenario::new(params).with_users(
                (0..users).map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&graph))),
            );
            let plan: Vec<Bipartition> = (0..users)
                .map(|u| {
                    Bipartition::from_fn(graph.node_count(), |i| {
                        let n = NodeId::new(i);
                        if !graph.is_offloadable(n) || !mask[(i + u) % mask.len()] {
                            Side::Local
                        } else {
                            Side::Remote
                        }
                    })
                })
                .collect();
            (scenario, plan)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn totals_are_sums_of_parts((scenario, plan) in arb_case()) {
        let eval = scenario.evaluate(&plan).unwrap();
        let t = &eval.totals;
        prop_assert!((t.energy - (t.local_energy + t.tx_energy)).abs() < 1e-9);
        prop_assert!((t.time - (t.local_time + t.remote_time + t.tx_time)).abs() < 1e-9);
        let sum_le: f64 = eval.per_user.iter().map(|c| c.local_energy).sum();
        let sum_te: f64 = eval.per_user.iter().map(|c| c.tx_energy).sum();
        let sum_lt: f64 = eval.per_user.iter().map(|c| c.local_time).sum();
        prop_assert!((sum_le - t.local_energy).abs() < 1e-9);
        prop_assert!((sum_te - t.tx_energy).abs() < 1e-9);
        prop_assert!((sum_lt - t.local_time).abs() < 1e-9);
    }

    #[test]
    fn formulas_1_3_4_5_hold_per_user((scenario, plan) in arb_case()) {
        let p = *scenario.params();
        let eval = scenario.evaluate(&plan).unwrap();
        for c in &eval.per_user {
            // (1) t_c = local work / I_c, (3) e_c = t_c p_c
            prop_assert!((c.local_time - c.local_work / p.local_capacity).abs() < 1e-9);
            prop_assert!((c.local_energy - c.local_time * p.local_power).abs() < 1e-9);
            // (5) t_t = volume / b, (4) e_t = t_t p_t
            prop_assert!((c.tx_time - c.tx_volume / p.bandwidth).abs() < 1e-9);
            prop_assert!((c.tx_energy - c.tx_time * p.tx_power).abs() < 1e-9);
            prop_assert!(c.wait_time >= 0.0 && c.remote_time >= 0.0);
        }
    }

    #[test]
    fn energy_is_policy_independent((scenario, plan) in arb_case()) {
        // re-price the same plan under every policy: E never changes
        let mut energies = Vec::new();
        for policy in [
            AllocationPolicy::EqualShare,
            AllocationPolicy::ProportionalToLoad,
            AllocationPolicy::Fifo,
        ] {
            let params = SystemParams { allocation: policy, ..*scenario.params() };
            let s2 = Scenario::new(params).with_users(scenario.users().iter().cloned());
            energies.push(s2.evaluate(&plan).unwrap().totals.energy);
        }
        prop_assert!((energies[0] - energies[1]).abs() < 1e-9);
        prop_assert!((energies[1] - energies[2]).abs() < 1e-9);
    }

    #[test]
    fn faster_server_never_increases_time((scenario, plan) in arb_case()) {
        let base = scenario.evaluate(&plan).unwrap().totals.time;
        let params = SystemParams {
            server_capacity: scenario.params().server_capacity * 4.0,
            ..*scenario.params()
        };
        let s2 = Scenario::new(params).with_users(scenario.users().iter().cloned());
        let fast = s2.evaluate(&plan).unwrap().totals.time;
        prop_assert!(fast <= base + 1e-9, "faster server raised time: {fast} > {base}");
    }

    #[test]
    fn all_local_baseline_has_no_transmission((scenario, _) in arb_case()) {
        let eval = scenario.evaluate_all_local().unwrap();
        prop_assert_eq!(eval.totals.tx_energy, 0.0);
        prop_assert_eq!(eval.totals.remote_time, 0.0);
        for c in &eval.per_user {
            prop_assert_eq!(c.remote_work, 0.0);
        }
    }

    #[test]
    fn all_remote_baseline_respects_pins((scenario, _) in arb_case()) {
        let eval = scenario.evaluate_all_remote().unwrap();
        for (user, cost) in scenario.users().iter().zip(&eval.per_user) {
            let g = user.graph();
            let pinned: f64 = g
                .node_ids()
                .filter(|&n| !g.is_offloadable(n))
                .map(|n| g.node_weight(n))
                .sum();
            prop_assert!((cost.local_work - pinned).abs() < 1e-9);
        }
    }
}
