//! Pricing an offloading plan: formulas (1)–(6).
//!
//! The model works on *graphs*, not on any particular container of
//! users: [`validate_plan_for`] and [`evaluate_plan_for`] take any
//! re-iterable sequence of `&Graph`, so a long-lived session can price
//! its live crowd directly — no intermediate
//! [`Scenario`]/`UserWorkload` rebuild (and none of its name clones or
//! `Arc` bumps) per replan. [`Scenario::evaluate`] is a thin wrapper
//! over the same functions.

use crate::{AllocationPolicy, ModelError, Scenario, SystemParams};
use mec_graph::{Bipartition, Graph, Side};
use serde::{Deserialize, Serialize};

/// Cost breakdown for one user under a given plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UserCost {
    /// Work units executed on the device.
    pub local_work: f64,
    /// Work units executed on the server.
    pub remote_work: f64,
    /// Data volume crossing the cut, including per-edge control
    /// overhead.
    pub tx_volume: f64,
    /// `t_c` — formula (1).
    pub local_time: f64,
    /// `Σ w / I_s` — the compute part of formula (2).
    pub remote_time: f64,
    /// `wt` — waiting for the server share, the second term of
    /// formula (2). Zero except under [`AllocationPolicy::Fifo`].
    pub wait_time: f64,
    /// `t_t` — formula (5).
    pub tx_time: f64,
    /// `e_c` — formula (3).
    pub local_energy: f64,
    /// `e_t` — formula (4).
    pub tx_energy: f64,
}

impl UserCost {
    /// The user's total time: `t_c + t_s (+ wt) + t_t`.
    pub fn time(&self) -> f64 {
        self.local_time + self.remote_time + self.wait_time + self.tx_time
    }

    /// The user's total energy: `e_c + e_t`.
    pub fn energy(&self) -> f64 {
        self.local_energy + self.tx_energy
    }
}

/// System-wide totals — the paper's `E` and `T` of formula (6).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostSummary {
    /// `E = Σ e_c + Σ e_t`.
    pub energy: f64,
    /// `T = Σ t_c + Σ t_s + Σ t_w (+ Σ t_t)`.
    pub time: f64,
    /// `Σ e_c` — the "local energy" series of Figs. 3 and 6.
    pub local_energy: f64,
    /// `Σ e_t` — the "transmission energy" series of Figs. 4 and 7.
    pub tx_energy: f64,
    /// `Σ t_c`.
    pub local_time: f64,
    /// `Σ (t_s + wt)`.
    pub remote_time: f64,
    /// `Σ t_t`.
    pub tx_time: f64,
}

impl CostSummary {
    /// The scalarised objective Algorithm 2 greedily minimises:
    /// `E + T`.
    pub fn objective(&self) -> f64 {
        self.energy + self.time
    }
}

/// A full plan evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Per-user cost breakdowns, in scenario order.
    pub per_user: Vec<UserCost>,
    /// System totals.
    pub totals: CostSummary,
}

/// Validates `plan` against the system parameters and a sequence of
/// user graphs (in user order): one partition per graph, covering every
/// node, with pinned nodes kept local.
///
/// This is the container-free form of
/// [`Scenario::validate_plan`](Scenario::validate_plan) — sessions call
/// it against their live crowd without materialising a scenario.
///
/// # Errors
///
/// See [`ModelError`] variants for each violation.
pub fn validate_plan_for<'a, I>(
    params: &SystemParams,
    graphs: I,
    plan: &[Bipartition],
) -> Result<(), ModelError>
where
    I: IntoIterator<Item = &'a Graph>,
    I::IntoIter: ExactSizeIterator,
{
    params.validate()?;
    let graphs = graphs.into_iter();
    if plan.len() != graphs.len() {
        return Err(ModelError::PlanLengthMismatch {
            users: graphs.len(),
            plans: plan.len(),
        });
    }
    for (i, (graph, cut)) in graphs.zip(plan).enumerate() {
        if cut.len() < graph.node_count() {
            return Err(ModelError::PartitionTooSmall { user: i });
        }
        for n in graph.node_ids() {
            if !graph.is_offloadable(n) && cut.side(n) == Side::Remote {
                return Err(ModelError::PinnedNodeOffloaded { user: i, node: n });
            }
        }
    }
    Ok(())
}

/// Prices `plan` with the paper's cost model against a sequence of
/// user graphs (in user order) — the container-free form of
/// [`Scenario::evaluate`](Scenario::evaluate). The iterator must be
/// re-iterable (`Clone`) because validation and pass 1 each walk it
/// once.
///
/// # Errors
///
/// Any [`ModelError`] from [`validate_plan_for`].
pub fn evaluate_plan_for<'a, I>(
    params: &SystemParams,
    graphs: I,
    plan: &[Bipartition],
) -> Result<Evaluation, ModelError>
where
    I: IntoIterator<Item = &'a Graph>,
    I::IntoIter: ExactSizeIterator + Clone,
{
    let graphs = graphs.into_iter();
    validate_plan_for(params, graphs.clone(), plan)?;
    let p = *params;
    let n_users = graphs.len();

    // pass 1: raw work and transmission quantities
    let mut costs = vec![UserCost::default(); n_users];
    for ((g, cut), cost) in graphs.zip(plan).zip(&mut costs) {
        cost.local_work = cut.node_weight_on(g, Side::Local);
        cost.remote_work = cut.node_weight_on(g, Side::Remote);
        let mut volume = 0.0;
        let mut crossings = 0usize;
        for e in g.edges() {
            if cut.side(e.source) != cut.side(e.target) {
                volume += e.weight;
                crossings += 1;
            }
        }
        cost.tx_volume = volume + crossings as f64 * p.control_overhead;
        cost.local_time = cost.local_work / p.local_capacity;
        cost.local_energy = cost.local_time * p.local_power; // (3)
        cost.tx_time = cost.tx_volume / p.bandwidth; // (5)
        cost.tx_energy = cost.tx_time * p.tx_power; // (4)
    }

    // pass 2: server shares and waiting (formula (2))
    let offloaders: Vec<usize> = (0..n_users)
        .filter(|&i| costs[i].remote_work > 0.0)
        .collect();
    match p.allocation {
        AllocationPolicy::EqualShare => {
            let k = offloaders.len().max(1) as f64;
            let share = p.server_capacity / k;
            for &i in &offloaders {
                costs[i].remote_time = costs[i].remote_work / share;
            }
        }
        AllocationPolicy::ProportionalToLoad => {
            let total: f64 = offloaders.iter().map(|&i| costs[i].remote_work).sum();
            if total > 0.0 {
                // share_i = I_S * w_i / total  →  t_s = total / I_S
                let t = total / p.server_capacity;
                for &i in &offloaders {
                    costs[i].remote_time = t;
                }
            }
        }
        AllocationPolicy::Fifo => {
            let mut clock = 0.0;
            for &i in &offloaders {
                costs[i].wait_time = clock;
                costs[i].remote_time = costs[i].remote_work / p.server_capacity;
                clock += costs[i].remote_time;
            }
        }
    }

    let mut totals = CostSummary::default();
    for c in &costs {
        totals.local_energy += c.local_energy;
        totals.tx_energy += c.tx_energy;
        totals.local_time += c.local_time;
        totals.remote_time += c.remote_time + c.wait_time;
        totals.tx_time += c.tx_time;
    }
    totals.energy = totals.local_energy + totals.tx_energy;
    totals.time = totals.local_time + totals.remote_time + totals.tx_time;
    Ok(Evaluation {
        per_user: costs,
        totals,
    })
}

impl Scenario {
    /// Prices `plan` with the paper's cost model (delegates to
    /// [`evaluate_plan_for`] over this scenario's user graphs).
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] from [`validate_plan`](Scenario::validate_plan).
    pub fn evaluate(&self, plan: &[Bipartition]) -> Result<Evaluation, ModelError> {
        evaluate_plan_for(
            self.params(),
            self.users().iter().map(crate::UserWorkload::graph),
            plan,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemParams, UserWorkload};
    use mec_graph::{Graph, GraphBuilder};

    /// pinned(2) — 8 — free(50): the example from the crate docs.
    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let p = b.add_pinned_node(2.0);
        let q = b.add_node(50.0);
        b.add_edge(p, q, 8.0).unwrap();
        b.build()
    }

    fn params() -> SystemParams {
        SystemParams {
            bandwidth: 20.0,
            local_capacity: 10.0,
            server_capacity: 200.0,
            local_power: 1.0,
            tx_power: 10.0,
            control_overhead: 2.0,
            allocation: AllocationPolicy::EqualShare,
        }
    }

    fn single_user(plan_sides: Vec<Side>) -> Evaluation {
        let s = Scenario::new(params()).with_user(UserWorkload::new("u", small_graph()));
        s.evaluate(&[Bipartition::from_sides(plan_sides)]).unwrap()
    }

    #[test]
    fn all_local_plan_has_no_transmission() {
        let eval = single_user(vec![Side::Local, Side::Local]);
        let c = eval.per_user[0];
        assert_eq!(c.local_work, 52.0);
        assert_eq!(c.remote_work, 0.0);
        assert_eq!(c.tx_volume, 0.0);
        // t_c = 52/10, e_c = t_c * 1
        assert!((c.local_time - 5.2).abs() < 1e-12);
        assert!((c.local_energy - 5.2).abs() < 1e-12);
        assert_eq!(eval.totals.tx_energy, 0.0);
        assert!((eval.totals.objective() - (5.2 + 5.2)).abs() < 1e-12);
    }

    #[test]
    fn offloading_prices_formulas_1_to_5() {
        let eval = single_user(vec![Side::Local, Side::Remote]);
        let c = eval.per_user[0];
        // local: pinned node only → t_c = 2/10 = 0.2, e_c = 0.2
        assert!((c.local_time - 0.2).abs() < 1e-12);
        assert!((c.local_energy - 0.2).abs() < 1e-12);
        // remote: 50 work on a full 200 share → t_s = 0.25 (single user)
        assert!((c.remote_time - 0.25).abs() < 1e-12);
        assert_eq!(c.wait_time, 0.0);
        // tx: volume 8 + 1 crossing * 2 overhead = 10 → t_t = 0.5, e_t = 5
        assert!((c.tx_time - 0.5).abs() < 1e-12);
        assert!((c.tx_energy - 5.0).abs() < 1e-12);
        // totals
        assert!((eval.totals.energy - 5.2).abs() < 1e-12);
        assert!((eval.totals.time - (0.2 + 0.25 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn equal_share_contention_slows_remote_time_linearly() {
        let users: Vec<_> = (0..4)
            .map(|i| UserWorkload::new(format!("u{i}"), small_graph()))
            .collect();
        let s = Scenario::new(params()).with_users(users);
        let plan: Vec<_> = (0..4)
            .map(|_| Bipartition::from_sides(vec![Side::Local, Side::Remote]))
            .collect();
        let eval = s.evaluate(&plan).unwrap();
        // 4 offloaders → share 50 each → t_s = 1.0 each
        for c in &eval.per_user {
            assert!((c.remote_time - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn proportional_policy_finishes_everyone_together() {
        let mut p = params();
        p.allocation = AllocationPolicy::ProportionalToLoad;
        let mut big = GraphBuilder::new();
        let b1 = big.add_node(100.0);
        let b2 = big.add_node(100.0);
        big.add_edge(b1, b2, 1.0).unwrap();
        let s = Scenario::new(p)
            .with_user(UserWorkload::new("small", small_graph()))
            .with_user(UserWorkload::new("big", big.build()));
        let plan = vec![
            Bipartition::from_sides(vec![Side::Local, Side::Remote]),
            Bipartition::from_sides(vec![Side::Remote, Side::Remote]),
        ];
        let eval = s.evaluate(&plan).unwrap();
        // total remote = 50 + 200 = 250 → t = 1.25 for both
        assert!((eval.per_user[0].remote_time - 1.25).abs() < 1e-12);
        assert!((eval.per_user[1].remote_time - 1.25).abs() < 1e-12);
    }

    #[test]
    fn fifo_accrues_waiting_time() {
        let mut p = params();
        p.allocation = AllocationPolicy::Fifo;
        let s = Scenario::new(p)
            .with_user(UserWorkload::new("first", small_graph()))
            .with_user(UserWorkload::new("second", small_graph()));
        let plan: Vec<_> = (0..2)
            .map(|_| Bipartition::from_sides(vec![Side::Local, Side::Remote]))
            .collect();
        let eval = s.evaluate(&plan).unwrap();
        assert_eq!(eval.per_user[0].wait_time, 0.0);
        // first job takes 50/200 = 0.25
        assert!((eval.per_user[1].wait_time - 0.25).abs() < 1e-12);
        // totals include waiting in remote_time
        assert!((eval.totals.remote_time - (0.25 + 0.25 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn non_offloaders_never_wait() {
        let mut p = params();
        p.allocation = AllocationPolicy::Fifo;
        let s = Scenario::new(p)
            .with_user(UserWorkload::new("local-only", small_graph()))
            .with_user(UserWorkload::new("offloader", small_graph()));
        let plan = vec![
            Bipartition::from_sides(vec![Side::Local, Side::Local]),
            Bipartition::from_sides(vec![Side::Local, Side::Remote]),
        ];
        let eval = s.evaluate(&plan).unwrap();
        assert_eq!(eval.per_user[0].wait_time, 0.0);
        assert_eq!(eval.per_user[0].remote_time, 0.0);
        assert_eq!(eval.per_user[1].wait_time, 0.0);
    }

    #[test]
    fn user_cost_helpers_sum_components() {
        let eval = single_user(vec![Side::Local, Side::Remote]);
        let c = eval.per_user[0];
        assert!(
            (c.time() - (c.local_time + c.remote_time + c.wait_time + c.tx_time)).abs() < 1e-15
        );
        assert!((c.energy() - (c.local_energy + c.tx_energy)).abs() < 1e-15);
    }

    #[test]
    fn control_overhead_penalises_many_small_crossings() {
        // two graphs, same crossing volume, different crossing counts
        let mut few = GraphBuilder::new();
        let a = few.add_node(1.0);
        let b = few.add_node(1.0);
        few.add_edge(a, b, 10.0).unwrap();
        let mut many = GraphBuilder::new();
        let c0 = many.add_node(1.0);
        let others: Vec<_> = (0..5).map(|_| many.add_node(0.2)).collect();
        for &o in &others {
            many.add_edge(c0, o, 2.0).unwrap();
        }
        let s_few = Scenario::new(params()).with_user(UserWorkload::new("few", few.build()));
        let s_many = Scenario::new(params()).with_user(UserWorkload::new("many", many.build()));
        let plan_few = vec![Bipartition::from_sides(vec![Side::Local, Side::Remote])];
        let plan_many = vec![Bipartition::from_fn(6, |i| {
            if i == 0 {
                Side::Local
            } else {
                Side::Remote
            }
        })];
        let e_few = s_few.evaluate(&plan_few).unwrap();
        let e_many = s_many.evaluate(&plan_many).unwrap();
        assert!(
            e_many.per_user[0].tx_energy > e_few.per_user[0].tx_energy,
            "5 crossings must cost more than 1 at equal volume"
        );
    }
}
