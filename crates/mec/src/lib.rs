//! The multi-user MEC system model (paper §II).
//!
//! Every user `u_i` runs one application, modelled as a function
//! data-flow graph, against a single shared edge server `S`. Given an
//! offloading plan (a [`Bipartition`](mec_graph::Bipartition) per
//! user), this crate prices it with the paper's formulas:
//!
//! | Paper | Here |
//! |---|---|
//! | (1) `t_c = Σ w / I_c`                       | [`UserCost::local_time`] |
//! | (2) `t_s = Σ w / I_s + wt`                  | [`UserCost::remote_time`] + [`UserCost::wait_time`] |
//! | (3) `e_c = t_c · p_c`                       | [`UserCost::local_energy`] |
//! | (4) `e_t = Σ s(v_j,v_l) · p_t / b`          | [`UserCost::tx_energy`] |
//! | (5) `t_t = Σ s(v_j,v_l) / b`                | [`UserCost::tx_time`] |
//! | (6) `min(E), min(T)`                        | [`CostSummary::energy`], [`CostSummary::time`], scalarised as [`CostSummary::objective`] |
//!
//! The shared server capacity is divided between offloading users by an
//! [`AllocationPolicy`]; with more users each share shrinks, which is
//! exactly the contention the paper's multi-user experiments
//! (Figs. 6–8) measure.
//!
//! # Example
//!
//! ```
//! use mec_model::{Scenario, SystemParams, UserWorkload};
//! use mec_graph::{GraphBuilder, Bipartition, Side};
//!
//! # fn main() -> Result<(), mec_model::ModelError> {
//! let mut b = GraphBuilder::new();
//! let sense = b.add_pinned_node(2.0);
//! let crunch = b.add_node(50.0);
//! b.add_edge(sense, crunch, 8.0).unwrap();
//! let g = b.build();
//!
//! let scenario = Scenario::new(SystemParams::default())
//!     .with_user(UserWorkload::new("alice", g));
//! // offload the cruncher, keep the sensor local
//! let plan = vec![Bipartition::from_sides(vec![Side::Local, Side::Remote])];
//! let eval = scenario.evaluate(&plan)?;
//! assert!(eval.totals.energy > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod params;
mod scenario;

pub use cost::{evaluate_plan_for, validate_plan_for, CostSummary, Evaluation, UserCost};
pub use params::{AllocationPolicy, SystemParams};
pub use scenario::{Scenario, UserWorkload};

use mec_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised while evaluating an offloading plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The plan has a different number of partitions than the scenario
    /// has users.
    PlanLengthMismatch {
        /// Users in the scenario.
        users: usize,
        /// Partitions supplied.
        plans: usize,
    },
    /// A partition covers fewer nodes than its user's graph.
    PartitionTooSmall {
        /// Offending user index.
        user: usize,
    },
    /// An unoffloadable function was placed on the server.
    PinnedNodeOffloaded {
        /// Offending user index.
        user: usize,
        /// The pinned node.
        node: NodeId,
    },
    /// A system parameter is non-positive or non-finite.
    InvalidParams(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::PlanLengthMismatch { users, plans } => {
                write!(f, "plan covers {plans} users but scenario has {users}")
            }
            ModelError::PartitionTooSmall { user } => {
                write!(f, "partition for user {user} covers too few nodes")
            }
            ModelError::PinnedNodeOffloaded { user, node } => {
                write!(
                    f,
                    "unoffloadable node {node} of user {user} placed on the server"
                )
            }
            ModelError::InvalidParams(what) => write!(f, "invalid system parameter: {what}"),
        }
    }
}

impl Error for ModelError {}
