//! System-wide parameters and the server allocation policy.

use crate::ModelError;
use serde::{Deserialize, Serialize};

/// How the edge server divides its capacity among users that offload.
///
/// The paper only states that `I_s^i` is "the available computing
/// resources of `u_i` assigned by `S`" and that waiting time `wt`
/// appears when resources are contended; these policies are the three
/// natural realisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Every offloading user gets an equal share `I_S / k` (default).
    /// No explicit waiting time; contention shows up as smaller shares.
    #[default]
    EqualShare,
    /// Shares proportional to each user's remote workload: all remote
    /// phases finish together after `total_remote_work / I_S`.
    ProportionalToLoad,
    /// The server runs jobs one at a time at full capacity, in user
    /// order; later users accrue waiting time `wt_i` (formula (2)).
    Fifo,
}

/// Physical constants of the MEC deployment, shared by all users —
/// the paper assumes `∀u_i: b_i = b`, `p_c^i = p_c`, `p_t^i = p_t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Wireless bandwidth `b` between any user and the server (data
    /// units per second).
    pub bandwidth: f64,
    /// Device computing capacity `I_c` (work units per second).
    pub local_capacity: f64,
    /// Edge-server total capacity `I_S` (work units per second),
    /// shared across users.
    pub server_capacity: f64,
    /// Unit power of local computation `p_c` (energy per second).
    pub local_power: f64,
    /// Unit power of wireless transmission `p_t` (energy per second).
    /// The paper notes `p_t ≫ p_c`.
    pub tx_power: f64,
    /// Fixed control-message overhead added per cut edge, in data
    /// units (§III-B: "the amount of control messages transmission
    /// depends on the number of data transmission").
    pub control_overhead: f64,
    /// Server capacity split policy.
    pub allocation: AllocationPolicy,
}

impl Default for SystemParams {
    /// Defaults embody the paper's qualitative assumptions: the edge
    /// server is far faster than a device (that is why MEC exists),
    /// transmitting is an order of magnitude more power-hungry than
    /// computing locally (`p_t ≫ p_c`), and the radio is the scarce
    /// resource: shipping one unit of data costs a few times more than
    /// computing one unit of work locally, so only well-separated
    /// computation is worth offloading — exactly the trade-off the
    /// paper's cut algorithms compete on.
    fn default() -> Self {
        SystemParams {
            bandwidth: 20.0,
            local_capacity: 10.0,
            server_capacity: 2000.0,
            local_power: 1.0,
            tx_power: 10.0,
            control_overhead: 2.0,
            allocation: AllocationPolicy::EqualShare,
        }
    }
}

impl SystemParams {
    /// Validates that every physical constant is positive and finite
    /// (`control_overhead` may be zero).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] naming the offending field.
    pub fn validate(&self) -> Result<(), ModelError> {
        let positive = [
            (self.bandwidth, "bandwidth"),
            (self.local_capacity, "local_capacity"),
            (self.server_capacity, "server_capacity"),
            (self.local_power, "local_power"),
            (self.tx_power, "tx_power"),
        ];
        for (v, name) in positive {
            if !v.is_finite() || v <= 0.0 {
                return Err(ModelError::InvalidParams(name));
            }
        }
        if !self.control_overhead.is_finite() || self.control_overhead < 0.0 {
            return Err(ModelError::InvalidParams("control_overhead"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_paper_shaped() {
        let p = SystemParams::default();
        assert_eq!(p.validate(), Ok(()));
        assert!(p.tx_power > p.local_power, "paper: p_t >> p_c");
        assert!(
            p.server_capacity > p.local_capacity,
            "server outpowers device"
        );
    }

    #[test]
    fn validation_names_offender() {
        let p = SystemParams {
            bandwidth: 0.0,
            ..SystemParams::default()
        };
        assert_eq!(p.validate(), Err(ModelError::InvalidParams("bandwidth")));
        let q = SystemParams {
            control_overhead: -1.0,
            ..SystemParams::default()
        };
        assert_eq!(
            q.validate(),
            Err(ModelError::InvalidParams("control_overhead"))
        );
        let r = SystemParams {
            tx_power: f64::NAN,
            ..SystemParams::default()
        };
        assert_eq!(r.validate(), Err(ModelError::InvalidParams("tx_power")));
    }

    #[test]
    fn serde_round_trip() {
        let p = SystemParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: SystemParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
