//! Users, workloads, and the scenario container.

use crate::{ModelError, SystemParams};
use mec_graph::{Bipartition, Graph};
use std::sync::Arc;

/// One user's application workload.
///
/// The graph is reference-counted so large crowds of users running the
/// same application (the paper's multi-user sweeps) share one copy.
#[derive(Debug, Clone, PartialEq)]
pub struct UserWorkload {
    name: String,
    graph: Arc<Graph>,
}

impl UserWorkload {
    /// Creates a workload for the user called `name` running the
    /// application with function data-flow graph `graph` (accepts
    /// `Graph` or a shared `Arc<Graph>`).
    pub fn new(name: impl Into<String>, graph: impl Into<Arc<Graph>>) -> Self {
        UserWorkload {
            name: name.into(),
            graph: graph.into(),
        }
    }

    /// The user's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The application graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A shared handle to the application graph, for work that must
    /// own the graph (e.g. cluster stage tasks).
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// An all-local plan for this workload (the no-offloading
    /// baseline).
    pub fn all_local_plan(&self) -> Bipartition {
        Bipartition::uniform(self.graph.node_count(), mec_graph::Side::Local)
    }

    /// The offload-maximal plan: every offloadable function remote,
    /// pinned functions local.
    pub fn all_remote_plan(&self) -> Bipartition {
        Bipartition::from_fn(self.graph.node_count(), |i| {
            if self.graph.is_offloadable(mec_graph::NodeId::new(i)) {
                mec_graph::Side::Remote
            } else {
                mec_graph::Side::Local
            }
        })
    }
}

/// A complete multi-user MEC scenario: shared parameters plus one
/// workload per user, all served by a single edge server.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    params: SystemParams,
    users: Vec<UserWorkload>,
}

impl Scenario {
    /// Creates an empty scenario with the given parameters.
    pub fn new(params: SystemParams) -> Self {
        Scenario {
            params,
            users: Vec::new(),
        }
    }

    /// Adds a user (builder style).
    pub fn with_user(mut self, user: UserWorkload) -> Self {
        self.users.push(user);
        self
    }

    /// Adds many users.
    pub fn with_users(mut self, users: impl IntoIterator<Item = UserWorkload>) -> Self {
        self.users.extend(users);
        self
    }

    /// The shared system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The users in order.
    pub fn users(&self) -> &[UserWorkload] {
        &self.users
    }

    /// Prices the no-offloading baseline (every function on its
    /// device).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if the system parameters are
    /// invalid.
    pub fn evaluate_all_local(&self) -> Result<crate::Evaluation, ModelError> {
        let plan: Vec<Bipartition> = self
            .users
            .iter()
            .map(UserWorkload::all_local_plan)
            .collect();
        self.evaluate(&plan)
    }

    /// Prices the offload-maximal baseline (every offloadable function
    /// on the server).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if the system parameters are
    /// invalid.
    pub fn evaluate_all_remote(&self) -> Result<crate::Evaluation, ModelError> {
        let plan: Vec<Bipartition> = self
            .users
            .iter()
            .map(UserWorkload::all_remote_plan)
            .collect();
        self.evaluate(&plan)
    }

    /// Validates an offloading plan against this scenario: one
    /// partition per user, covering the graph, with every pinned node
    /// kept local (delegates to [`crate::validate_plan_for`] over this
    /// scenario's user graphs).
    ///
    /// # Errors
    ///
    /// See [`ModelError`] variants for each violation.
    pub fn validate_plan(&self, plan: &[Bipartition]) -> Result<(), ModelError> {
        crate::validate_plan_for(
            &self.params,
            self.users.iter().map(UserWorkload::graph),
            plan,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::{GraphBuilder, Side};

    fn graph_with_pin() -> Graph {
        let mut b = GraphBuilder::new();
        let p = b.add_pinned_node(1.0);
        let q = b.add_node(2.0);
        b.add_edge(p, q, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn builder_accumulates_users() {
        let s = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", graph_with_pin()))
            .with_users([UserWorkload::new("b", graph_with_pin())]);
        assert_eq!(s.user_count(), 2);
        assert_eq!(s.users()[0].name(), "a");
        assert_eq!(s.users()[1].name(), "b");
    }

    #[test]
    fn all_local_plan_covers_graph() {
        let u = UserWorkload::new("a", graph_with_pin());
        let p = u.all_local_plan();
        assert_eq!(p.len(), 2);
        assert_eq!(p.count_on(Side::Local), 2);
    }

    #[test]
    fn validate_plan_checks_lengths() {
        let s = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", graph_with_pin()));
        assert_eq!(
            s.validate_plan(&[]),
            Err(ModelError::PlanLengthMismatch { users: 1, plans: 0 })
        );
        let short = Bipartition::uniform(1, Side::Local);
        assert_eq!(
            s.validate_plan(&[short]),
            Err(ModelError::PartitionTooSmall { user: 0 })
        );
    }

    #[test]
    fn validate_plan_rejects_offloaded_pins() {
        let s = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", graph_with_pin()));
        let bad = Bipartition::from_sides(vec![Side::Remote, Side::Remote]);
        assert!(matches!(
            s.validate_plan(&[bad]),
            Err(ModelError::PinnedNodeOffloaded { user: 0, .. })
        ));
        let ok = Bipartition::from_sides(vec![Side::Local, Side::Remote]);
        assert_eq!(s.validate_plan(&[ok]), Ok(()));
    }

    #[test]
    fn baseline_plans_and_evaluations() {
        let s = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", graph_with_pin()));
        let remote = s.users()[0].all_remote_plan();
        assert_eq!(remote.side(mec_graph::NodeId::new(0)), Side::Local); // pinned
        assert_eq!(remote.side(mec_graph::NodeId::new(1)), Side::Remote);
        let local_eval = s.evaluate_all_local().unwrap();
        let remote_eval = s.evaluate_all_remote().unwrap();
        assert_eq!(local_eval.totals.tx_energy, 0.0);
        assert!(remote_eval.totals.local_energy < local_eval.totals.local_energy);
    }

    #[test]
    fn validate_plan_surfaces_bad_params() {
        let params = SystemParams {
            server_capacity: -1.0,
            ..SystemParams::default()
        };
        let s = Scenario::new(params).with_user(UserWorkload::new("a", graph_with_pin()));
        let plan = vec![s.users()[0].all_local_plan()];
        assert_eq!(
            s.validate_plan(&plan),
            Err(ModelError::InvalidParams("server_capacity"))
        );
    }
}
