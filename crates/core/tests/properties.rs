//! Pipeline-level property tests: for arbitrary generated scenarios
//! the offloader must produce valid, priced, deterministic plans that
//! never lose to the trivial baselines it can reach.

use copmecs_core::{Offloader, StrategyKind};
use mec_graph::Side;
use mec_model::{AllocationPolicy, Scenario, SystemParams, UserWorkload};
use mec_netgen::NetgenSpec;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct ScenarioSpec {
    users: usize,
    nodes: usize,
    pin_frac: f64,
    bandwidth: f64,
    server: f64,
    policy: AllocationPolicy,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        1usize..6,
        40usize..150,
        0.0f64..0.4,
        5.0f64..120.0,
        50.0f64..5000.0,
        prop_oneof![
            Just(AllocationPolicy::EqualShare),
            Just(AllocationPolicy::ProportionalToLoad),
            Just(AllocationPolicy::Fifo),
        ],
        0u64..500,
    )
        .prop_map(
            |(users, nodes, pin_frac, bandwidth, server, policy, seed)| ScenarioSpec {
                users,
                nodes,
                pin_frac,
                bandwidth,
                server,
                policy,
                seed,
            },
        )
}

fn build(spec: &ScenarioSpec) -> Scenario {
    let params = SystemParams {
        bandwidth: spec.bandwidth,
        server_capacity: spec.server,
        allocation: spec.policy,
        ..SystemParams::default()
    };
    let pool: Vec<Arc<mec_graph::Graph>> = (0..spec.users.min(3))
        .map(|i| {
            Arc::new(
                NetgenSpec::new(spec.nodes, spec.nodes * 2)
                    .unoffloadable_fraction(spec.pin_frac)
                    .seed(spec.seed + i as u64)
                    .generate()
                    .expect("feasible spec"),
            )
        })
        .collect();
    Scenario::new(params).with_users(
        (0..spec.users)
            .map(|i| UserWorkload::new(format!("u{i}"), Arc::clone(&pool[i % pool.len()]))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plans_are_always_valid_and_priced(spec in arb_scenario()) {
        let s = build(&spec);
        let report = Offloader::new().solve(&s).unwrap();
        prop_assert_eq!(s.validate_plan(&report.plan), Ok(()));
        let t = &report.evaluation.totals;
        prop_assert!(t.energy >= 0.0 && t.time >= 0.0);
        prop_assert!((t.energy - (t.local_energy + t.tx_energy)).abs() < 1e-6);
        prop_assert!(
            (report.greedy.final_objective - t.objective()).abs() < 1e-6 * (1.0 + t.objective())
        );
    }

    #[test]
    fn never_worse_than_all_local(spec in arb_scenario()) {
        let s = build(&spec);
        let report = Offloader::new().solve(&s).unwrap();
        let base = s.evaluate_all_local().unwrap();
        prop_assert!(
            report.evaluation.totals.objective()
                <= base.totals.objective() * (1.0 + 1e-9) + 1e-9,
            "{} > all-local {}",
            report.evaluation.totals.objective(),
            base.totals.objective()
        );
    }

    #[test]
    fn deterministic(spec in arb_scenario()) {
        let s = build(&spec);
        let a = Offloader::new().solve(&s).unwrap();
        let b = Offloader::new().solve(&s).unwrap();
        prop_assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn pinned_nodes_stay_local_for_every_strategy(spec in arb_scenario()) {
        let s = build(&spec);
        for kind in [StrategyKind::Spectral, StrategyKind::MaxFlow, StrategyKind::KernighanLin] {
            let report = Offloader::builder().strategy(kind).build().solve(&s).unwrap();
            for (user, plan) in s.users().iter().zip(&report.plan) {
                for n in user.graph().node_ids() {
                    if !user.graph().is_offloadable(n) {
                        prop_assert_eq!(plan.side(n), Side::Local);
                    }
                }
            }
        }
    }

    #[test]
    fn offloaded_work_never_exceeds_offloadable(spec in arb_scenario()) {
        let s = build(&spec);
        let report = Offloader::new().solve(&s).unwrap();
        for (user, plan) in s.users().iter().zip(&report.plan) {
            let g = user.graph();
            let offloadable: f64 = g
                .node_ids()
                .filter(|&n| g.is_offloadable(n))
                .map(|n| g.node_weight(n))
                .sum();
            prop_assert!(plan.node_weight_on(g, Side::Remote) <= offloadable + 1e-9);
        }
    }
}
