//! Pluggable minimum-cut backends.

use mec_baselines::{
    BaselineError, KernighanLin, MaxFlowBisector, MultilevelBisector, TrialSelection,
};
use mec_engine::Cluster;
use mec_graph::{Bipartition, Graph, Side};
use mec_obs::TraceSink;
use mec_spectral::{CutScratch, SpectralBisector, SpectralError};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error from a cut backend.
#[derive(Debug)]
pub enum CutError {
    /// The spectral backend failed.
    Spectral(SpectralError),
    /// A combinatorial baseline failed.
    Baseline(BaselineError),
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::Spectral(e) => write!(f, "spectral cut failed: {e}"),
            CutError::Baseline(e) => write!(f, "baseline cut failed: {e}"),
        }
    }
}

impl Error for CutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CutError::Spectral(e) => Some(e),
            CutError::Baseline(e) => Some(e),
        }
    }
}

impl From<SpectralError> for CutError {
    fn from(e: SpectralError) -> Self {
        CutError::Spectral(e)
    }
}

impl From<BaselineError> for CutError {
    fn from(e: BaselineError) -> Self {
        CutError::Baseline(e)
    }
}

/// A minimum-cut backend: bipartitions one (compressed, connected)
/// sub-graph.
///
/// Single-node graphs must return the trivial all-remote partition so
/// the greedy stage can still decide the node's placement.
pub trait CutStrategy: Send + Sync {
    /// Short identifier used in reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Bipartitions `g`.
    ///
    /// # Errors
    ///
    /// Backend-specific failures; see [`CutError`].
    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError>;

    /// Bipartitions `g` inside a caller-owned [`CutScratch`] arena.
    ///
    /// The front-end threads one arena through every component of every
    /// user it prepares — on the serial backend that arena lives inside
    /// the [`ExecCtx`](crate::ExecCtx) and survives across solves, on
    /// the cluster backend each stage task owns a private one — so
    /// backends that can recycle buffers (the spectral ones) avoid
    /// re-allocating their CSR snapshot, Krylov basis, and sweep
    /// buffers per cut. The default implementation
    /// ignores the arena and delegates to [`cut`](CutStrategy::cut) —
    /// combinatorial baselines have no spectral state to reuse.
    ///
    /// Implementations must return exactly what `cut` would: the arena
    /// is a performance channel, never a behavioural one.
    ///
    /// # Errors
    ///
    /// Same as [`cut`](CutStrategy::cut).
    fn cut_reusing(&self, g: &Graph, scratch: &mut CutScratch) -> Result<Bipartition, CutError> {
        let _ = scratch;
        self.cut(g)
    }

    /// An owned copy of this strategy, for handing each worker task of
    /// a cluster stage its own instance. Copies must be behaviourally
    /// identical to the original (same cuts for the same graphs), or
    /// the cluster solve path loses its bit-for-bit parity with the
    /// serial one.
    fn boxed_clone(&self) -> Box<dyn CutStrategy>;
}

/// The three cut algorithms of the paper's evaluation, as a convenient
/// constructor enum (use [`CutStrategy`] directly for custom
/// backends).
#[derive(Debug, Clone, Default)]
pub enum StrategyKind {
    /// The paper's contribution: Fiedler-vector bipartition (serial
    /// eigensolver).
    #[default]
    Spectral,
    /// Spectral with Laplacian products on a cluster — the paper's
    /// "with Spark" configuration.
    SpectralParallel {
        /// Cluster to run on.
        cluster: Arc<Cluster>,
        /// Row blocks per matrix-vector product.
        blocks: usize,
    },
    /// Edmonds–Karp max-flow minimum cut.
    MaxFlow,
    /// The Kernighan–Lin heuristic.
    KernighanLin,
    /// METIS-style multilevel coarsen–partition–refine (this repo's
    /// implementation of the paper's future-work direction: near-linear
    /// runtime at spectral-class quality on modular graphs).
    Multilevel,
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(&self) -> Box<dyn CutStrategy> {
        self.build_with_sink(mec_obs::null_sink())
    }

    /// Instantiates the strategy with telemetry routed to `sink`. The
    /// spectral backends forward the sink to the eigensolver (Lanczos
    /// iteration/restart counters, `spectral.cut` events); the
    /// combinatorial baselines have nothing iterative to report and
    /// ignore it.
    pub fn build_with_sink(&self, sink: Arc<dyn TraceSink>) -> Box<dyn CutStrategy> {
        match self {
            StrategyKind::Spectral => Box::new(SpectralStrategy {
                bisector: SpectralBisector::new().with_trace_sink(sink),
            }),
            StrategyKind::SpectralParallel { cluster, blocks } => Box::new(SpectralStrategy {
                bisector: SpectralBisector::new()
                    .with_cluster(Arc::clone(cluster), *blocks)
                    .with_trace_sink(sink),
            }),
            // ratio-based trial selection: raw min-weight s–t cuts peel
            // single nodes, which makes the offloading split useless
            StrategyKind::MaxFlow => Box::new(MaxFlowStrategy {
                bisector: MaxFlowBisector::new().selection(TrialSelection::MinRatio),
            }),
            StrategyKind::KernighanLin => Box::new(KlStrategy {
                partitioner: KernighanLin::new(),
            }),
            StrategyKind::Multilevel => Box::new(MultilevelStrategy {
                bisector: MultilevelBisector::new(),
            }),
        }
    }
}

/// Spectral (Fiedler-vector) cut backend.
#[derive(Debug, Clone)]
struct SpectralStrategy {
    bisector: SpectralBisector,
}

impl CutStrategy for SpectralStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        if self.bisector.is_parallel() {
            "spectral+engine"
        } else {
            "spectral"
        }
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        Ok(self.bisector.bisect(g)?.partition)
    }

    fn cut_reusing(&self, g: &Graph, scratch: &mut CutScratch) -> Result<Bipartition, CutError> {
        Ok(self.bisector.bisect_reusing(g, scratch)?.partition)
    }
}

/// Max-flow min-cut backend.
#[derive(Debug, Clone)]
struct MaxFlowStrategy {
    bisector: MaxFlowBisector,
}

impl CutStrategy for MaxFlowStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "max-flow-min-cut"
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        if g.node_count() == 1 {
            return Ok(Bipartition::uniform(1, Side::Remote));
        }
        Ok(self.bisector.bisect(g)?)
    }
}

/// Kernighan–Lin backend.
#[derive(Debug, Clone)]
struct KlStrategy {
    partitioner: KernighanLin,
}

impl CutStrategy for KlStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "kernighan-lin"
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        if g.node_count() == 1 {
            return Ok(Bipartition::uniform(1, Side::Remote));
        }
        Ok(self.partitioner.bisect(g)?)
    }
}

/// Multilevel coarsen–partition–refine backend.
#[derive(Debug, Clone)]
struct MultilevelStrategy {
    bisector: MultilevelBisector,
}

impl CutStrategy for MultilevelStrategy {
    fn boxed_clone(&self) -> Box<dyn CutStrategy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn cut(&self, g: &Graph) -> Result<Bipartition, CutError> {
        if g.node_count() == 1 {
            return Ok(Bipartition::uniform(1, Side::Remote));
        }
        Ok(self.bisector.bisect(g)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;

    fn bridge() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 9.0).unwrap();
        b.add_edge(n[2], n[3], 9.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn all_strategies_cut_the_bridge_cheaply() {
        let g = bridge();
        for kind in [
            StrategyKind::Spectral,
            StrategyKind::MaxFlow,
            StrategyKind::KernighanLin,
            StrategyKind::Multilevel,
        ] {
            let s = kind.build();
            let cut = s.cut(&g).unwrap();
            assert!(cut.is_proper(), "{}", s.name());
            assert!(
                cut.cut_weight(&g) <= 1.0 + 1e-9,
                "{} found cut {}",
                s.name(),
                cut.cut_weight(&g)
            );
        }
    }

    #[test]
    fn single_node_graphs_yield_trivial_remote() {
        let mut b = GraphBuilder::new();
        b.add_node(3.0);
        let g = b.build();
        for kind in [
            StrategyKind::Spectral,
            StrategyKind::MaxFlow,
            StrategyKind::KernighanLin,
            StrategyKind::Multilevel,
        ] {
            let cut = kind.build().cut(&g).unwrap();
            assert_eq!(cut.len(), 1);
            assert_eq!(cut.side(mec_graph::NodeId::new(0)), Side::Remote);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = [
            StrategyKind::Spectral,
            StrategyKind::MaxFlow,
            StrategyKind::KernighanLin,
            StrategyKind::Multilevel,
        ]
        .iter()
        .map(|k| k.build().name())
        .collect();
        assert_eq!(
            names,
            vec![
                "spectral",
                "max-flow-min-cut",
                "kernighan-lin",
                "multilevel"
            ]
        );
    }

    #[test]
    fn parallel_spectral_has_engine_name() {
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let s = StrategyKind::SpectralParallel { cluster, blocks: 4 }.build();
        assert_eq!(s.name(), "spectral+engine");
        let cut = s.cut(&bridge()).unwrap();
        assert!(cut.is_proper());
    }

    #[test]
    fn strategies_are_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn CutStrategy>();
    }
}
