//! Dynamic multi-user sessions: join, leave, re-plan.
//!
//! The paper solves a static snapshot, but MEC crowds churn: users walk
//! in and out of the cell. The per-user work — compression and
//! minimum cuts — does not depend on who else is present, only the
//! greedy placement does. [`OffloadSession`] exploits that twice: each
//! user's graph is compressed and cut **once** at join time, and under
//! the default [`ReplanMode::Delta`] the converged part placement
//! itself persists across replans — a churn event re-seats only the
//! affected user's parts, and the next
//! [`replan`](OffloadSession::replan) warm-starts the greedy search
//! from the previous equilibrium instead of rebuilding the whole part
//! system and searching from the initial split. When accumulated churn
//! exceeds a configurable drift bound (or with [`ReplanMode::Full`]),
//! the session falls back to the from-scratch path, which is
//! bit-identical to the pre-delta behaviour.

use crate::exec::{duration_sample, ExecCtx};
use crate::frontend::{prepare_users, FrontEnd};
use crate::greedy::{run_greedy_traced, run_greedy_warm, GreedyMode};
use crate::parts::PartSystem;
use crate::strategy::{CutStrategy, StrategyKind};
use crate::{OffloadReport, PipelineError, StageTimings};
use mec_engine::Cluster;
use mec_graph::Graph;
use mec_labelprop::{CompressionConfig, Compressor};
use mec_model::SystemParams;
use mec_obs::{span, FieldValue, TraceSink};
use std::sync::Arc;

/// How [`OffloadSession::replan`] treats the previous placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ReplanMode {
    /// Warm-start from the previously converged placement: only the
    /// churned users' candidates are re-settled before a single rescan
    /// confirms (or restores) equilibrium — `O(churn)` applied moves
    /// in the steady state. Falls back to [`Full`](Self::Full)
    /// behaviour when churn since the last replan exceeds the
    /// session's drift limit (default).
    #[default]
    Delta,
    /// Rebuild the part system and run the greedy search from the
    /// initial split on every call — bit-identical to sessions before
    /// delta replanning existed.
    Full,
}

/// One user's cached pipeline front-end: the compression outcome,
/// per-component cuts, and the wall-clock both took, computed at join
/// time.
#[derive(Debug, Clone)]
struct PreparedUser {
    name: String,
    graph: Arc<Graph>,
    frontend: FrontEnd,
}

/// The placement carried across replans in [`ReplanMode::Delta`].
///
/// Invariant: part-system user slot `i` is `OffloadSession::users[i]`
/// at all times — joins append or replace in place, leaves remove
/// order-preservingly — so delta plans and evaluations come out in the
/// same user order the from-scratch path produces.
struct DeltaState {
    ps: PartSystem,
    /// User slots churned since the last replan (unsorted, may repeat).
    dirty: Vec<usize>,
}

/// A long-lived multi-user offloading session.
///
/// # Example
///
/// ```
/// use copmecs_core::OffloadSession;
/// use mec_model::SystemParams;
/// use mec_netgen::NetgenSpec;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = OffloadSession::new(SystemParams::default());
/// let g = Arc::new(NetgenSpec::new(100, 300).seed(1).generate()?);
/// session.join("alice", Arc::clone(&g))?;
/// session.join("bob", g)?;
/// let two = session.replan()?;
/// session.leave("alice");
/// let one = session.replan()?;
/// assert!(one.evaluation.totals.objective() < two.evaluation.totals.objective());
/// # Ok(())
/// # }
/// ```
pub struct OffloadSession {
    params: SystemParams,
    compressor: Compressor,
    strategy: Box<dyn CutStrategy>,
    greedy_mode: GreedyMode,
    users: Vec<PreparedUser>,
    /// The session-owned execution context: backend, sink, and (on the
    /// serial backend) the cut arena recycled across every admission.
    ctx: ExecCtx,
    replan_mode: ReplanMode,
    /// Fraction of the crowd allowed to churn between replans before a
    /// delta replan discards the warm start and rebuilds from scratch.
    drift_limit: f64,
    /// Churn events (join, rejoin, leave) since the last replan.
    churned: usize,
    /// The persisted converged placement, once a delta replan has run.
    delta: Option<DeltaState>,
}

impl OffloadSession {
    /// A session with default compression, the spectral strategy and
    /// the lazy greedy driver.
    pub fn new(params: SystemParams) -> Self {
        Self::with_config(
            params,
            CompressionConfig::default(),
            StrategyKind::Spectral,
            GreedyMode::Lazy,
        )
    }

    /// A fully configured session.
    pub fn with_config(
        params: SystemParams,
        compression: CompressionConfig,
        strategy: StrategyKind,
        greedy_mode: GreedyMode,
    ) -> Self {
        OffloadSession {
            params,
            compressor: Compressor::new(compression),
            strategy: strategy.build(),
            greedy_mode,
            users: Vec::new(),
            ctx: ExecCtx::serial(),
            replan_mode: ReplanMode::default(),
            drift_limit: 0.25,
            churned: 0,
            delta: None,
        }
    }

    /// Chooses how [`replan`](Self::replan) treats the previous
    /// placement (default: [`ReplanMode::Delta`]). Switching modes
    /// drops any persisted placement, so the next replan starts from
    /// scratch either way.
    pub fn with_replan_mode(mut self, mode: ReplanMode) -> Self {
        self.replan_mode = mode;
        self.delta = None;
        self
    }

    /// Sets the delta-replan drift bound: once more than
    /// `limit × crowd` churn events accumulate between replans, the
    /// warm start is discarded and the placement is rebuilt from
    /// scratch. `0.0` forces a full rebuild after *any* churn (the
    /// exact-parity configuration); the default is `0.25`.
    pub fn with_drift_limit(mut self, limit: f64) -> Self {
        self.drift_limit = limit.max(0.0);
        self
    }

    /// Switches the session's execution context onto `cluster`: every
    /// admission ([`join`](Self::join) and
    /// [`join_many`](Self::join_many)) then fans its front-ends out as
    /// one stage task per user. Results are identical to the serial
    /// backend either way.
    pub fn with_cluster(mut self, cluster: Arc<Cluster>) -> Self {
        self.ctx = self.ctx.into_cluster(cluster);
        self
    }

    /// Replaces the session's whole execution context (backend, sink,
    /// seed) with `ctx`.
    pub fn with_exec_ctx(mut self, ctx: ExecCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Replaces the cut backend with a custom [`CutStrategy`]
    /// implementation (the [`StrategyKind`]-less analogue of
    /// [`with_config`](Self::with_config); also how tests inject
    /// failing strategies).
    pub fn with_strategy(mut self, strategy: Box<dyn CutStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Routes session telemetry to `sink`: `session.join` /
    /// `session.replan` spans, churn events, and what the compression
    /// and greedy stages emit. (The cut strategy keeps its own sink;
    /// use [`with_traced_strategy`](Self::with_traced_strategy) to
    /// route the eigensolver too.)
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.ctx = self.ctx.with_sink(sink);
        self
    }

    /// Like [`with_trace_sink`](Self::with_trace_sink) but also routes
    /// the given [`StrategyKind`]'s internals (the spectral
    /// eigensolver) through the sink.
    pub fn with_traced_strategy(
        mut self,
        strategy: &StrategyKind,
        sink: Arc<dyn TraceSink>,
    ) -> Self {
        self.strategy = strategy.build_with_sink(Arc::clone(&sink));
        self.ctx = self.ctx.with_sink(sink);
        self
    }

    /// Number of users currently in the session.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// `true` if a user with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.users.iter().any(|u| u.name == name)
    }

    /// Admits a user, running their compression and cuts once. A user
    /// with the same name replaces the previous entry (e.g. after an
    /// app update changed the graph).
    ///
    /// The context scope guarantees the `session.join` span,
    /// `session.join_nanos` histogram, and sink flush happen on every
    /// exit — a failed admission is still fully accounted.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cut`] if a compressed component cannot be
    /// bipartitioned; [`PipelineError::Engine`] if the context's
    /// cluster backend failed.
    pub fn join(
        &mut self,
        name: impl Into<String>,
        graph: Arc<Graph>,
    ) -> Result<(), PipelineError> {
        let name = name.into();
        let scope = self.ctx.scope("session.join", "session.join_nanos");
        let frontend = prepare_users(
            &mut self.ctx,
            &self.compressor,
            self.strategy.as_ref(),
            vec![Arc::clone(&graph)],
        )?
        .pop()
        .expect("one front-end per graph");
        self.insert(PreparedUser {
            name,
            graph,
            frontend,
        });
        let sink = self.ctx.sink();
        sink.counter_add("session.joins", 1);
        if sink.enabled() {
            sink.event(
                "session.join",
                &[("users", FieldValue::from(self.users.len()))],
            );
        }
        scope.finish();
        Ok(())
    }

    /// Admits a batch of users at once through the same unified
    /// front-end path as [`join`](Self::join): on the cluster backend
    /// every joining user's front-end — compression plus per-component
    /// cuts — runs as its own stage task; on the serial backend the
    /// batch is walked on the calling thread, recycling the ctx-owned
    /// cut arena. Either way the result is identical to calling
    /// [`join`](Self::join) once per user in batch order: later
    /// duplicates (in the batch or already present) replace earlier
    /// entries.
    ///
    /// On error nothing is admitted: the batch joins all-or-nothing,
    /// the reported error is the first failing user's (in batch
    /// order), and the context scope still finishes the
    /// `session.join_many` span, records `session.join_many_nanos`,
    /// and flushes the sink.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cut`] if a compressed component cannot be
    /// bipartitioned; [`PipelineError::Engine`] if a stage task
    /// panicked or the pool is gone.
    pub fn join_many(
        &mut self,
        users: impl IntoIterator<Item = (String, Arc<Graph>)>,
    ) -> Result<(), PipelineError> {
        let batch: Vec<(String, Arc<Graph>)> = users.into_iter().collect();
        let scope = self
            .ctx
            .scope("session.join_many", "session.join_many_nanos");
        let graphs: Vec<_> = batch.iter().map(|(_, g)| Arc::clone(g)).collect();
        let frontends = prepare_users(
            &mut self.ctx,
            &self.compressor,
            self.strategy.as_ref(),
            graphs,
        )?;
        let joined = batch.len();
        for ((name, graph), frontend) in batch.into_iter().zip(frontends) {
            self.insert(PreparedUser {
                name,
                graph,
                frontend,
            });
        }
        let sink = self.ctx.sink();
        sink.counter_add("session.joins", joined as u64);
        if sink.enabled() {
            sink.event(
                "session.join_many",
                &[
                    ("joined", FieldValue::from(joined)),
                    ("users", FieldValue::from(self.users.len())),
                ],
            );
        }
        scope.finish();
        Ok(())
    }

    /// Inserts or replaces a prepared user (same-name join replaces
    /// the previous workload), keeping any persisted placement
    /// slot-aligned: a rejoin re-seats the slot's parts in place, a
    /// fresh join appends, and either way the slot is marked dirty for
    /// the next warm-started replan.
    fn insert(&mut self, prepared: PreparedUser) {
        self.churned += 1;
        match self.users.iter().position(|u| u.name == prepared.name) {
            Some(i) => {
                if let Some(delta) = self.delta.as_mut() {
                    delta.ps.replace_user(
                        i,
                        &prepared.graph,
                        &prepared.frontend.outcome,
                        &prepared.frontend.cuts,
                    );
                    delta.dirty.push(i);
                }
                self.users[i] = prepared;
            }
            None => {
                if let Some(delta) = self.delta.as_mut() {
                    delta.ps.add_user(
                        &prepared.graph,
                        &prepared.frontend.outcome,
                        &prepared.frontend.cuts,
                    );
                    delta.dirty.push(self.users.len());
                }
                self.users.push(prepared);
            }
        }
    }

    /// Removes the user at slot `i`, shifting later slots down and
    /// keeping any persisted placement (and its dirty set) aligned.
    fn remove_at(&mut self, i: usize) {
        self.users.remove(i);
        self.churned += 1;
        if let Some(delta) = self.delta.as_mut() {
            delta.ps.remove_user(i);
            delta.dirty.retain_mut(|d| {
                if *d == i {
                    return false;
                }
                if *d > i {
                    *d -= 1;
                }
                true
            });
        }
    }

    /// Removes a user; returns `false` when no such user was present.
    ///
    /// Like every other session mutation, a successful leave runs the
    /// full telemetry epilogue (span, `session.leave_nanos` histogram,
    /// flush), so buffered churn records become visible immediately.
    pub fn leave(&mut self, name: &str) -> bool {
        let Some(i) = self.users.iter().position(|u| u.name == name) else {
            return false;
        };
        let scope = self.ctx.scope("session.leave", "session.leave_nanos");
        self.remove_at(i);
        let sink = self.ctx.sink();
        sink.counter_add("session.leaves", 1);
        if sink.enabled() {
            sink.event(
                "session.leave",
                &[("users", FieldValue::from(self.users.len()))],
            );
        }
        scope.finish();
        true
    }

    /// Removes a batch of users under **one** telemetry scope —
    /// a single `session.leave_many` span, one
    /// `session.leave_many_nanos` sample, and one flush for the whole
    /// batch — so mass churn does not pay a per-user telemetry
    /// epilogue. Unknown names are skipped. Returns how many users
    /// actually left; when none did, no scope is opened at all.
    pub fn leave_many<I, S>(&mut self, names: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut slots: Vec<usize> = names
            .into_iter()
            .filter_map(|name| {
                let name = name.as_ref();
                self.users.iter().position(|u| u.name == name)
            })
            .collect();
        // descending removal order keeps the remaining slots valid
        slots.sort_unstable_by(|a, b| b.cmp(a));
        slots.dedup();
        if slots.is_empty() {
            return 0;
        }
        let scope = self
            .ctx
            .scope("session.leave_many", "session.leave_many_nanos");
        for &i in &slots {
            self.remove_at(i);
        }
        let sink = self.ctx.sink();
        sink.counter_add("session.leaves", slots.len() as u64);
        if sink.enabled() {
            sink.event(
                "session.leave_many",
                &[
                    ("left", FieldValue::from(slots.len())),
                    ("users", FieldValue::from(self.users.len())),
                ],
            );
        }
        scope.finish();
        slots.len()
    }

    /// Re-runs the placement for the current crowd using the cached
    /// per-user compression and cuts, and prices the result.
    ///
    /// The report's `timings.compression` / `timings.cutting` are the
    /// *cached* per-user front-end times recorded at join time (summed
    /// over the current crowd), so a session report accounts for the
    /// same three stages a one-shot
    /// [`Offloader::solve`](crate::Offloader::solve) report does;
    /// only `timings.greedy` is spent during the replan itself.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Model`] if the session's system parameters are
    /// invalid.
    pub fn replan(&mut self) -> Result<OffloadReport, PipelineError> {
        // the replan-end-to-end distribution is the ROADMAP's SLO
        // metric: p99 over session.replan_nanos is what a streaming
        // service would alert on — the scope records it (and flushes)
        // on every exit, error returns included
        let scope = self.ctx.scope("session.replan", "session.replan_nanos");
        let report = match self.replan_mode {
            ReplanMode::Full => self.replan_full()?,
            ReplanMode::Delta => self.replan_delta()?,
        };
        let sink = self.ctx.sink();
        sink.counter_add("session.replans", 1);
        scope.finish();
        Ok(report)
    }

    /// The from-scratch path: rebuild the part system for the whole
    /// crowd and run the greedy search from the initial split. This is
    /// exactly the pre-delta replan body, and the delta path's drift
    /// fallback must stay bit-identical to it.
    fn replan_full(&self) -> Result<OffloadReport, PipelineError> {
        let sink = self.ctx.sink().as_ref();
        let mut timings = StageTimings::default();
        let mut parts = PartSystem::new();
        let mut compression_stats = Vec::with_capacity(self.users.len());
        for u in &self.users {
            timings.compression += u.frontend.compression;
            timings.cutting += u.frontend.cutting;
            compression_stats.push(u.frontend.outcome.stats);
            parts.add_user(&u.graph, &u.frontend.outcome, &u.frontend.cuts);
        }
        let s = span(sink, "stage.greedy");
        let greedy = run_greedy_traced(&mut parts, &self.params, self.greedy_mode, sink);
        timings.greedy = s.finish();
        sink.histogram_record("stage.greedy_nanos", duration_sample(timings.greedy));

        let plan = parts.plan();
        // price the plan against the live crowd directly — no Scenario
        // rebuild (cloned names, Arc bumps) in the steady-state path
        let evaluation = mec_model::evaluate_plan_for(
            &self.params,
            self.users.iter().map(|u| u.graph.as_ref()),
            &plan,
        )?;
        Ok(OffloadReport {
            plan,
            evaluation,
            compression: compression_stats,
            greedy,
            timings,
            strategy: self.strategy.name(),
        })
    }

    /// The warm-started path: persist the converged placement across
    /// calls and re-settle only the churned slots, falling back to a
    /// from-scratch rebuild on the first call and whenever accumulated
    /// churn exceeds `drift_limit × crowd`.
    ///
    /// Only the *placement* persists; the greedy objective bookkeeping
    /// is re-derived from it in `O(crowd)` at warm entry, so repeated
    /// delta replans cannot accumulate floating-point drift relative
    /// to the from-scratch path.
    fn replan_delta(&mut self) -> Result<OffloadReport, PipelineError> {
        let crowd = self.users.len();
        let drift_cap = (self.drift_limit * crowd.max(1) as f64).floor() as usize;
        let stale = self.delta.is_none() || self.churned > drift_cap;

        let sink = self.ctx.sink().as_ref();
        let mut timings = StageTimings::default();
        let mut compression_stats = Vec::with_capacity(crowd);
        for u in &self.users {
            timings.compression += u.frontend.compression;
            timings.cutting += u.frontend.cutting;
            compression_stats.push(u.frontend.outcome.stats);
        }

        let greedy;
        if stale {
            sink.counter_add("session.replans_full", 1);
            let mut parts = PartSystem::new();
            for u in &self.users {
                parts.add_user(&u.graph, &u.frontend.outcome, &u.frontend.cuts);
            }
            let s = span(sink, "stage.greedy");
            greedy = run_greedy_traced(&mut parts, &self.params, self.greedy_mode, sink);
            timings.greedy = s.finish();
            self.delta = Some(DeltaState {
                ps: parts,
                dirty: Vec::new(),
            });
        } else {
            sink.counter_add("session.replans_delta", 1);
            let delta = self.delta.as_mut().expect("delta checked above");
            let mut dirty = std::mem::take(&mut delta.dirty);
            dirty.sort_unstable();
            dirty.dedup();
            let s = span(sink, "stage.greedy");
            greedy = run_greedy_warm(&mut delta.ps, &self.params, self.greedy_mode, sink, &dirty);
            timings.greedy = s.finish();
        }
        self.churned = 0;
        sink.histogram_record("stage.greedy_nanos", duration_sample(timings.greedy));

        let delta = self.delta.as_ref().expect("delta set above");
        let plan = delta.ps.plan();
        let evaluation = mec_model::evaluate_plan_for(
            &self.params,
            self.users.iter().map(|u| u.graph.as_ref()),
            &plan,
        )?;
        Ok(OffloadReport {
            plan,
            evaluation,
            compression: compression_stats,
            greedy,
            timings,
            strategy: self.strategy.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Offloader;
    use mec_model::{Scenario, UserWorkload};
    use mec_netgen::NetgenSpec;

    fn graph(seed: u64) -> Arc<Graph> {
        Arc::new(NetgenSpec::new(90, 250).seed(seed).generate().unwrap())
    }

    #[test]
    fn session_matches_one_shot_solver() {
        let g1 = graph(1);
        let g2 = graph(2);
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", Arc::clone(&g1)).unwrap();
        session.join("b", Arc::clone(&g2)).unwrap();
        let via_session = session.replan().unwrap();

        let scenario = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", g1))
            .with_user(UserWorkload::new("b", g2));
        let one_shot = Offloader::new().solve(&scenario).unwrap();
        assert_eq!(via_session.plan, one_shot.plan);
        assert!(
            (via_session.evaluation.totals.objective() - one_shot.evaluation.totals.objective())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn join_and_leave_bookkeeping() {
        let mut session = OffloadSession::new(SystemParams::default());
        assert_eq!(session.user_count(), 0);
        session.join("a", graph(1)).unwrap();
        session.join("b", graph(2)).unwrap();
        assert_eq!(session.user_count(), 2);
        assert!(session.contains("a"));
        assert!(session.leave("a"));
        assert!(!session.leave("a"));
        assert_eq!(session.user_count(), 1);
        assert!(!session.contains("a"));
    }

    #[test]
    fn rejoin_replaces_the_workload() {
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", graph(1)).unwrap();
        let before = session.replan().unwrap();
        // same name, different (larger) app
        session
            .join(
                "a",
                Arc::new(NetgenSpec::new(150, 450).seed(9).generate().unwrap()),
            )
            .unwrap();
        assert_eq!(session.user_count(), 1);
        let after = session.replan().unwrap();
        assert_ne!(before.plan[0].len(), after.plan[0].len());
    }

    #[test]
    fn churn_changes_the_objective_monotonically() {
        let mut session = OffloadSession::new(SystemParams::default());
        let mut last = 0.0;
        for i in 0..4u64 {
            session.join(format!("u{i}"), graph(10 + i)).unwrap();
            let obj = session.replan().unwrap().evaluation.totals.objective();
            assert!(obj > last, "objective must grow as the crowd grows");
            last = obj;
        }
        for i in 0..4u64 {
            assert!(session.leave(&format!("u{i}")));
            let report = session.replan().unwrap();
            assert!(report.evaluation.totals.objective() < last);
        }
        assert_eq!(session.user_count(), 0);
        assert!(session.replan().unwrap().plan.is_empty());
    }

    #[test]
    fn joined_session_reports_front_end_timings() {
        // regression: replan used to report zero compression/cutting
        // time, silently dropping the work done in join
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", graph(5)).unwrap();
        session.join("b", graph(6)).unwrap();
        let report = session.replan().unwrap();
        assert!(
            report.timings.compression > std::time::Duration::ZERO,
            "compression time spent at join must surface in the report"
        );
        assert!(
            report.timings.cutting > std::time::Duration::ZERO,
            "cutting time spent at join must surface in the report"
        );
        // leaving a user drops their cached front-end time too
        session.leave("a");
        let after = session.replan().unwrap();
        assert!(after.timings.compression < report.timings.compression);
    }

    #[test]
    fn join_many_matches_repeated_joins() {
        let batch: Vec<(String, Arc<Graph>)> = (0..4u64)
            .map(|i| (format!("u{i}"), graph(20 + i)))
            .collect();

        let mut serial = OffloadSession::new(SystemParams::default());
        for (name, g) in &batch {
            serial.join(name.clone(), Arc::clone(g)).unwrap();
        }
        let mut batched = OffloadSession::new(SystemParams::default());
        batched.join_many(batch.clone()).unwrap();
        assert_eq!(
            serial.replan().unwrap().plan,
            batched.replan().unwrap().plan
        );

        let cluster = Arc::new(mec_engine::Cluster::new(2).unwrap());
        let mut clustered = OffloadSession::new(SystemParams::default()).with_cluster(cluster);
        clustered.join_many(batch).unwrap();
        assert_eq!(
            serial.replan().unwrap().plan,
            clustered.replan().unwrap().plan
        );
    }

    #[test]
    fn join_many_replaces_duplicates_like_join_does() {
        let small = graph(1);
        let big = Arc::new(NetgenSpec::new(150, 450).seed(9).generate().unwrap());
        let mut session = OffloadSession::new(SystemParams::default());
        session
            .join_many([
                ("a".to_string(), Arc::clone(&small)),
                ("b".to_string(), Arc::clone(&small)),
                // later duplicate in the same batch wins
                ("a".to_string(), Arc::clone(&big)),
            ])
            .unwrap();
        assert_eq!(session.user_count(), 2);
        let report = session.replan().unwrap();
        assert_eq!(report.plan[0].len(), big.node_count());
    }

    #[test]
    fn leave_many_matches_repeated_leaves() {
        let mut batched = OffloadSession::new(SystemParams::default());
        let mut serial = OffloadSession::new(SystemParams::default());
        for i in 0..5u64 {
            batched.join(format!("u{i}"), graph(30 + i)).unwrap();
            serial.join(format!("u{i}"), graph(30 + i)).unwrap();
        }
        // converge both so the batch departure exercises the persisted
        // placement's order-preserving removal
        batched.replan().unwrap();
        serial.replan().unwrap();
        // unknown names and duplicates are skipped, not counted
        assert_eq!(batched.leave_many(["u1", "u3", "u1", "ghost"]), 2);
        assert!(serial.leave("u1"));
        assert!(serial.leave("u3"));
        assert_eq!(batched.user_count(), 3);
        assert_eq!(
            batched.replan().unwrap().plan,
            serial.replan().unwrap().plan
        );
        assert_eq!(batched.leave_many(Vec::<String>::new()), 0);
    }

    #[test]
    fn full_mode_is_identical_to_delta_results() {
        let mut delta = OffloadSession::new(SystemParams::default());
        let mut full =
            OffloadSession::new(SystemParams::default()).with_replan_mode(ReplanMode::Full);
        for i in 0..6u64 {
            delta.join(format!("u{i}"), graph(40 + i)).unwrap();
            full.join(format!("u{i}"), graph(40 + i)).unwrap();
        }
        // first delta replan has no warm state: bit-identical to full
        let d = delta.replan().unwrap();
        let f = full.replan().unwrap();
        assert_eq!(d.plan, f.plan);
        assert_eq!(
            d.evaluation.totals.objective(),
            f.evaluation.totals.objective()
        );
        // a zero drift limit forces the from-scratch fallback after any
        // churn, so the delta session keeps exact parity with full mode
        let mut strict = OffloadSession::new(SystemParams::default()).with_drift_limit(0.0);
        for i in 0..6u64 {
            strict.join(format!("u{i}"), graph(40 + i)).unwrap();
        }
        strict.replan().unwrap();
        strict.leave("u2");
        full.leave("u2");
        assert_eq!(strict.replan().unwrap().plan, full.replan().unwrap().plan);
    }

    #[test]
    fn replan_is_deterministic() {
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", graph(3)).unwrap();
        session.join("b", graph(4)).unwrap();
        let x = session.replan().unwrap();
        let y = session.replan().unwrap();
        assert_eq!(x.plan, y.plan);
    }
}
