//! Dynamic multi-user sessions: join, leave, re-plan.
//!
//! The paper solves a static snapshot, but MEC crowds churn: users walk
//! in and out of the cell. The per-user work — compression and
//! minimum cuts — does not depend on who else is present, only the
//! greedy placement does. [`OffloadSession`] exploits that: each user's
//! graph is compressed and cut **once** at join time; every
//! [`replan`](OffloadSession::replan) rebuilds only the cheap part
//! bookkeeping and re-runs the greedy placement against the current
//! crowd.

use crate::greedy::{run_greedy, GreedyMode};
use crate::parts::PartSystem;
use crate::strategy::{CutStrategy, StrategyKind};
use crate::{OffloadReport, PipelineError, StageTimings};
use mec_graph::{Bipartition, Graph};
use mec_labelprop::{CompressionConfig, CompressionOutcome, Compressor};
use mec_model::{Scenario, SystemParams, UserWorkload};
use std::sync::Arc;
use std::time::Instant;

/// One user's cached pipeline front-end: the compression outcome and
/// per-component cuts, computed at join time.
#[derive(Debug, Clone)]
struct PreparedUser {
    name: String,
    graph: Arc<Graph>,
    outcome: CompressionOutcome,
    cuts: Vec<Bipartition>,
}

/// A long-lived multi-user offloading session.
///
/// # Example
///
/// ```
/// use copmecs_core::OffloadSession;
/// use mec_model::SystemParams;
/// use mec_netgen::NetgenSpec;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = OffloadSession::new(SystemParams::default());
/// let g = Arc::new(NetgenSpec::new(100, 300).seed(1).generate()?);
/// session.join("alice", Arc::clone(&g))?;
/// session.join("bob", g)?;
/// let two = session.replan()?;
/// session.leave("alice");
/// let one = session.replan()?;
/// assert!(one.evaluation.totals.objective() < two.evaluation.totals.objective());
/// # Ok(())
/// # }
/// ```
pub struct OffloadSession {
    params: SystemParams,
    compressor: Compressor,
    strategy: Box<dyn CutStrategy>,
    greedy_mode: GreedyMode,
    users: Vec<PreparedUser>,
}

impl OffloadSession {
    /// A session with default compression, the spectral strategy and
    /// the lazy greedy driver.
    pub fn new(params: SystemParams) -> Self {
        Self::with_config(
            params,
            CompressionConfig::default(),
            StrategyKind::Spectral,
            GreedyMode::Lazy,
        )
    }

    /// A fully configured session.
    pub fn with_config(
        params: SystemParams,
        compression: CompressionConfig,
        strategy: StrategyKind,
        greedy_mode: GreedyMode,
    ) -> Self {
        OffloadSession {
            params,
            compressor: Compressor::new(compression),
            strategy: strategy.build(),
            greedy_mode,
            users: Vec::new(),
        }
    }

    /// Number of users currently in the session.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// `true` if a user with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.users.iter().any(|u| u.name == name)
    }

    /// Admits a user, running their compression and cuts once. A user
    /// with the same name replaces the previous entry (e.g. after an
    /// app update changed the graph).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cut`] if a compressed component cannot be
    /// bipartitioned.
    pub fn join(
        &mut self,
        name: impl Into<String>,
        graph: Arc<Graph>,
    ) -> Result<(), PipelineError> {
        let name = name.into();
        let outcome = self.compressor.compress(&graph);
        let mut cuts = Vec::with_capacity(outcome.components.len());
        for comp in &outcome.components {
            cuts.push(self.strategy.cut(comp.quotient.graph())?);
        }
        let prepared = PreparedUser {
            name: name.clone(),
            graph,
            outcome,
            cuts,
        };
        match self.users.iter_mut().find(|u| u.name == name) {
            Some(slot) => *slot = prepared,
            None => self.users.push(prepared),
        }
        Ok(())
    }

    /// Removes a user; returns `false` when no such user was present.
    pub fn leave(&mut self, name: &str) -> bool {
        let before = self.users.len();
        self.users.retain(|u| u.name != name);
        self.users.len() != before
    }

    /// Re-runs the placement for the current crowd using the cached
    /// per-user compression and cuts, and prices the result.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Model`] if the session's system parameters are
    /// invalid.
    pub fn replan(&self) -> Result<OffloadReport, PipelineError> {
        let mut timings = StageTimings::default();
        let mut parts = PartSystem::new();
        let mut compression_stats = Vec::with_capacity(self.users.len());
        for u in &self.users {
            compression_stats.push(u.outcome.stats);
            parts.add_user(&u.graph, &u.outcome, &u.cuts);
        }
        let t = Instant::now();
        let greedy = run_greedy(&mut parts, &self.params, self.greedy_mode);
        timings.greedy = t.elapsed();

        let scenario = Scenario::new(self.params).with_users(
            self.users
                .iter()
                .map(|u| UserWorkload::new(u.name.clone(), Arc::clone(&u.graph))),
        );
        let plan = parts.plan();
        let evaluation = scenario.evaluate(&plan)?;
        Ok(OffloadReport {
            plan,
            evaluation,
            compression: compression_stats,
            greedy,
            timings,
            strategy: self.strategy.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Offloader;
    use mec_netgen::NetgenSpec;

    fn graph(seed: u64) -> Arc<Graph> {
        Arc::new(NetgenSpec::new(90, 250).seed(seed).generate().unwrap())
    }

    #[test]
    fn session_matches_one_shot_solver() {
        let g1 = graph(1);
        let g2 = graph(2);
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", Arc::clone(&g1)).unwrap();
        session.join("b", Arc::clone(&g2)).unwrap();
        let via_session = session.replan().unwrap();

        let scenario = Scenario::new(SystemParams::default())
            .with_user(UserWorkload::new("a", g1))
            .with_user(UserWorkload::new("b", g2));
        let one_shot = Offloader::new().solve(&scenario).unwrap();
        assert_eq!(via_session.plan, one_shot.plan);
        assert!(
            (via_session.evaluation.totals.objective()
                - one_shot.evaluation.totals.objective())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn join_and_leave_bookkeeping() {
        let mut session = OffloadSession::new(SystemParams::default());
        assert_eq!(session.user_count(), 0);
        session.join("a", graph(1)).unwrap();
        session.join("b", graph(2)).unwrap();
        assert_eq!(session.user_count(), 2);
        assert!(session.contains("a"));
        assert!(session.leave("a"));
        assert!(!session.leave("a"));
        assert_eq!(session.user_count(), 1);
        assert!(!session.contains("a"));
    }

    #[test]
    fn rejoin_replaces_the_workload() {
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", graph(1)).unwrap();
        let before = session.replan().unwrap();
        // same name, different (larger) app
        session
            .join("a", Arc::new(NetgenSpec::new(150, 450).seed(9).generate().unwrap()))
            .unwrap();
        assert_eq!(session.user_count(), 1);
        let after = session.replan().unwrap();
        assert_ne!(before.plan[0].len(), after.plan[0].len());
    }

    #[test]
    fn churn_changes_the_objective_monotonically() {
        let mut session = OffloadSession::new(SystemParams::default());
        let mut last = 0.0;
        for i in 0..4u64 {
            session.join(format!("u{i}"), graph(10 + i)).unwrap();
            let obj = session.replan().unwrap().evaluation.totals.objective();
            assert!(obj > last, "objective must grow as the crowd grows");
            last = obj;
        }
        for i in 0..4u64 {
            assert!(session.leave(&format!("u{i}")));
            let report = session.replan().unwrap();
            assert!(report.evaluation.totals.objective() < last);
        }
        assert_eq!(session.user_count(), 0);
        assert!(session.replan().unwrap().plan.is_empty());
    }

    #[test]
    fn replan_is_deterministic() {
        let mut session = OffloadSession::new(SystemParams::default());
        session.join("a", graph(3)).unwrap();
        session.join("b", graph(4)).unwrap();
        let x = session.replan().unwrap();
        let y = session.replan().unwrap();
        assert_eq!(x.plan, y.plan);
    }
}
