//! The per-user pipeline front-end: compression (Algorithm 1) plus the
//! per-component minimum cuts — the unit of work the cluster solve
//! path distributes, one stage task per user.
//!
//! The paper's scalability argument (§IV) runs one process per
//! sub-graph; here the same decomposition is expressed as an engine
//! *stage*: every user's front-end is an independent task, results are
//! reassembled in user order, and the greedy stage then sees exactly
//! what the serial loop would have produced.

use crate::exec::{duration_sample, ExecBackend, ExecCtx};
use crate::strategy::CutStrategy;
use crate::PipelineError;
use mec_engine::{Cluster, StageError};
use mec_graph::{Bipartition, Graph};
use mec_labelprop::{CompressionOutcome, Compressor};
use mec_obs::{span, TraceSink};
use mec_spectral::CutScratch;
use std::sync::Arc;
use std::time::Duration;

/// One user's prepared front-end: everything
/// [`PartSystem::add_user`](crate::PartSystem::add_user) needs, plus
/// the wall-clock time spent producing it.
#[derive(Debug, Clone)]
pub(crate) struct FrontEnd {
    /// The compression outcome (components, stats, pinned nodes).
    pub outcome: CompressionOutcome,
    /// One cut per compressed component, in component order.
    pub cuts: Vec<Bipartition>,
    /// Time spent compressing this user's graph.
    pub compression: Duration,
    /// Time spent cutting this user's compressed components.
    pub cutting: Duration,
}

/// Prepares every graph's front-end under `ctx` — the single entry
/// point both the one-shot solver and the session paths call.
///
/// Dispatch is on the context backend: serial walks the batch on the
/// calling thread threading the ctx-owned [`CutScratch`] arena through
/// every cut, cluster fans out one stage task per graph
/// ([`prepare_users_on`]). Both produce bit-identical front-ends in
/// input order.
pub(crate) fn prepare_users(
    ctx: &mut ExecCtx,
    compressor: &Compressor,
    strategy: &dyn CutStrategy,
    graphs: Vec<Arc<Graph>>,
) -> Result<Vec<FrontEnd>, PipelineError> {
    let (backend, sink) = ctx.backend_and_sink();
    match backend {
        ExecBackend::Serial { scratch } => graphs
            .iter()
            .map(|g| prepare_user_reusing(compressor, strategy, sink.as_ref(), g, scratch))
            .collect(),
        ExecBackend::Cluster(cluster) => {
            prepare_users_on(cluster, compressor, strategy, sink, graphs)
        }
    }
}

/// Prepares one graph's front-end with a caller-owned [`CutScratch`]:
/// every per-component cut goes through
/// [`CutStrategy::cut_reusing`], so spectral backends recycle their
/// CSR snapshot, Krylov basis, and sweep buffers across components —
/// and, when the caller threads the same arena across users (the
/// serial [`prepare_users`] path), across the whole batch. Plans are
/// identical to a scratch-free cut by the `cut_reusing` contract.
pub(crate) fn prepare_user_reusing(
    compressor: &Compressor,
    strategy: &dyn CutStrategy,
    sink: &dyn TraceSink,
    graph: &Graph,
    scratch: &mut CutScratch,
) -> Result<FrontEnd, PipelineError> {
    let s = span(sink, "stage.compression");
    let outcome = compressor.compress_traced(graph, sink);
    let compression = s.finish();
    sink.histogram_record("stage.compression_nanos", duration_sample(compression));

    let s = span(sink, "stage.cutting");
    let mut cuts = Vec::with_capacity(outcome.components.len());
    for comp in &outcome.components {
        cuts.push(strategy.cut_reusing(comp.quotient.graph(), scratch)?);
    }
    let cutting = s.finish();
    sink.histogram_record("stage.cutting_nanos", duration_sample(cutting));

    Ok(FrontEnd {
        outcome,
        cuts,
        compression,
        cutting,
    })
}

/// Fans [`prepare_user_reusing`] out over `cluster` as one stage task
/// per graph (each task with its own arena), returning the front-ends
/// in input order.
///
/// Each task clones its own strategy instance
/// ([`CutStrategy::boxed_clone`]), so stateful backends never share
/// mutable state across workers; a task's `PipelineError` is
/// propagated (lowest task index first), and a panicking strategy
/// surfaces as [`PipelineError::Engine`] rather than aborting the
/// process.
pub(crate) fn prepare_users_on(
    cluster: &Cluster,
    compressor: &Compressor,
    strategy: &dyn CutStrategy,
    sink: &Arc<dyn TraceSink>,
    graphs: Vec<Arc<Graph>>,
) -> Result<Vec<FrontEnd>, PipelineError> {
    let compressor = compressor.clone();
    let master = strategy.boxed_clone();
    let sink = Arc::clone(sink);
    cluster
        .try_run_stage(graphs, move |_, graph| {
            let strategy = master.boxed_clone();
            // one arena per task: recycled across every component of
            // this user's graph (tasks run concurrently, so arenas are
            // per-task rather than shared)
            let mut scratch = CutScratch::new();
            prepare_user_reusing(
                &compressor,
                strategy.as_ref(),
                sink.as_ref(),
                &graph,
                &mut scratch,
            )
        })
        .map_err(|e| match e {
            StageError::Task { error, .. } => error,
            StageError::Engine(e) => PipelineError::Engine(e),
        })
}
