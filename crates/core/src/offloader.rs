//! The end-to-end pipeline driver.

use crate::exec::{duration_sample, ExecCtx};
use crate::frontend::{prepare_users, FrontEnd};
use crate::greedy::{run_greedy_traced, GreedyMode, GreedyOutcome};
use crate::parts::PartSystem;
use crate::strategy::{CutStrategy, StrategyKind};
use crate::PipelineError;
use mec_engine::Cluster;
use mec_graph::Bipartition;
use mec_labelprop::{CompressionConfig, CompressionStats, Compressor};
use mec_model::{Evaluation, Scenario};
use mec_obs::{span, TraceSink};
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock time spent in each pipeline stage — the quantity Fig. 9
/// plots against graph size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Graph compression (Algorithm 1).
    pub compression: Duration,
    /// Minimum-cut searches over all compressed components.
    pub cutting: Duration,
    /// Greedy scheme generation (Algorithm 2).
    pub greedy: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.compression + self.cutting + self.greedy
    }
}

/// Everything the pipeline produces for one scenario.
#[derive(Debug, Clone)]
pub struct OffloadReport {
    /// One partition per user (pinned functions always local).
    pub plan: Vec<Bipartition>,
    /// The plan priced by the MEC model.
    pub evaluation: Evaluation,
    /// Compression statistics per user (Table I's columns).
    pub compression: Vec<CompressionStats>,
    /// Statistics from the greedy stage.
    pub greedy: GreedyOutcome,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Name of the cut strategy that produced the plan.
    pub strategy: &'static str,
}

impl OffloadReport {
    /// Total functions offloaded across all users.
    pub fn offloaded_count(&self) -> usize {
        self.plan
            .iter()
            .map(|p| p.count_on(mec_graph::Side::Remote))
            .sum()
    }

    /// Renders a human-readable multi-line summary (used by the
    /// examples and handy in logs).
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = &self.evaluation.totals;
        let _ = writeln!(out, "strategy: {}", self.strategy);
        let _ = writeln!(
            out,
            "objective E+T = {:.3}  (E = {:.3}, T = {:.3})",
            t.objective(),
            t.energy,
            t.time
        );
        let _ = writeln!(
            out,
            "energy: local {:.3} + transmission {:.3}",
            t.local_energy, t.tx_energy
        );
        let _ = writeln!(
            out,
            "time:   local {:.3} + server {:.3} + transmission {:.3}",
            t.local_time, t.remote_time, t.tx_time
        );
        let total_nodes: usize = self.plan.iter().map(mec_graph::Bipartition::len).sum();
        let _ = writeln!(
            out,
            "placement: {} of {} functions offloaded across {} users",
            self.offloaded_count(),
            total_nodes,
            self.plan.len()
        );
        let compressed: usize = self.compression.iter().map(|c| c.compressed_nodes).sum();
        let offloadable: usize = self.compression.iter().map(|c| c.offloadable_nodes).sum();
        let _ = writeln!(
            out,
            "compression: {offloadable} offloadable functions -> {compressed} super-nodes"
        );
        let _ = writeln!(
            out,
            "greedy: {} moves, {} evaluations, {:.3} -> {:.3}",
            self.greedy.moves,
            self.greedy.evaluations,
            self.greedy.initial_objective,
            self.greedy.final_objective
        );
        let _ = write!(
            out,
            "timings: compression {:.1} ms, cuts {:.1} ms, greedy {:.1} ms",
            self.timings.compression.as_secs_f64() * 1e3,
            self.timings.cutting.as_secs_f64() * 1e3,
            self.timings.greedy.as_secs_f64() * 1e3
        );
        out
    }
}

/// Configures and builds an [`Offloader`].
#[derive(Default)]
pub struct OffloaderBuilder {
    compression: CompressionConfig,
    strategy: StrategyKind,
    greedy_mode: GreedyMode,
    sink: Option<Arc<dyn TraceSink>>,
    cluster: Option<Arc<Cluster>>,
    seed: u64,
}

impl OffloaderBuilder {
    /// Sets the compression configuration (Algorithm 1 knobs).
    pub fn compression(mut self, config: CompressionConfig) -> Self {
        self.compression = config;
        self
    }

    /// Selects one of the built-in cut strategies.
    pub fn strategy(mut self, kind: StrategyKind) -> Self {
        self.strategy = kind;
        self
    }

    /// Selects the greedy driver (defaults to [`GreedyMode::Lazy`]).
    pub fn greedy_mode(mut self, mode: GreedyMode) -> Self {
        self.greedy_mode = mode;
        self
    }

    /// Routes all pipeline telemetry — stage spans, label-propagation
    /// rounds, eigensolver counters, the greedy objective trajectory —
    /// to `sink` (defaults to the no-op [`mec_obs::NullSink`]).
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Distributes the per-user front-end (compression + cuts) over
    /// `cluster`: [`solve`](Offloader::solve) then runs one stage task
    /// per user instead of a serial loop. Plans are bit-identical to
    /// the serial path at every worker count.
    pub fn cluster(mut self, cluster: Arc<Cluster>) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the RNG seed carried by the contexts this offloader builds
    /// ([`Offloader::exec_ctx`]); see [`ExecCtx::with_seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the offloader.
    pub fn build(self) -> Offloader {
        let sink = self.sink.unwrap_or_else(mec_obs::null_sink);
        Offloader {
            compressor: Compressor::new(self.compression),
            strategy: self.strategy.build_with_sink(Arc::clone(&sink)),
            greedy_mode: self.greedy_mode,
            sink,
            cluster: self.cluster,
            seed: self.seed,
        }
    }

    /// Builds with a custom cut backend instead of a
    /// [`StrategyKind`].
    pub fn build_with_strategy(self, strategy: Box<dyn CutStrategy>) -> Offloader {
        Offloader {
            compressor: Compressor::new(self.compression),
            strategy,
            greedy_mode: self.greedy_mode,
            sink: self.sink.unwrap_or_else(mec_obs::null_sink),
            cluster: self.cluster,
            seed: self.seed,
        }
    }
}

/// The paper's offloading solver: compression → minimum cuts → greedy
/// scheme generation.
pub struct Offloader {
    compressor: Compressor,
    strategy: Box<dyn CutStrategy>,
    greedy_mode: GreedyMode,
    sink: Arc<dyn TraceSink>,
    cluster: Option<Arc<Cluster>>,
    seed: u64,
}

impl Offloader {
    /// Starts building an offloader.
    pub fn builder() -> OffloaderBuilder {
        OffloaderBuilder::default()
    }

    /// An offloader with all defaults (spectral strategy, default
    /// compression, lazy greedy).
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// The active cut strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Runs the scenario through all three of the paper's strategies
    /// and returns the reports in `[spectral, max-flow, KL]` order —
    /// the comparison behind the paper's Figs. 3–8, as one call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve); the first failing
    /// strategy aborts the comparison.
    pub fn compare_strategies(scenario: &Scenario) -> Result<Vec<OffloadReport>, PipelineError> {
        [
            StrategyKind::Spectral,
            StrategyKind::MaxFlow,
            StrategyKind::KernighanLin,
        ]
        .into_iter()
        .map(|kind| Offloader::builder().strategy(kind).build().solve(scenario))
        .collect()
    }

    /// Convenience wrapper: solves a single-user scenario built from
    /// `graph` with default system parameters and returns the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve).
    pub fn solve_single(&self, graph: &mec_graph::Graph) -> Result<OffloadReport, PipelineError> {
        let scenario = Scenario::new(mec_model::SystemParams::default())
            .with_user(mec_model::UserWorkload::new("user", graph.clone()));
        self.solve(&scenario)
    }

    /// The execution context this offloader's configuration implies: a
    /// cluster backend when one was set via
    /// [`OffloaderBuilder::cluster`] (serial otherwise), the builder's
    /// trace sink, and its seed. Hold one across repeated
    /// [`solve_with`](Self::solve_with) calls to reuse the serial
    /// scratch arena between solves.
    pub fn exec_ctx(&self) -> ExecCtx {
        let mut ctx = ExecCtx::serial()
            .with_sink(Arc::clone(&self.sink))
            .with_seed(self.seed);
        if let Some(cluster) = &self.cluster {
            ctx = ctx.into_cluster(Arc::clone(cluster));
        }
        ctx
    }

    /// Solves the offloading problem for every user of `scenario`
    /// jointly (the greedy stage sees the shared server).
    ///
    /// Builds a fresh context from the offloader's configuration
    /// ([`exec_ctx`](Self::exec_ctx)) and runs
    /// [`solve_with`](Self::solve_with): a cluster configured via
    /// [`OffloaderBuilder::cluster`] fans the per-user front-end out as
    /// one stage task per user, otherwise users are walked serially.
    /// Both backends produce bit-identical plans.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cut`] if a compressed component cannot be
    /// bipartitioned; [`PipelineError::Engine`] if a distributed stage
    /// failed; [`PipelineError::Model`] only on internal invariant
    /// violations.
    pub fn solve(&self, scenario: &Scenario) -> Result<OffloadReport, PipelineError> {
        self.solve_with(&mut self.exec_ctx(), scenario)
    }

    /// [`solve`](Self::solve) under a caller-owned [`ExecCtx`] — the
    /// single implementation every solve entry point dispatches
    /// through. The context decides where the per-user front-end runs
    /// (serial with the ctx-owned cut arena, or one cluster stage task
    /// per user, reassembled in user order before the inherently joint
    /// greedy stage) and where telemetry goes; the RAII context scope
    /// finishes the `pipeline.solve` span, records
    /// `pipeline.solve_nanos`, and flushes the sink on *every* exit,
    /// including error returns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        ctx: &mut ExecCtx,
        scenario: &Scenario,
    ) -> Result<OffloadReport, PipelineError> {
        let scope = ctx.scope("pipeline.solve", "pipeline.solve_nanos");
        let graphs: Vec<_> = scenario.users().iter().map(|u| u.graph_arc()).collect();
        let prepared = prepare_users(ctx, &self.compressor, self.strategy.as_ref(), graphs)?;
        let report = self.assemble(scenario, prepared, ctx.sink().as_ref());
        scope.finish();
        report
    }

    /// [`solve_with`](Self::solve_with) on a one-off cluster context.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve).
    #[deprecated(
        since = "0.9.0",
        note = "use solve_with(&mut ExecCtx::cluster(...), scenario) — or configure the \
                cluster once via OffloaderBuilder::cluster and call solve"
    )]
    pub fn solve_on(
        &self,
        cluster: &Arc<Cluster>,
        scenario: &Scenario,
    ) -> Result<OffloadReport, PipelineError> {
        let mut ctx = self.exec_ctx().into_cluster(Arc::clone(cluster));
        self.solve_with(&mut ctx, scenario)
    }

    /// The joint back half of the pipeline: registers every prepared
    /// front-end in user order and runs the greedy stage over the
    /// shared server. Telemetry goes to the execution context's sink.
    fn assemble(
        &self,
        scenario: &Scenario,
        prepared: Vec<FrontEnd>,
        sink: &dyn TraceSink,
    ) -> Result<OffloadReport, PipelineError> {
        let mut timings = StageTimings::default();
        let mut parts = PartSystem::new();
        let mut compression_stats = Vec::with_capacity(scenario.user_count());
        for (user, fe) in scenario.users().iter().zip(&prepared) {
            timings.compression += fe.compression;
            timings.cutting += fe.cutting;
            compression_stats.push(fe.outcome.stats);
            parts.add_user(user.graph(), &fe.outcome, &fe.cuts);
        }

        let s = span(sink, "stage.greedy");
        let greedy = run_greedy_traced(&mut parts, scenario.params(), self.greedy_mode, sink);
        let greedy_elapsed = s.finish();
        sink.histogram_record("stage.greedy_nanos", duration_sample(greedy_elapsed));
        timings.greedy += greedy_elapsed;

        let plan = parts.plan();
        let evaluation = scenario.evaluate(&plan)?;
        Ok(OffloadReport {
            plan,
            evaluation,
            compression: compression_stats,
            greedy,
            timings,
            strategy: self.strategy.name(),
        })
    }
}

impl Default for Offloader {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::Side;
    use mec_model::{SystemParams, UserWorkload};
    use mec_netgen::NetgenSpec;

    fn scenario(users: usize, seed: u64) -> Scenario {
        let mut s = Scenario::new(SystemParams::default());
        for i in 0..users {
            let g = NetgenSpec::new(80, 220)
                .seed(seed + i as u64)
                .generate()
                .unwrap();
            s = s.with_user(UserWorkload::new(format!("u{i}"), g));
        }
        s
    }

    #[test]
    fn produces_valid_plans_for_all_strategies() {
        let s = scenario(2, 1);
        for kind in [
            StrategyKind::Spectral,
            StrategyKind::MaxFlow,
            StrategyKind::KernighanLin,
        ] {
            let report = Offloader::builder()
                .strategy(kind)
                .build()
                .solve(&s)
                .unwrap();
            assert_eq!(report.plan.len(), 2);
            assert_eq!(s.validate_plan(&report.plan), Ok(()));
            assert!(report.evaluation.totals.objective() > 0.0);
        }
    }

    #[test]
    fn never_worse_than_all_local() {
        let s = scenario(3, 5);
        let report = Offloader::new().solve(&s).unwrap();
        let all_local: Vec<_> = s.users().iter().map(|u| u.all_local_plan()).collect();
        let baseline = s.evaluate(&all_local).unwrap();
        assert!(
            report.evaluation.totals.objective() <= baseline.totals.objective() + 1e-9,
            "pipeline {} vs all-local {}",
            report.evaluation.totals.objective(),
            baseline.totals.objective()
        );
    }

    #[test]
    fn greedy_objective_matches_model_evaluation() {
        let s = scenario(2, 9);
        let report = Offloader::new().solve(&s).unwrap();
        assert!(
            (report.greedy.final_objective - report.evaluation.totals.objective()).abs() < 1e-6
        );
    }

    #[test]
    fn pinned_functions_stay_local() {
        let s = scenario(1, 3);
        let report = Offloader::new().solve(&s).unwrap();
        let g = s.users()[0].graph();
        for n in g.node_ids() {
            if !g.is_offloadable(n) {
                assert_eq!(report.plan[0].side(n), Side::Local);
            }
        }
    }

    #[test]
    fn compression_stats_reported_per_user() {
        let s = scenario(3, 7);
        let report = Offloader::new().solve(&s).unwrap();
        assert_eq!(report.compression.len(), 3);
        for st in &report.compression {
            assert_eq!(st.original_nodes, 80);
            assert!(st.compressed_nodes <= st.offloadable_nodes);
        }
    }

    #[test]
    fn timings_are_recorded() {
        let s = scenario(1, 2);
        let report = Offloader::new().solve(&s).unwrap();
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn deterministic_end_to_end() {
        let s = scenario(2, 11);
        let a = Offloader::new().solve(&s).unwrap();
        let b = Offloader::new().solve(&s).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(
            a.evaluation.totals.objective().to_bits(),
            b.evaluation.totals.objective().to_bits()
        );
    }

    #[test]
    fn empty_scenario_is_fine() {
        let s = Scenario::new(SystemParams::default());
        let report = Offloader::new().solve(&s).unwrap();
        assert!(report.plan.is_empty());
        assert_eq!(report.greedy.moves, 0);
    }

    #[test]
    fn compare_strategies_returns_all_three() {
        let s = scenario(1, 8);
        let reports = Offloader::compare_strategies(&s).unwrap();
        let names: Vec<_> = reports.iter().map(|r| r.strategy).collect();
        assert_eq!(names, vec!["spectral", "max-flow-min-cut", "kernighan-lin"]);
        for r in &reports {
            assert_eq!(s.validate_plan(&r.plan), Ok(()));
        }
    }

    #[test]
    fn summary_renders_all_sections() {
        let s = scenario(2, 4);
        let report = Offloader::new().solve(&s).unwrap();
        let summary = report.render_summary();
        for needle in [
            "strategy:",
            "objective",
            "placement:",
            "compression:",
            "greedy:",
            "timings:",
        ] {
            assert!(summary.contains(needle), "missing {needle} in summary");
        }
    }

    #[test]
    fn solve_single_matches_manual_scenario() {
        let g = NetgenSpec::new(80, 220).seed(6).generate().unwrap();
        let report = Offloader::new().solve_single(&g).unwrap();
        let manual = Offloader::new()
            .solve(&Scenario::new(SystemParams::default()).with_user(UserWorkload::new("user", g)))
            .unwrap();
        assert_eq!(report.plan, manual.plan);
    }

    #[test]
    fn cluster_solve_matches_serial_bit_for_bit() {
        let s = scenario(4, 21);
        let serial = Offloader::new().solve(&s).unwrap();
        for workers in [1, 2, 8] {
            let cluster = Arc::new(Cluster::new(workers).unwrap());
            let mut ctx = ExecCtx::cluster(cluster);
            let parallel = Offloader::new().solve_with(&mut ctx, &s).unwrap();
            assert_eq!(serial.plan, parallel.plan, "workers={workers}");
            assert_eq!(
                serial.evaluation.totals.objective().to_bits(),
                parallel.evaluation.totals.objective().to_bits(),
                "workers={workers}"
            );
            assert_eq!(serial.compression, parallel.compression);
        }
    }

    #[test]
    fn builder_cluster_knob_routes_solve_through_the_stage_path() {
        let s = scenario(3, 13);
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let clustered = Offloader::builder()
            .cluster(Arc::clone(&cluster))
            .build()
            .solve(&s)
            .unwrap();
        let serial = Offloader::new().solve(&s).unwrap();
        assert_eq!(clustered.plan, serial.plan);
        // the stage path actually ran on the cluster (unless the
        // environment forces every context onto the serial backend)
        if !crate::exec::force_serial() {
            assert!(cluster.metrics().tasks >= 3);
        }
    }

    #[test]
    fn cluster_solve_records_front_end_timings() {
        let s = scenario(2, 17);
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let mut ctx = ExecCtx::cluster(cluster);
        let report = Offloader::new().solve_with(&mut ctx, &s).unwrap();
        assert!(report.timings.compression > Duration::ZERO);
        assert!(report.timings.cutting > Duration::ZERO);
    }

    #[test]
    fn cluster_solve_empty_scenario_is_fine() {
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let s = Scenario::new(SystemParams::default());
        let mut ctx = ExecCtx::cluster(cluster);
        let report = Offloader::new().solve_with(&mut ctx, &s).unwrap();
        assert!(report.plan.is_empty());
    }

    #[test]
    fn reused_ctx_solves_match_fresh_ctx_solves() {
        // one context across repeated solves: the serial arena is
        // recycled batch to batch without changing any plan
        let s = scenario(2, 29);
        let o = Offloader::new();
        let mut ctx = o.exec_ctx();
        let first = o.solve_with(&mut ctx, &s).unwrap();
        let second = o.solve_with(&mut ctx, &s).unwrap();
        let fresh = o.solve(&s).unwrap();
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.plan, fresh.plan);
    }

    #[test]
    fn strategy_name_is_surfaced() {
        let o = Offloader::builder().strategy(StrategyKind::MaxFlow).build();
        assert_eq!(o.strategy_name(), "max-flow-min-cut");
        let s = scenario(1, 1);
        assert_eq!(o.solve(&s).unwrap().strategy, "max-flow-min-cut");
    }
}
