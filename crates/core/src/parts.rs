//! The part system: what Algorithm 2's greedy loop moves around.
//!
//! After compression and per-component minimum cuts, each user's
//! application is a collection of *parts*: the pinned (always-local)
//! functions, plus one or two node sets per connected component — the
//! two halves of that component's cut. The greedy stage assigns each
//! part to the device or the server; this module holds the bookkeeping
//! that makes a part move priceable in `O(1)`.

use mec_graph::{Bipartition, Graph, NodeId, Side};
use mec_labelprop::CompressionOutcome;

/// One movable part: a set of functions of one user that the cut stage
/// decided must stay together.
#[derive(Debug, Clone)]
pub struct Part {
    /// Owning user (scenario index).
    pub user: usize,
    /// Component record this part belongs to.
    pub component: usize,
    /// Nodes of the user's original graph in this part.
    pub nodes: Vec<NodeId>,
    /// Total computation weight of the part.
    pub work: f64,
    /// Communication weight to the user's pinned (always-local) nodes.
    pub pinned_cut: f64,
    /// Number of edges to pinned nodes.
    pub pinned_crossings: usize,
    /// Current assignment. Algorithm 2 starts every part remote.
    pub side: Side,
}

/// One connected component after compression: its one or two parts and
/// the communication between them.
#[derive(Debug, Clone)]
pub struct ComponentRec {
    /// Owning user.
    pub user: usize,
    /// First part index.
    pub part1: usize,
    /// Second part index (absent when the cut was trivial).
    pub part2: Option<usize>,
    /// Communication weight between the two parts (0 when single).
    pub cross_weight: f64,
    /// Number of edges between the two parts.
    pub cross_count: usize,
}

/// All parts of all users, with the coupling structure needed to price
/// moves incrementally.
#[derive(Debug, Clone, Default)]
pub struct PartSystem {
    parts: Vec<Part>,
    components: Vec<ComponentRec>,
    /// Per user: total pinned (always-local) computation weight.
    pinned_work: Vec<f64>,
    /// Per user: node count of the original graph (to emit plans).
    node_counts: Vec<usize>,
    /// Per user: indices of their parts.
    user_parts: Vec<Vec<usize>>,
}

impl PartSystem {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one user: their original graph, its compression
    /// outcome, and one quotient-graph cut per compressed component
    /// (in the same order as `compression.components`).
    ///
    /// Every part starts on [`Side::Remote`], matching Algorithm 2's
    /// initial `V_2`.
    ///
    /// # Panics
    ///
    /// Panics if `quotient_cuts` does not align with the compression's
    /// component list.
    pub fn add_user(
        &mut self,
        graph: &Graph,
        compression: &CompressionOutcome,
        quotient_cuts: &[Bipartition],
    ) -> usize {
        assert_eq!(
            quotient_cuts.len(),
            compression.components.len(),
            "one quotient cut per compressed component"
        );
        let user = self.pinned_work.len();
        self.node_counts.push(graph.node_count());
        self.user_parts.push(Vec::new());
        self.pinned_work.push(
            compression
                .pinned
                .iter()
                .map(|&n| graph.node_weight(n))
                .sum(),
        );

        // map: original node -> part index (offloadable nodes only)
        const NO_PART: usize = usize::MAX;
        let mut part_of = vec![NO_PART; graph.node_count()];

        for (comp, qcut) in compression.components.iter().zip(quotient_cuts) {
            let full = comp.quotient.expand(qcut);
            // split subgraph-local nodes by side, then map to original ids
            let mut side_nodes: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
            for local in comp.subgraph.graph().node_ids() {
                let bucket = match full.side(local) {
                    Side::Local => 0,
                    Side::Remote => 1,
                };
                side_nodes[bucket].push(comp.subgraph.parent_of(local));
            }
            let comp_idx = self.components.len();
            let mut part_ids = Vec::new();
            for nodes in side_nodes.into_iter().filter(|ns| !ns.is_empty()) {
                let work = nodes.iter().map(|&n| graph.node_weight(n)).sum();
                let part_idx = self.parts.len();
                for &n in &nodes {
                    part_of[n.index()] = part_idx;
                }
                self.parts.push(Part {
                    user,
                    component: comp_idx,
                    nodes,
                    work,
                    pinned_cut: 0.0,
                    pinned_crossings: 0,
                    side: Side::Remote,
                });
                self.user_parts[user].push(part_idx);
                part_ids.push(part_idx);
            }
            debug_assert!(!part_ids.is_empty(), "a component has at least one part");
            self.components.push(ComponentRec {
                user,
                part1: part_ids[0],
                part2: part_ids.get(1).copied(),
                cross_weight: 0.0,
                cross_count: 0,
            });
        }

        // classify every edge of the original graph
        for e in graph.edges() {
            let pa = part_of[e.source.index()];
            let pb = part_of[e.target.index()];
            match (pa, pb) {
                (NO_PART, NO_PART) => {} // pinned-pinned: always free
                (NO_PART, p) | (p, NO_PART) => {
                    self.parts[p].pinned_cut += e.weight;
                    self.parts[p].pinned_crossings += 1;
                }
                (p, q) if p == q => {} // internal to a part
                (p, q) => {
                    debug_assert_eq!(
                        self.parts[p].component, self.parts[q].component,
                        "cross-part edges only exist between siblings"
                    );
                    let c = self.parts[p].component;
                    self.components[c].cross_weight += e.weight;
                    self.components[c].cross_count += 1;
                }
            }
        }

        // initial placement (paper §III-B): the cut splits each
        // component so that "one part executes locally, and another
        // part executes remotely". The device side is the half more
        // tightly coupled to the pinned functions (ties: the lighter
        // half, then the lower index). Single-part components start
        // remote — Algorithm 2's greedy brings them home if that pays.
        let first_comp = self.components.len() - quotient_cuts.len();
        for comp in &self.components[first_comp..] {
            let Some(p2) = comp.part2 else { continue };
            let p1 = comp.part1;
            let (a, b) = (&self.parts[p1], &self.parts[p2]);
            let local = match a
                .pinned_cut
                .partial_cmp(&b.pinned_cut)
                .expect("weights are finite")
            {
                std::cmp::Ordering::Greater => p1,
                std::cmp::Ordering::Less => p2,
                std::cmp::Ordering::Equal => {
                    if a.work <= b.work {
                        p1
                    } else {
                        p2
                    }
                }
            };
            self.parts[local].side = Side::Local;
        }
        user
    }

    /// Removes user `u`, preserving the order of all other users: user
    /// `u + 1` becomes user `u`, and so on. Part sides of the remaining
    /// users are untouched, so a converged placement stays converged
    /// wherever the departure did not change prices.
    ///
    /// Cost is `O(parts + components)` — one index-rebasing pass over
    /// the records after the drained ranges — with no per-node work,
    /// which is what makes session-level churn cheap: the expensive
    /// per-node classification of [`add_user`](Self::add_user) runs
    /// only for arriving users.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn remove_user(&mut self, u: usize) {
        assert!(u < self.user_count(), "user {u} out of bounds");
        let p_n = self.user_parts[u].len();
        let (p_lo, c_lo, c_n) = if p_n > 0 {
            // a user's parts and components are contiguous ranges:
            // add_user appends them together and removal preserves
            // grouping, so draining two ranges removes the whole user
            let p_lo = self.user_parts[u][0];
            debug_assert!(self.user_parts[u]
                .iter()
                .enumerate()
                .all(|(k, &i)| i == p_lo + k));
            let c_lo = self.parts[p_lo].component;
            let c_hi = self.parts[p_lo + p_n - 1].component;
            (p_lo, c_lo, c_hi - c_lo + 1)
        } else {
            // no parts ⇒ no components either; only the slot vectors
            // shrink, but the later users' indices still need rebasing
            let p_lo = self.user_parts[u + 1..]
                .iter()
                .find_map(|ps| ps.first().copied())
                .unwrap_or(self.parts.len());
            let c_lo = self
                .parts
                .get(p_lo)
                .map_or(self.components.len(), |p| p.component);
            (p_lo, c_lo, 0)
        };
        debug_assert!(self.components[c_lo..c_lo + c_n]
            .iter()
            .all(|c| c.user == u));
        self.parts.drain(p_lo..p_lo + p_n);
        self.components.drain(c_lo..c_lo + c_n);
        for p in &mut self.parts[p_lo..] {
            p.user -= 1;
            p.component -= c_n;
        }
        for c in &mut self.components[c_lo..] {
            c.user -= 1;
            c.part1 -= p_n;
            if let Some(p2) = &mut c.part2 {
                *p2 -= p_n;
            }
        }
        self.pinned_work.remove(u);
        self.node_counts.remove(u);
        self.user_parts.remove(u);
        for ups in &mut self.user_parts[u..] {
            for i in ups {
                *i -= p_n;
            }
        }
    }

    /// Replaces user `u`'s workload in place (the same slot), keeping
    /// every other user's records and part sides untouched — the
    /// incremental form of a same-name re-join. The new workload gets
    /// the usual initial placement of [`add_user`](Self::add_user).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds or the cuts do not align with
    /// the compression's component list.
    pub fn replace_user(
        &mut self,
        u: usize,
        graph: &Graph,
        compression: &CompressionOutcome,
        quotient_cuts: &[Bipartition],
    ) {
        self.remove_user(u);
        self.insert_user_at(u, graph, compression, quotient_cuts);
    }

    /// Inserts a new user at slot `u` (shifting users `u..` up by one),
    /// with the same semantics as [`add_user`](Self::add_user).
    ///
    /// # Panics
    ///
    /// Panics if `u > user_count()` or the cuts do not align with the
    /// compression's component list.
    pub fn insert_user_at(
        &mut self,
        u: usize,
        graph: &Graph,
        compression: &CompressionOutcome,
        quotient_cuts: &[Bipartition],
    ) {
        assert!(u <= self.user_count(), "insert slot {u} out of bounds");
        if u == self.user_count() {
            self.add_user(graph, compression, quotient_cuts);
            return;
        }
        // Build the newcomer in a scratch system (user index 0, local
        // part/component indices), then splice the records into place
        // and rebase both sides of the seam.
        let mut tmp = PartSystem::new();
        tmp.add_user(graph, compression, quotient_cuts);
        let p_lo = self.user_parts[u..]
            .iter()
            .find_map(|ps| ps.first().copied())
            .unwrap_or(self.parts.len());
        let c_lo = self
            .parts
            .get(p_lo)
            .map_or(self.components.len(), |p| p.component);
        let p_n = tmp.parts.len();
        let c_n = tmp.components.len();
        for p in &mut self.parts[p_lo..] {
            p.user += 1;
            p.component += c_n;
        }
        for c in &mut self.components[c_lo..] {
            c.user += 1;
            c.part1 += p_n;
            if let Some(p2) = &mut c.part2 {
                *p2 += p_n;
            }
        }
        for ups in &mut self.user_parts[u..] {
            for i in ups {
                *i += p_n;
            }
        }
        for p in &mut tmp.parts {
            p.user = u;
            p.component += c_lo;
        }
        for c in &mut tmp.components {
            c.user = u;
            c.part1 += p_lo;
            if let Some(p2) = &mut c.part2 {
                *p2 += p_lo;
            }
        }
        let new_user_parts: Vec<usize> = tmp
            .user_parts
            .pop()
            .expect("scratch system has one user")
            .into_iter()
            .map(|i| i + p_lo)
            .collect();
        self.parts.splice(p_lo..p_lo, tmp.parts);
        self.components.splice(c_lo..c_lo, tmp.components);
        self.pinned_work.insert(u, tmp.pinned_work[0]);
        self.node_counts.insert(u, tmp.node_counts[0]);
        self.user_parts.insert(u, new_user_parts);
    }

    /// Number of users registered.
    pub fn user_count(&self) -> usize {
        self.pinned_work.len()
    }

    /// All parts.
    pub fn parts(&self) -> &[Part] {
        &self.parts
    }

    /// All component records.
    pub fn components(&self) -> &[ComponentRec] {
        &self.components
    }

    /// Pinned computation weight of `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of bounds.
    pub fn pinned_work(&self, user: usize) -> f64 {
        self.pinned_work[user]
    }

    /// Current side of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn side(&self, i: usize) -> Side {
        self.parts[i].side
    }

    /// Reassigns part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_side(&mut self, i: usize, side: Side) {
        self.parts[i].side = side;
    }

    /// Indices of all parts belonging to `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of bounds.
    pub fn parts_of_user(&self, user: usize) -> &[usize] {
        &self.user_parts[user]
    }

    /// The sibling of part `i`, if its component was split in two.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sibling(&self, i: usize) -> Option<usize> {
        let c = &self.components[self.parts[i].component];
        if c.part1 == i {
            c.part2
        } else {
            Some(c.part1)
        }
    }

    /// The user's transmission volume (data + per-crossing overhead)
    /// under the current sides — recomputed from scratch; the greedy
    /// loop keeps its own incremental copy and cross-checks against
    /// this in tests.
    pub fn tx_volume_of_user(&self, user: usize, control_overhead: f64) -> f64 {
        let mut volume = 0.0;
        for c in self.components.iter().filter(|c| c.user == user) {
            let s1 = self.parts[c.part1].side;
            if let Some(p2) = c.part2 {
                let s2 = self.parts[p2].side;
                if s1 != s2 {
                    volume += c.cross_weight + c.cross_count as f64 * control_overhead;
                }
            }
        }
        for p in self.parts.iter().filter(|p| p.user == user) {
            if p.side == Side::Remote {
                volume += p.pinned_cut + p.pinned_crossings as f64 * control_overhead;
            }
        }
        volume
    }

    /// The user's local / remote computation work under current sides.
    pub fn work_split_of_user(&self, user: usize) -> (f64, f64) {
        let mut local = self.pinned_work[user];
        let mut remote = 0.0;
        for p in self.parts.iter().filter(|p| p.user == user) {
            match p.side {
                Side::Local => local += p.work,
                Side::Remote => remote += p.work,
            }
        }
        (local, remote)
    }

    /// Emits the per-user plan implied by the current part sides:
    /// pinned nodes local, part nodes on their part's side.
    pub fn plan(&self) -> Vec<Bipartition> {
        let mut plans: Vec<Bipartition> = self
            .node_counts
            .iter()
            .map(|&n| Bipartition::uniform(n, Side::Local))
            .collect();
        for p in &self.parts {
            if p.side == Side::Remote {
                for &n in &p.nodes {
                    plans[p.user].assign(n, Side::Remote);
                }
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_labelprop::{CompressionConfig, Compressor, ThresholdRule};

    /// pinned —3— [heavy triangle 0,1,2] —1— [heavy triangle 3,4,5]
    fn build_system() -> (Graph, PartSystem) {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|i| b.add_node(i as f64 + 1.0)).collect();
        let pin = b.add_pinned_node(50.0);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.add_edge(pin, n[0], 3.0).unwrap();
        let g = b.build();
        let compressor =
            Compressor::new(CompressionConfig::new().threshold(ThresholdRule::Absolute(5.0)));
        let outcome = compressor.compress(&g);
        // one component, quotient = 2 super-nodes joined by the bridge
        let cuts: Vec<Bipartition> = outcome
            .components
            .iter()
            .map(|c| {
                // split the quotient by its only edge
                Bipartition::from_fn(c.quotient.graph().node_count(), |i| {
                    if i == 0 {
                        Side::Local
                    } else {
                        Side::Remote
                    }
                })
            })
            .collect();
        let mut ps = PartSystem::new();
        ps.add_user(&g, &outcome, &cuts);
        (g, ps)
    }

    #[test]
    fn parts_partition_the_offloadable_nodes() {
        let (g, ps) = build_system();
        assert_eq!(ps.user_count(), 1);
        assert_eq!(ps.parts().len(), 2);
        let total_nodes: usize = ps.parts().iter().map(|p| p.nodes.len()).sum();
        assert_eq!(total_nodes, 6);
        let total_work: f64 = ps.parts().iter().map(|p| p.work).sum();
        assert_eq!(total_work, 21.0);
        assert_eq!(ps.pinned_work(0), 50.0);
        let _ = g;
    }

    #[test]
    fn component_coupling_is_the_bridge() {
        let (_, ps) = build_system();
        let c = &ps.components()[0];
        assert!((c.cross_weight - 1.0).abs() < 1e-12);
        assert_eq!(c.cross_count, 1);
        assert!(c.part2.is_some());
    }

    #[test]
    fn pinned_coupling_lands_on_the_right_part() {
        let (_, ps) = build_system();
        // the part containing node 0 has the pinned edge (weight 3)
        let p_with_pin = ps
            .parts()
            .iter()
            .find(|p| p.nodes.contains(&NodeId::new(0)))
            .unwrap();
        assert!((p_with_pin.pinned_cut - 3.0).abs() < 1e-12);
        assert_eq!(p_with_pin.pinned_crossings, 1);
        let other = ps
            .parts()
            .iter()
            .find(|p| !p.nodes.contains(&NodeId::new(0)))
            .unwrap();
        assert_eq!(other.pinned_cut, 0.0);
    }

    #[test]
    fn initial_split_puts_pin_coupled_half_on_the_device() {
        let (_, ps) = build_system();
        // the half containing node 0 carries the pinned edge → Local;
        // the sibling half starts Remote (paper §III-B: one part local,
        // one part remote).
        let pin_part = ps
            .parts()
            .iter()
            .find(|p| p.nodes.contains(&NodeId::new(0)))
            .unwrap();
        assert_eq!(pin_part.side, Side::Local);
        let other = ps
            .parts()
            .iter()
            .find(|p| !p.nodes.contains(&NodeId::new(0)))
            .unwrap();
        assert_eq!(other.side, Side::Remote);
        let (local, remote) = ps.work_split_of_user(0);
        assert_eq!(local, 50.0 + pin_part.work);
        assert_eq!(remote, other.work);
    }

    #[test]
    fn tx_volume_tracks_sides() {
        let (_, mut ps) = build_system();
        let oh = 2.0;
        // initial split: bridge crosses (1 + 1*2 = 3); pinned edge is
        // local-local and free
        assert!((ps.tx_volume_of_user(0, oh) - 3.0).abs() < 1e-12);
        let pin_part = ps
            .parts()
            .iter()
            .position(|p| p.nodes.contains(&NodeId::new(0)))
            .unwrap();
        // push the pin half remote too: only the pinned edge crosses
        ps.set_side(pin_part, Side::Remote);
        assert!((ps.tx_volume_of_user(0, oh) - 5.0).abs() < 1e-12);
        // everything local: nothing crosses
        let other = ps.sibling(pin_part).unwrap();
        ps.set_side(pin_part, Side::Local);
        ps.set_side(other, Side::Local);
        assert_eq!(ps.tx_volume_of_user(0, oh), 0.0);
    }

    #[test]
    fn plan_reflects_sides_and_keeps_pins_local() {
        let (g, mut ps) = build_system();
        let plans = ps.plan();
        assert_eq!(plans.len(), 1);
        // initial split: exactly one triangle (3 nodes) is remote
        assert_eq!(plans[0].count_on(Side::Remote), 3);
        assert_eq!(plans[0].side(NodeId::new(6)), Side::Local);
        for i in 0..ps.parts().len() {
            ps.set_side(i, Side::Remote);
        }
        let plans2 = ps.plan();
        assert_eq!(plans2[0].count_on(Side::Remote), 6);
        assert_eq!(plans2[0].side(NodeId::new(6)), Side::Local);
        let _ = g;
    }

    #[test]
    fn sibling_lookup_is_symmetric() {
        let (_, ps) = build_system();
        let s0 = ps.sibling(0).unwrap();
        assert_eq!(ps.sibling(s0), Some(0));
    }

    /// A distinct multi-component workload per seed, plus its quotient
    /// cuts (mirrors what the session's front-end hands to `add_user`).
    fn user_fixture(seed: u64) -> (Graph, CompressionOutcome, Vec<Bipartition>) {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..8)
            .map(|i| b.add_node((seed * 7 + i) as f64 % 9.0 + 1.0))
            .collect();
        let pin = b.add_pinned_node(10.0 + seed as f64);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        b.add_edge(n[2], n[3], 1.0).unwrap();
        // second component: a loose pair
        b.add_edge(n[6], n[7], 0.5 + seed as f64 % 2.0).unwrap();
        b.add_edge(pin, n[0], 2.0 + seed as f64 % 3.0).unwrap();
        let g = b.build();
        let compressor =
            Compressor::new(CompressionConfig::new().threshold(ThresholdRule::Absolute(5.0)));
        let outcome = compressor.compress(&g);
        let cuts: Vec<Bipartition> = outcome
            .components
            .iter()
            .map(|c| {
                Bipartition::from_fn(c.quotient.graph().node_count(), |i| {
                    if i == 0 {
                        Side::Local
                    } else {
                        Side::Remote
                    }
                })
            })
            .collect();
        (g, outcome, cuts)
    }

    fn build_from(
        seeds: &[u64],
    ) -> (
        Vec<(Graph, CompressionOutcome, Vec<Bipartition>)>,
        PartSystem,
    ) {
        let fixtures: Vec<_> = seeds.iter().map(|&s| user_fixture(s)).collect();
        let mut ps = PartSystem::new();
        for (g, o, c) in &fixtures {
            ps.add_user(g, o, c);
        }
        (fixtures, ps)
    }

    /// Structural equality probe: everything a consumer can observe.
    type Observation = (Vec<Bipartition>, Vec<(f64, f64)>, Vec<f64>, Vec<f64>);

    fn observe(ps: &PartSystem) -> Observation {
        let splits = (0..ps.user_count())
            .map(|u| ps.work_split_of_user(u))
            .collect();
        let tx = (0..ps.user_count())
            .map(|u| ps.tx_volume_of_user(u, 2.0))
            .collect();
        let pinned = (0..ps.user_count()).map(|u| ps.pinned_work(u)).collect();
        (ps.plan(), splits, tx, pinned)
    }

    #[test]
    fn remove_user_matches_fresh_rebuild() {
        for victim in 0..4 {
            let (fixtures, mut ps) = build_from(&[3, 5, 8, 11]);
            ps.remove_user(victim);
            let mut fresh = PartSystem::new();
            for (i, (g, o, c)) in fixtures.iter().enumerate() {
                if i != victim {
                    fresh.add_user(g, o, c);
                }
            }
            assert_eq!(ps.user_count(), 3);
            assert_eq!(ps.parts().len(), fresh.parts().len());
            assert_eq!(ps.components().len(), fresh.components().len());
            assert_eq!(observe(&ps), observe(&fresh), "victim {victim}");
            // internal indices stay self-consistent
            for (i, p) in ps.parts().iter().enumerate() {
                assert!(ps.parts_of_user(p.user).contains(&i));
                let c = &ps.components()[p.component];
                assert!(c.part1 == i || c.part2 == Some(i));
                assert_eq!(c.user, p.user);
            }
        }
    }

    #[test]
    fn remove_user_keeps_survivor_sides() {
        let (_, mut ps) = build_from(&[3, 5, 8]);
        // scramble sides as a converged placement would
        for i in 0..ps.parts().len() {
            if i % 2 == 0 {
                let s = ps.side(i).flipped();
                ps.set_side(i, s);
            }
        }
        let before: Vec<(usize, Vec<Side>)> = (0..3)
            .map(|u| (u, ps.parts_of_user(u).iter().map(|&i| ps.side(i)).collect()))
            .collect();
        ps.remove_user(1);
        for (u, sides) in before {
            if u == 1 {
                continue;
            }
            let nu = if u > 1 { u - 1 } else { u };
            let now: Vec<Side> = ps.parts_of_user(nu).iter().map(|&i| ps.side(i)).collect();
            assert_eq!(now, sides, "user {u} sides survived the removal");
        }
    }

    #[test]
    fn replace_user_matches_fresh_rebuild() {
        let (fixtures, mut ps) = build_from(&[3, 5, 8]);
        let (g, o, c) = user_fixture(42);
        ps.replace_user(1, &g, &o, &c);
        let mut fresh = PartSystem::new();
        fresh.add_user(&fixtures[0].0, &fixtures[0].1, &fixtures[0].2);
        fresh.add_user(&g, &o, &c);
        fresh.add_user(&fixtures[2].0, &fixtures[2].1, &fixtures[2].2);
        assert_eq!(observe(&ps), observe(&fresh));
    }

    #[test]
    fn churn_sequence_stays_consistent() {
        let (_, mut ps) = build_from(&[1, 2, 3, 4, 5]);
        ps.remove_user(0);
        let (g, o, c) = user_fixture(9);
        ps.insert_user_at(2, &g, &o, &c);
        ps.remove_user(4);
        let mut fresh = PartSystem::new();
        for s in [2u64, 3, 9, 4] {
            let (g, o, c) = user_fixture(s);
            fresh.add_user(&g, &o, &c);
        }
        assert_eq!(observe(&ps), observe(&fresh));
    }

    #[test]
    fn work_split_matches_plan_weights() {
        let (g, mut ps) = build_system();
        ps.set_side(1, Side::Local);
        let (local, remote) = ps.work_split_of_user(0);
        let plan = &ps.plan()[0];
        assert!((plan.node_weight_on(&g, Side::Local) - local).abs() < 1e-12);
        assert!((plan.node_weight_on(&g, Side::Remote) - remote).abs() < 1e-12);
    }
}
