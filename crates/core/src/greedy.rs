//! Algorithm 2's scheme generation as an incremental local search on
//! the part system.
//!
//! The paper's greedy loop starts from the per-component splits
//! (§III-B: "one part executes locally, and another part executes
//! remotely") and migrates parts while the combined objective `E + T`
//! decreases (Algorithm 2's termination test
//! `E_t + T_t < E_{t-1} + T_{t-1}`). This module generalises that loop
//! just enough to be robust under shared-server contention:
//!
//! - moves go in **both directions** (device → server and back) — a
//!   crowd of users can only reach the contention equilibrium if early
//!   placement mistakes are revertible;
//! - besides single parts, candidates include **whole components**
//!   (escaping the sibling-coupling trap), **whole users** (the big
//!   payoff of a user leaving the server — one less capacity sharer —
//!   only materialises when their last part departs), and component
//!   **orientation swaps** (which half of a split is the local one);
//! - every candidate is priced in `O(1)`–`O(parts of user)` against an
//!   incrementally-maintained objective, and a final guard ensures the
//!   result is never worse than not offloading at all.
//!
//! Two drivers: [`GreedyMode::Exhaustive`] re-prices every candidate
//! each round (the literal reading of Algorithm 2); [`GreedyMode::Lazy`]
//! drains a lazily-updated max-heap and rescans when it runs dry — far
//! fewer evaluations, same kind of local optimum.

use crate::parts::PartSystem;
use mec_graph::Side;
use mec_model::{AllocationPolicy, SystemParams};
use mec_obs::{FieldValue, TraceSink};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which greedy driver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum GreedyMode {
    /// Scan all candidates every iteration and apply the best.
    Exhaustive,
    /// Lazily-updated priority queue with rescan phases (default).
    #[default]
    Lazy,
}

/// Statistics from a greedy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyOutcome {
    /// Part relocations applied (both directions).
    pub moves: usize,
    /// Objective `E + T` of the initial split placement.
    pub initial_objective: f64,
    /// Objective after convergence.
    pub final_objective: f64,
    /// Candidate evaluations performed.
    pub evaluations: usize,
}

const EPS: f64 = 1e-9;

/// What a move relocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Target {
    /// One part.
    Single(usize),
    /// Both parts of a component.
    Pair(usize),
    /// Every part of a user.
    User(usize),
}

/// A local-search candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Move {
    /// Relocate the target onto the device.
    Home(Target),
    /// Relocate the target onto the server.
    Out(Target),
    /// Swap which half of a split component is the local one.
    Swap(usize),
}

/// Incrementally-maintained objective state.
struct ObjectiveState {
    params: SystemParams,
    /// Total local work (including pinned), all users.
    lw: f64,
    /// Total remote work, all users.
    rw: f64,
    /// Total transmission volume incl. control overhead, all users.
    tv: f64,
    /// Remote work per user (to track the offloader count).
    rw_user: Vec<f64>,
    /// Users with positive remote work.
    offloaders: usize,
}

impl ObjectiveState {
    fn new(ps: &PartSystem, params: &SystemParams) -> Self {
        // Single passes over the part and component arrays instead of
        // per-user scans: `work_split_of_user` / `tx_volume_of_user`
        // filter the whole system per user, which is O(users²) at the
        // crowd sizes the streaming service tracks. The per-user
        // accumulators below add the same terms in the same order
        // (each user's records are contiguous and ascending), so the
        // folded totals are bit-identical to the per-user scans.
        let users = ps.user_count();
        let oh = params.control_overhead;
        let mut l_user = vec![0.0; users];
        let mut rw_user = vec![0.0; users];
        let mut tv_user = vec![0.0; users];
        for (u, l) in l_user.iter_mut().enumerate() {
            *l = ps.pinned_work(u);
        }
        for p in ps.parts() {
            match p.side {
                Side::Local => l_user[p.user] += p.work,
                Side::Remote => rw_user[p.user] += p.work,
            }
        }
        for c in ps.components() {
            if let Some(p2) = c.part2 {
                if ps.side(c.part1) != ps.side(p2) {
                    tv_user[c.user] += c.cross_weight + c.cross_count as f64 * oh;
                }
            }
        }
        for p in ps.parts() {
            if p.side == Side::Remote {
                tv_user[p.user] += p.pinned_cut + p.pinned_crossings as f64 * oh;
            }
        }
        let mut lw = 0.0;
        let mut rw = 0.0;
        let mut tv = 0.0;
        for u in 0..users {
            lw += l_user[u];
            rw += rw_user[u];
            tv += tv_user[u];
        }
        let offloaders = rw_user.iter().filter(|&&r| r > EPS).count();
        ObjectiveState {
            params: *params,
            lw,
            rw,
            tv,
            rw_user,
            offloaders,
        }
    }

    /// Server time `Σ (t_s + wt)` for a remote-work profile.
    /// `adjusted` optionally overrides one user's remote work.
    fn server_time(&self, rw_total: f64, offloaders: usize, adjusted: Option<(usize, f64)>) -> f64 {
        let cap = self.params.server_capacity;
        match self.params.allocation {
            // EqualShare: t_s^i = rw_i · k / I_S  →  Σ = k · RW / I_S.
            // Proportional: t_s^i = RW / I_S each →  Σ = k · RW / I_S.
            AllocationPolicy::EqualShare | AllocationPolicy::ProportionalToLoad => {
                offloaders as f64 * rw_total / cap
            }
            // FIFO in user order: position j (0-based) of k jobs
            // contributes t_j · (k − j). k is derived from the adjusted
            // profile itself — the caller's `offloaders` hint matches it
            // for real moves but not for hypothetical what-ifs like the
            // all-local guard.
            AllocationPolicy::Fifo => {
                let _ = offloaders;
                let value = |u: usize, r: f64| match adjusted {
                    Some((au, val)) if au == u => val,
                    _ => r,
                };
                let k = self
                    .rw_user
                    .iter()
                    .enumerate()
                    .filter(|&(u, &r)| value(u, r) > EPS)
                    .count();
                let mut total = 0.0;
                let mut pos = 0usize;
                for (u, &r) in self.rw_user.iter().enumerate() {
                    let r = value(u, r);
                    if r > EPS {
                        total += r / cap * (k - pos) as f64;
                        pos += 1;
                    }
                }
                total
            }
        }
    }

    /// `E + T` for a hypothetical state.
    fn objective_for(
        &self,
        lw: f64,
        rw: f64,
        tv: f64,
        offloaders: usize,
        adjusted: Option<(usize, f64)>,
    ) -> f64 {
        let p = &self.params;
        let local_time = lw / p.local_capacity;
        let tx_time = tv / p.bandwidth;
        let energy = local_time * p.local_power + tx_time * p.tx_power;
        let time = local_time + self.server_time(rw, offloaders, adjusted) + tx_time;
        energy + time
    }

    /// Current objective.
    fn objective(&self) -> f64 {
        self.objective_for(self.lw, self.rw, self.tv, self.offloaders, None)
    }

    /// Per-part pinned transmission term.
    fn pin_term(&self, ps: &PartSystem, i: usize) -> f64 {
        let p = &ps.parts()[i];
        p.pinned_cut + p.pinned_crossings as f64 * self.params.control_overhead
    }

    /// Transmission-volume change if every part in `targets` (all
    /// currently on the opposite side) moves to `to`.
    fn batch_tx_delta(&self, ps: &PartSystem, targets: &[usize], to: Side) -> f64 {
        let oh = self.params.control_overhead;
        let mut delta = 0.0;
        // pinned edges cross exactly when the part is remote
        for &i in targets {
            match to {
                Side::Local => delta -= self.pin_term(ps, i),
                Side::Remote => delta += self.pin_term(ps, i),
            }
        }
        // sibling cross edges: recompute the crossing indicator for
        // every touched component (each at most once)
        let mut seen_comp = Vec::with_capacity(targets.len());
        for &i in targets {
            let c = ps.parts()[i].component;
            if seen_comp.contains(&c) {
                continue;
            }
            seen_comp.push(c);
            let comp = &ps.components()[c];
            let Some(p2) = comp.part2 else { continue };
            let p1 = comp.part1;
            let before = ps.side(p1) != ps.side(p2);
            let side_after = |p: usize| {
                if targets.contains(&p) {
                    to
                } else {
                    ps.side(p)
                }
            };
            let after = side_after(p1) != side_after(p2);
            if before != after {
                let cross = comp.cross_weight + comp.cross_count as f64 * oh;
                delta += if after { cross } else { -cross };
            }
        }
        delta
    }

    /// Objective change if `targets` (parts of user `u`, all currently
    /// on the opposite side) relocate to `to`. Negative = improvement.
    fn batch_delta(&self, ps: &PartSystem, u: usize, targets: &[usize], to: Side) -> f64 {
        debug_assert!(targets.iter().all(|&i| ps.parts()[i].user == u));
        debug_assert!(targets.iter().all(|&i| ps.side(i) != to));
        let w: f64 = targets.iter().map(|&i| ps.parts()[i].work).sum();
        let (lw2, rw2, user_rw2) = match to {
            Side::Local => (self.lw + w, self.rw - w, self.rw_user[u] - w),
            Side::Remote => (self.lw - w, self.rw + w, self.rw_user[u] + w),
        };
        let tv2 = self.tv + self.batch_tx_delta(ps, targets, to);
        let offloaders2 = match (self.rw_user[u] > EPS, user_rw2 > EPS) {
            (true, false) => self.offloaders - 1,
            (false, true) => self.offloaders + 1,
            _ => self.offloaders,
        };
        self.objective_for(lw2, rw2, tv2, offloaders2, Some((u, user_rw2))) - self.objective()
    }

    /// Commits a batch relocation.
    fn apply_batch(&mut self, ps: &mut PartSystem, u: usize, targets: &[usize], to: Side) {
        let w: f64 = targets.iter().map(|&i| ps.parts()[i].work).sum();
        self.tv += self.batch_tx_delta(ps, targets, to);
        match to {
            Side::Local => {
                self.lw += w;
                self.rw -= w;
            }
            Side::Remote => {
                self.lw -= w;
                self.rw += w;
            }
        }
        let before = self.rw_user[u];
        self.rw_user[u] += match to {
            Side::Local => -w,
            Side::Remote => w,
        };
        match (before > EPS, self.rw_user[u] > EPS) {
            (true, false) => self.offloaders -= 1,
            (false, true) => self.offloaders += 1,
            _ => {}
        }
        for &i in targets {
            ps.set_side(i, to);
        }
    }

    /// Resolves a relocation move into `(user, parts, destination)`;
    /// `None` when currently invalid (wrong sides, missing sibling,
    /// nothing to do).
    fn resolve(&self, ps: &PartSystem, mv: Move) -> Option<(usize, Vec<usize>, Side)> {
        let (target, to) = match mv {
            Move::Home(t) => (t, Side::Local),
            Move::Out(t) => (t, Side::Remote),
            Move::Swap(_) => unreachable!("swaps are priced separately"),
        };
        let from = to.flipped();
        let (user, parts) = match target {
            Target::Single(i) => {
                if ps.side(i) != from {
                    return None;
                }
                (ps.parts()[i].user, vec![i])
            }
            Target::Pair(c) => {
                let comp = &ps.components()[c];
                let p2 = comp.part2?;
                let p1 = comp.part1;
                if ps.side(p1) != from || ps.side(p2) != from {
                    return None;
                }
                (comp.user, vec![p1, p2])
            }
            Target::User(u) => {
                let parts: Vec<usize> = ps
                    .parts_of_user(u)
                    .iter()
                    .copied()
                    .filter(|&i| ps.side(i) == from)
                    .collect();
                if parts.len() < 2 {
                    return None; // single moves cover this
                }
                (u, parts)
            }
        };
        Some((user, parts, to))
    }

    /// Gain (= −Δobjective) of a candidate, `None` when invalid.
    fn gain_of(&self, ps: &PartSystem, mv: Move) -> Option<f64> {
        match mv {
            Move::Swap(c) => self.swap_delta(ps, c).map(|(_, _, d)| -d),
            _ => {
                let (u, parts, to) = self.resolve(ps, mv)?;
                Some(-self.batch_delta(ps, u, &parts, to))
            }
        }
    }

    /// Commits a candidate; returns how many parts moved.
    fn apply_move(&mut self, ps: &mut PartSystem, mv: Move) -> usize {
        match mv {
            Move::Swap(c) => {
                let (to_remote, to_local, _) =
                    self.swap_delta(ps, c).expect("swap validated before apply");
                let u = ps.parts()[to_remote].user;
                self.apply_batch(ps, u, &[to_local], Side::Local);
                self.apply_batch(ps, u, &[to_remote], Side::Remote);
                2
            }
            _ => {
                let (u, parts, to) = self.resolve(ps, mv).expect("move validated before apply");
                let n = parts.len();
                self.apply_batch(ps, u, &parts, to);
                n
            }
        }
    }

    /// Objective change if split component `c` swaps which half is
    /// local. Returns `(to_remote, to_local, delta)`; `None` unless the
    /// component currently has exactly one local and one remote half.
    fn swap_delta(&self, ps: &PartSystem, c: usize) -> Option<(usize, usize, f64)> {
        let comp = &ps.components()[c];
        let p2 = comp.part2?;
        let p1 = comp.part1;
        let (to_remote, to_local) = match (ps.side(p1), ps.side(p2)) {
            (Side::Local, Side::Remote) => (p1, p2),
            (Side::Remote, Side::Local) => (p2, p1),
            _ => return None,
        };
        let (wl, wr) = (ps.parts()[to_remote].work, ps.parts()[to_local].work);
        let u = comp.user;
        // newly-remote half starts paying its pinned coupling, the
        // newly-local one stops; the cross edges keep crossing.
        let tv2 = self.tv + self.pin_term(ps, to_remote) - self.pin_term(ps, to_local);
        let lw2 = self.lw - wl + wr;
        let rw2 = self.rw + wl - wr;
        let user_rw2 = self.rw_user[u] + wl - wr;
        let offloaders2 = match (self.rw_user[u] > EPS, user_rw2 > EPS) {
            (true, false) => self.offloaders - 1,
            (false, true) => self.offloaders + 1,
            _ => self.offloaders,
        };
        let delta =
            self.objective_for(lw2, rw2, tv2, offloaders2, Some((u, user_rw2))) - self.objective();
        Some((to_remote, to_local, delta))
    }
}

/// f64 heap key with total order (all keys are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gain(f64);

impl Eq for Gain {}

impl PartialOrd for Gain {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Gain {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("gains are finite")
    }
}

fn all_moves(ps: &PartSystem) -> Vec<Move> {
    let singles = (0..ps.parts().len()).map(Target::Single);
    let pairs = (0..ps.components().len()).map(Target::Pair);
    let users = (0..ps.user_count()).map(Target::User);
    let targets: Vec<Target> = singles.chain(pairs).chain(users).collect();
    let mut moves: Vec<Move> = Vec::with_capacity(2 * targets.len() + ps.components().len());
    moves.extend(targets.iter().map(|&t| Move::Home(t)));
    moves.extend(targets.iter().map(|&t| Move::Out(t)));
    moves.extend((0..ps.components().len()).map(Move::Swap));
    moves
}

/// The candidates that directly involve the given users: their parts,
/// components (pair moves and orientation swaps), and whole-user
/// relocations. This is the warm-start seed set — the moves whose
/// prices changed *structurally* after churn touched those users; the
/// capacity-coupled re-pricing every other server-resident part sees
/// is caught by the rescan phase that follows the seeded drain.
fn moves_of_users(ps: &PartSystem, users: &[usize]) -> Vec<Move> {
    let mut targets = Vec::new();
    let mut swaps = Vec::new();
    for &u in users {
        if u >= ps.user_count() {
            continue;
        }
        let mut last_comp = usize::MAX;
        for &i in ps.parts_of_user(u) {
            targets.push(Target::Single(i));
            let c = ps.parts()[i].component;
            if c != last_comp {
                targets.push(Target::Pair(c));
                swaps.push(c);
                last_comp = c;
            }
        }
        targets.push(Target::User(u));
    }
    let mut moves: Vec<Move> = Vec::with_capacity(2 * targets.len() + swaps.len());
    moves.extend(targets.iter().map(|&t| Move::Home(t)));
    moves.extend(targets.iter().map(|&t| Move::Out(t)));
    moves.extend(swaps.into_iter().map(Move::Swap));
    moves
}

/// Runs the local search over `ps`, mutating part sides in place.
///
/// After convergence, the all-local plan is checked as a final guard:
/// the returned assignment is never worse than not offloading at all.
#[cfg(test)]
pub(crate) fn run_greedy(
    ps: &mut PartSystem,
    params: &SystemParams,
    mode: GreedyMode,
) -> GreedyOutcome {
    run_greedy_traced(ps, params, mode, &mec_obs::NullSink)
}

/// Emits one `greedy.step` objective-trajectory point.
fn emit_step(sink: &dyn TraceSink, moves: usize, objective: f64) {
    sink.event(
        "greedy.step",
        &[
            ("moves", FieldValue::from(moves)),
            ("objective", FieldValue::from(objective)),
        ],
    );
}

/// [`run_greedy`] with telemetry: bumps `greedy.evaluated` /
/// `greedy.accepted` counters, records the per-run `greedy.evaluations`
/// / `greedy.moves` histograms, and (when the sink is enabled) emits a
/// `greedy.step` event after every applied move — the objective
/// trajectory — plus a final `greedy.done` summary. The search itself
/// is unchanged.
pub(crate) fn run_greedy_traced(
    ps: &mut PartSystem,
    params: &SystemParams,
    mode: GreedyMode,
    sink: &dyn TraceSink,
) -> GreedyOutcome {
    run_greedy_seeded(ps, params, mode, sink, None)
}

/// Warm-started greedy for delta replans: `ps` already carries a
/// previously converged placement plus the churned users' fresh
/// initial splits. A seeded phase drains only the candidates that
/// involve `dirty_users` (the structurally re-priced moves), then the
/// standard rescan phases run to the same convergence criterion as a
/// from-scratch search — one cheap full rescan confirms no
/// capacity-coupled candidate still improves, so the result is a local
/// optimum of the *same* neighbourhood the full path searches.
pub(crate) fn run_greedy_warm(
    ps: &mut PartSystem,
    params: &SystemParams,
    mode: GreedyMode,
    sink: &dyn TraceSink,
    dirty_users: &[usize],
) -> GreedyOutcome {
    run_greedy_seeded(ps, params, mode, sink, Some(dirty_users))
}

/// Lazily drains a max-heap of candidates: pop, re-price, repush when
/// the gain drifted below the runner-up, apply while improving.
/// Returns `true` when at least one move was applied.
#[allow(clippy::too_many_arguments)]
fn drain_heap(
    heap: &mut BinaryHeap<(Gain, Move)>,
    state: &mut ObjectiveState,
    ps: &mut PartSystem,
    moves: &mut usize,
    evaluations: &mut usize,
    move_cap: usize,
    traced: bool,
    sink: &dyn TraceSink,
) -> bool {
    let mut applied = false;
    while let Some((_, mv)) = heap.pop() {
        let Some(gain) = state.gain_of(ps, mv) else {
            continue;
        };
        *evaluations += 1;
        if gain <= EPS {
            continue;
        }
        // stale (gain drifted below the next candidate): repush
        if let Some(&(next, _)) = heap.peek() {
            if gain + EPS < next.0 {
                heap.push((Gain(gain), mv));
                continue;
            }
        }
        *moves += state.apply_move(ps, mv);
        if traced {
            emit_step(sink, *moves, state.objective());
        }
        applied = true;
        if *moves >= move_cap {
            break;
        }
    }
    applied
}

fn run_greedy_seeded(
    ps: &mut PartSystem,
    params: &SystemParams,
    mode: GreedyMode,
    sink: &dyn TraceSink,
    dirty_users: Option<&[usize]>,
) -> GreedyOutcome {
    let traced = sink.enabled();
    let mut state = ObjectiveState::new(ps, params);
    let initial = state.objective();
    let mut moves = 0usize;
    let mut evaluations = 0usize;
    // strict cap against pathological float drift; never reached in
    // practice (each applied move improves the objective by > EPS)
    let move_cap = 20 * (ps.parts().len() + ps.user_count() + 4);

    // Warm phase: settle the churned users' own candidates first, so
    // the rescan phase below usually confirms convergence in one pass
    // instead of driving the search. (Exhaustive mode re-scans every
    // candidate per iteration anyway, so seeding buys it nothing.)
    if let Some(dirty) = dirty_users {
        if mode == GreedyMode::Lazy && !dirty.is_empty() {
            let mut heap: BinaryHeap<(Gain, Move)> = BinaryHeap::new();
            for mv in moves_of_users(ps, dirty) {
                if let Some(g) = state.gain_of(ps, mv) {
                    evaluations += 1;
                    if g > EPS {
                        heap.push((Gain(g), mv));
                    }
                }
            }
            drain_heap(
                &mut heap,
                &mut state,
                ps,
                &mut moves,
                &mut evaluations,
                move_cap,
                traced,
                sink,
            );
        }
    }

    match mode {
        GreedyMode::Exhaustive => {
            while moves < move_cap {
                let mut best: Option<(Move, f64)> = None;
                for mv in all_moves(ps) {
                    let Some(g) = state.gain_of(ps, mv) else {
                        continue;
                    };
                    evaluations += 1;
                    let better = match best {
                        None => true,
                        Some((_, bg)) => g > bg,
                    };
                    if better {
                        best = Some((mv, g));
                    }
                }
                match best {
                    Some((mv, g)) if g > EPS => {
                        moves += state.apply_move(ps, mv);
                        if traced {
                            emit_step(sink, moves, state.objective());
                        }
                    }
                    _ => break,
                }
            }
        }
        GreedyMode::Lazy => {
            // phases: drain a heap of positive-gain candidates; gains
            // drift as aggregates change, so when the heap runs dry,
            // rescan everything once and start a new phase if anything
            // still improves.
            while moves < move_cap {
                let mut heap: BinaryHeap<(Gain, Move)> = BinaryHeap::new();
                for mv in all_moves(ps) {
                    if let Some(g) = state.gain_of(ps, mv) {
                        evaluations += 1;
                        if g > EPS {
                            heap.push((Gain(g), mv));
                        }
                    }
                }
                if heap.is_empty() {
                    break;
                }
                let applied_this_phase = drain_heap(
                    &mut heap,
                    &mut state,
                    ps,
                    &mut moves,
                    &mut evaluations,
                    move_cap,
                    traced,
                    sink,
                );
                if !applied_this_phase {
                    break;
                }
            }
        }
    }

    // final guard: never do worse than not offloading at all
    let total_work = state.lw + state.rw;
    let all_local = state.objective_for(total_work, 0.0, 0.0, 0, None);
    if all_local + EPS < state.objective() {
        for u in 0..ps.user_count() {
            let remote: Vec<usize> = ps
                .parts_of_user(u)
                .iter()
                .copied()
                .filter(|&i| ps.side(i) == Side::Remote)
                .collect();
            if !remote.is_empty() {
                state.apply_batch(ps, u, &remote, Side::Local);
                moves += remote.len();
            }
        }
    }

    let final_objective = state.objective();
    sink.counter_add("greedy.evaluated", evaluations as u64);
    sink.counter_add("greedy.accepted", moves as u64);
    // per-run distributions: the delta-vs-full work reduction shows up
    // here even when wall-clock noise hides it
    sink.histogram_record("greedy.evaluations", evaluations as u64);
    sink.histogram_record("greedy.moves", moves as u64);
    if traced {
        sink.event(
            "greedy.done",
            &[
                ("moves", FieldValue::from(moves)),
                ("evaluations", FieldValue::from(evaluations)),
                ("initial_objective", FieldValue::from(initial)),
                ("final_objective", FieldValue::from(final_objective)),
            ],
        );
    }

    GreedyOutcome {
        moves,
        initial_objective: initial,
        final_objective,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::{Bipartition, GraphBuilder};
    use mec_labelprop::{CompressionConfig, Compressor, ThresholdRule};
    use mec_model::{Scenario, SystemParams, UserWorkload};
    use mec_netgen::NetgenSpec;

    fn params() -> SystemParams {
        SystemParams::default()
    }

    fn build_ps(graphs: &[mec_graph::Graph]) -> PartSystem {
        let compressor =
            Compressor::new(CompressionConfig::new().threshold(ThresholdRule::MeanFactor(1.5)));
        let mut ps = PartSystem::new();
        for g in graphs {
            let outcome = compressor.compress(g);
            let cuts: Vec<Bipartition> = outcome
                .components
                .iter()
                .map(|c| {
                    mec_spectral::SpectralBisector::new()
                        .bisect(c.quotient.graph())
                        .expect("non-empty component")
                        .partition
                })
                .collect();
            ps.add_user(g, &outcome, &cuts);
        }
        ps
    }

    #[test]
    fn incremental_objective_matches_scenario_evaluation() {
        let g = NetgenSpec::new(60, 150).seed(4).generate().unwrap();
        let mut ps = build_ps(std::slice::from_ref(&g));
        let p = params();
        let state = ObjectiveState::new(&ps, &p);
        let scenario = Scenario::new(p).with_user(UserWorkload::new("u", g));
        let eval = scenario.evaluate(&ps.plan()).unwrap();
        assert!(
            (state.objective() - eval.totals.objective()).abs() < 1e-9,
            "incremental {} vs model {}",
            state.objective(),
            eval.totals.objective()
        );
        // and after greedy runs
        run_greedy(&mut ps, &p, GreedyMode::Lazy);
        let state2 = ObjectiveState::new(&ps, &p);
        let eval2 = scenario.evaluate(&ps.plan()).unwrap();
        assert!((state2.objective() - eval2.totals.objective()).abs() < 1e-9);
    }

    #[test]
    fn batch_delta_predicts_applied_change() {
        let g = NetgenSpec::new(40, 100).seed(7).generate().unwrap();
        let mut ps = build_ps(std::slice::from_ref(&g));
        let p = params();
        let mut state = ObjectiveState::new(&ps, &p);
        for i in 0..ps.parts().len() {
            let to = ps.side(i).flipped();
            let u = ps.parts()[i].user;
            let before = state.objective();
            let predicted = state.batch_delta(&ps, u, &[i], to);
            state.apply_batch(&mut ps, u, &[i], to);
            let after = state.objective();
            assert!(
                (after - before - predicted).abs() < 1e-9,
                "part {i}: predicted {predicted}, actual {}",
                after - before
            );
        }
    }

    #[test]
    fn swap_delta_predicts_applied_change() {
        let g = NetgenSpec::new(50, 130).seed(3).generate().unwrap();
        let mut ps = build_ps(std::slice::from_ref(&g));
        let p = params();
        let mut state = ObjectiveState::new(&ps, &p);
        for c in 0..ps.components().len() {
            let Some((to_remote, to_local, predicted)) = state.swap_delta(&ps, c) else {
                continue;
            };
            let before = state.objective();
            let u = ps.parts()[to_remote].user;
            state.apply_batch(&mut ps, u, &[to_local], Side::Local);
            state.apply_batch(&mut ps, u, &[to_remote], Side::Remote);
            assert!(
                (state.objective() - before - predicted).abs() < 1e-9,
                "component {c}"
            );
        }
    }

    #[test]
    fn greedy_never_increases_objective() {
        let g = NetgenSpec::new(80, 250).seed(2).generate().unwrap();
        let mut ps = build_ps(std::slice::from_ref(&g));
        let out = run_greedy(&mut ps, &params(), GreedyMode::Lazy);
        assert!(out.final_objective <= out.initial_objective + 1e-9);
    }

    #[test]
    fn lazy_and_exhaustive_reach_comparable_optima() {
        for seed in [1u64, 5, 9, 13] {
            let g = NetgenSpec::new(70, 200).seed(seed).generate().unwrap();
            let mut ps_a = build_ps(std::slice::from_ref(&g));
            let mut ps_b = ps_a.clone();
            let a = run_greedy(&mut ps_a, &params(), GreedyMode::Exhaustive);
            let b = run_greedy(&mut ps_b, &params(), GreedyMode::Lazy);
            // different move orders may land in different local optima;
            // they must be close and both below the start
            let denom = a.final_objective.abs().max(1.0);
            assert!(
                (a.final_objective - b.final_objective).abs() / denom < 0.05,
                "seed {seed}: exhaustive {} vs lazy {}",
                a.final_objective,
                b.final_objective
            );
            assert!(a.final_objective <= a.initial_objective + 1e-9);
            assert!(b.final_objective <= b.initial_objective + 1e-9);
        }
    }

    #[test]
    fn greedy_result_is_locally_optimal() {
        let g = NetgenSpec::new(50, 140).seed(11).generate().unwrap();
        let mut ps = build_ps(std::slice::from_ref(&g));
        let p = params();
        run_greedy(&mut ps, &p, GreedyMode::Exhaustive);
        let state = ObjectiveState::new(&ps, &p);
        for mv in all_moves(&ps) {
            if let Some(g) = state.gain_of(&ps, mv) {
                assert!(g <= 1e-6, "{mv:?} still improves after convergence");
            }
        }
    }

    #[test]
    fn multi_user_contention_reaches_partial_equilibrium() {
        // symmetric crowd with a server sized so that only some users
        // can profitably offload: the search must keep a middle ground,
        // not collapse to all-local or all-remote.
        let p = SystemParams {
            server_capacity: 300.0,
            ..params()
        };
        let graphs: Vec<_> = (0..40)
            .map(|i| {
                NetgenSpec::new(60, 150)
                    .seed(20 + (i % 3))
                    .generate()
                    .unwrap()
            })
            .collect();
        let mut ps = build_ps(&graphs);
        run_greedy(&mut ps, &p, GreedyMode::Lazy);
        let offloaders = (0..ps.user_count())
            .filter(|&u| ps.work_split_of_user(u).1 > 1.0)
            .count();
        assert!(
            offloaders > 0 && offloaders < 40,
            "expected partial equilibrium, got {offloaders}/40 offloaders"
        );
    }

    #[test]
    fn contention_monotonically_reduces_offloading() {
        let p = params();
        let graphs_few: Vec<_> = (0..2)
            .map(|i| NetgenSpec::new(50, 140).seed(20 + i).generate().unwrap())
            .collect();
        let graphs_many: Vec<_> = (0..12)
            .map(|i| {
                NetgenSpec::new(50, 140)
                    .seed(20 + (i % 2))
                    .generate()
                    .unwrap()
            })
            .collect();
        let mut ps_few = build_ps(&graphs_few);
        let mut ps_many = build_ps(&graphs_many);
        run_greedy(&mut ps_few, &p, GreedyMode::Lazy);
        run_greedy(&mut ps_many, &p, GreedyMode::Lazy);
        let remote_frac = |ps: &PartSystem| {
            let total: f64 = ps.parts().iter().map(|q| q.work).sum();
            let remote: f64 = ps
                .parts()
                .iter()
                .filter(|q| q.side == Side::Remote)
                .map(|q| q.work)
                .sum();
            remote / total
        };
        assert!(
            remote_frac(&ps_many) <= remote_frac(&ps_few) + 1e-9,
            "contention must not increase offloading"
        );
    }

    #[test]
    fn fifo_policy_is_priced_consistently() {
        let mut p = params();
        p.allocation = mec_model::AllocationPolicy::Fifo;
        let graphs: Vec<_> = (0..3)
            .map(|i| NetgenSpec::new(40, 100).seed(30 + i).generate().unwrap())
            .collect();
        let mut ps = build_ps(&graphs);
        let state = ObjectiveState::new(&ps, &p);
        let scenario = Scenario::new(p).with_users(
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| UserWorkload::new(format!("u{i}"), g.clone())),
        );
        let eval = scenario.evaluate(&ps.plan()).unwrap();
        assert!(
            (state.objective() - eval.totals.objective()).abs() < 1e-9,
            "incremental {} vs model {}",
            state.objective(),
            eval.totals.objective()
        );
        // delta prediction under FIFO, both directions
        let mut state = state;
        for to in [Side::Local, Side::Remote] {
            let i = 0usize;
            if ps.side(i) == to {
                continue;
            }
            let u = ps.parts()[i].user;
            let before = state.objective();
            let predicted = state.batch_delta(&ps, u, &[i], to);
            state.apply_batch(&mut ps, u, &[i], to);
            assert!((state.objective() - before - predicted).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_from_converged_state_is_a_no_op() {
        let graphs: Vec<_> = (0..6)
            .map(|i| NetgenSpec::new(50, 140).seed(40 + i).generate().unwrap())
            .collect();
        let mut ps = build_ps(&graphs);
        let p = params();
        run_greedy(&mut ps, &p, GreedyMode::Lazy);
        let plan_before = ps.plan();
        let out = super::run_greedy_warm(&mut ps, &p, GreedyMode::Lazy, &mec_obs::NullSink, &[]);
        assert_eq!(out.moves, 0, "a converged placement has no improving move");
        assert_eq!(ps.plan(), plan_before);
    }

    #[test]
    fn warm_start_after_churn_matches_full_quality() {
        // converge on 5 users, remove one and add another, then warm
        // replan; the objective must be no worse than a from-scratch
        // greedy over the same crowd.
        let p = SystemParams {
            server_capacity: 800.0,
            ..params()
        };
        for seed in [1u64, 7, 21] {
            let graphs: Vec<_> = (0..5)
                .map(|i| {
                    NetgenSpec::new(50, 140)
                        .seed(seed * 100 + i)
                        .generate()
                        .unwrap()
                })
                .collect();
            let mut ps = build_ps(&graphs);
            run_greedy(&mut ps, &p, GreedyMode::Lazy);
            ps.remove_user(2);
            let newcomer = NetgenSpec::new(50, 140)
                .seed(seed * 100 + 9)
                .generate()
                .unwrap();
            let compressor =
                Compressor::new(CompressionConfig::new().threshold(ThresholdRule::MeanFactor(1.5)));
            let outcome = compressor.compress(&newcomer);
            let cuts: Vec<Bipartition> = outcome
                .components
                .iter()
                .map(|c| {
                    mec_spectral::SpectralBisector::new()
                        .bisect(c.quotient.graph())
                        .expect("non-empty component")
                        .partition
                })
                .collect();
            ps.add_user(&newcomer, &outcome, &cuts);
            let dirty = [ps.user_count() - 1];
            let warm =
                super::run_greedy_warm(&mut ps, &p, GreedyMode::Lazy, &mec_obs::NullSink, &dirty);

            let mut crowd: Vec<_> = graphs;
            crowd.remove(2);
            crowd.push(newcomer);
            let mut fresh = build_ps(&crowd);
            let full = run_greedy(&mut fresh, &p, GreedyMode::Lazy);
            let denom = full.final_objective.abs().max(1.0);
            assert!(
                warm.final_objective <= full.final_objective + 1e-9 * denom,
                "seed {seed}: warm {} worse than full {}",
                warm.final_objective,
                full.final_objective
            );
        }
    }

    #[test]
    fn parts_coupled_to_pinned_nodes_come_home_when_tx_is_ruinous() {
        // pinned —1000— free: keeping the free node remote means paying
        // the huge pinned-edge transmission forever.
        let mut b = GraphBuilder::new();
        let pin = b.add_pinned_node(1.0);
        let free = b.add_node(1.0);
        b.add_edge(pin, free, 1000.0).unwrap();
        let g = b.build();
        let mut p = params();
        p.tx_power = 1000.0;
        let mut ps = build_ps(std::slice::from_ref(&g));
        let out = run_greedy(&mut ps, &p, GreedyMode::Lazy);
        assert!(ps.parts().iter().all(|q| q.side == Side::Local));
        assert!(out.final_objective <= out.initial_objective);
    }

    #[test]
    fn loose_heavy_work_goes_remote() {
        // two heavy, barely-coupled functions and a fast uncontended
        // server: the search should ship both out.
        let mut b = GraphBuilder::new();
        let x = b.add_node(500.0);
        let y = b.add_node(500.0);
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build();
        let mut ps = build_ps(std::slice::from_ref(&g));
        run_greedy(&mut ps, &params(), GreedyMode::Lazy);
        assert!(
            ps.parts().iter().all(|q| q.side == Side::Remote),
            "heavy loose work should offload entirely"
        );
    }
}
