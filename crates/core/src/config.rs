//! Serialisable pipeline configuration — the file a deployment
//! actually ships.
//!
//! Operators tune the offloader per cell (radio quality, server size,
//! compression aggressiveness) and keep the result under version
//! control. [`PipelineConfig`] captures everything needed to rebuild an
//! [`Offloader`](crate::Offloader) plus the
//! [`SystemParams`](mec_model::SystemParams) to price against, as plain
//! JSON:
//!
//! ```json
//! {
//!   "compression": {
//!     "threshold": { "MeanFactor": 1.5 },
//!     "alpha_threshold": 0.05,
//!     "max_rounds": 50,
//!     "policy": "Bfs",
//!     "parallel": true
//!   },
//!   "strategy": "Spectral",
//!   "greedy": "Lazy",
//!   "system": { "bandwidth": 20.0, "local_capacity": 10.0,
//!               "server_capacity": 2000.0, "local_power": 1.0,
//!               "tx_power": 10.0, "control_overhead": 2.0,
//!               "allocation": "EqualShare" }
//! }
//! ```

use crate::{GreedyMode, Offloader, StrategyKind};
use mec_labelprop::CompressionConfig;
use mec_model::SystemParams;
use serde::{Deserialize, Serialize};

/// Serialisable strategy choice.
///
/// The engine-parallel spectral variant needs a live
/// [`Cluster`](mec_engine::Cluster) and therefore cannot come from a
/// config file; construct it programmatically via
/// [`StrategyKind::SpectralParallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// The paper's spectral pipeline (default).
    #[default]
    Spectral,
    /// Edmonds–Karp max-flow minimum cut.
    MaxFlow,
    /// Kernighan–Lin.
    KernighanLin,
    /// Multilevel coarsen–partition–refine.
    Multilevel,
}

impl From<StrategyChoice> for StrategyKind {
    fn from(c: StrategyChoice) -> Self {
        match c {
            StrategyChoice::Spectral => StrategyKind::Spectral,
            StrategyChoice::MaxFlow => StrategyKind::MaxFlow,
            StrategyChoice::KernighanLin => StrategyKind::KernighanLin,
            StrategyChoice::Multilevel => StrategyKind::Multilevel,
        }
    }
}

/// Everything a deployment needs to rebuild its offloader and pricing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PipelineConfig {
    /// Algorithm 1 knobs.
    #[serde(default)]
    pub compression: CompressionConfig,
    /// Cut backend.
    #[serde(default)]
    pub strategy: StrategyChoice,
    /// Greedy driver.
    #[serde(default)]
    pub greedy: GreedyMode,
    /// MEC pricing constants.
    #[serde(default)]
    pub system: SystemParams,
}

impl PipelineConfig {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message for malformed
    /// input.
    pub fn from_json_str(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Renders the configuration as pretty JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Builds the configured [`Offloader`].
    pub fn offloader(&self) -> Offloader {
        Offloader::builder()
            .compression(self.compression.clone())
            .strategy(self.strategy.into())
            .greedy_mode(self.greedy)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_model::{Scenario, UserWorkload};
    use mec_netgen::NetgenSpec;

    #[test]
    fn default_config_round_trips_through_json() {
        let config = PipelineConfig::default();
        let json = config.to_json_string();
        let back = PipelineConfig::from_json_str(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn partial_json_fills_defaults() {
        let config = PipelineConfig::from_json_str(r#"{ "strategy": "KernighanLin" }"#).unwrap();
        assert_eq!(config.strategy, StrategyChoice::KernighanLin);
        assert_eq!(config.greedy, GreedyMode::Lazy);
        assert_eq!(config.compression, CompressionConfig::default());
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = PipelineConfig::from_json_str("{ nope }").unwrap_err();
        assert!(!err.is_empty());
        let err2 = PipelineConfig::from_json_str(r#"{ "strategy": "Quantum" }"#).unwrap_err();
        assert!(
            err2.contains("Quantum") || err2.contains("variant"),
            "{err2}"
        );
    }

    #[test]
    fn configured_offloader_solves_and_matches_direct_construction() {
        let json = r#"{
            "strategy": "MaxFlow",
            "greedy": "Exhaustive",
            "system": { "bandwidth": 25.0, "local_capacity": 10.0,
                        "server_capacity": 1500.0, "local_power": 1.0,
                        "tx_power": 10.0, "control_overhead": 2.0,
                        "allocation": "Fifo" }
        }"#;
        let config = PipelineConfig::from_json_str(json).unwrap();
        let g = NetgenSpec::new(80, 220).seed(3).generate().unwrap();
        let scenario = Scenario::new(config.system).with_user(UserWorkload::new("u", g));
        let from_config = config.offloader().solve(&scenario).unwrap();
        let direct = Offloader::builder()
            .strategy(StrategyKind::MaxFlow)
            .greedy_mode(GreedyMode::Exhaustive)
            .build()
            .solve(&scenario)
            .unwrap();
        assert_eq!(from_config.plan, direct.plan);
        assert_eq!(from_config.strategy, "max-flow-min-cut");
    }

    #[test]
    fn every_strategy_choice_maps_to_a_kind() {
        for (choice, name) in [
            (StrategyChoice::Spectral, "spectral"),
            (StrategyChoice::MaxFlow, "max-flow-min-cut"),
            (StrategyChoice::KernighanLin, "kernighan-lin"),
            (StrategyChoice::Multilevel, "multilevel"),
        ] {
            let kind: StrategyKind = choice.into();
            assert_eq!(kind.build().name(), name);
        }
    }
}
