//! COPMECS — the paper's offloading pipeline, end to end.
//!
//! Given a multi-user [`Scenario`](mec_model::Scenario), the
//! [`Offloader`] executes the three stages of the paper's method:
//!
//! 1. **Compression** (Algorithm 1, [`mec_labelprop`]): each user's
//!    function data-flow graph loses its unoffloadable functions, is
//!    split at component boundaries, and highly coupled functions are
//!    fused by label propagation.
//! 2. **Minimum-cut search** (§III-B): every compressed sub-graph is
//!    bipartitioned by a pluggable [`CutStrategy`] — the paper's
//!    spectral method, or the max-flow / Kernighan–Lin baselines it
//!    compares against.
//! 3. **Scheme generation** (Algorithm 2): all parts start on the edge
//!    server; a greedy loop repeatedly moves the part whose relocation
//!    most decreases the combined objective `E + T`, under the shared
//!    server capacity, until no move helps.
//!
//! The result is an [`OffloadReport`]: one
//! [`Bipartition`](mec_graph::Bipartition) per user plus the priced
//! evaluation and per-stage timings.
//!
//! # Example
//!
//! ```
//! use copmecs_core::{Offloader, StrategyKind};
//! use mec_model::{Scenario, SystemParams, UserWorkload};
//! use mec_netgen::NetgenSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = NetgenSpec::new(120, 400).seed(1).generate()?;
//! let scenario = Scenario::new(SystemParams::default())
//!     .with_user(UserWorkload::new("u0", g));
//!
//! let report = Offloader::builder()
//!     .strategy(StrategyKind::Spectral)
//!     .build()
//!     .solve(&scenario)?;
//! let baseline = scenario.users()[0].all_local_plan();
//! let all_local = scenario.evaluate(&[baseline])?;
//! assert!(report.evaluation.totals.objective() <= all_local.totals.objective());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod exec;
mod frontend;
mod greedy;
mod offloader;
mod parts;
mod service;
mod session;
mod strategy;

pub use config::{PipelineConfig, StrategyChoice};
pub use exec::{force_serial, ExecBackend, ExecCtx, ExecScope};
pub use greedy::{GreedyMode, GreedyOutcome};
pub use offloader::{OffloadReport, Offloader, OffloaderBuilder, StageTimings};
pub use parts::{Part, PartSystem};
pub use service::{OffloadService, ServiceReport};
pub use session::{OffloadSession, ReplanMode};
pub use strategy::{CutError, CutStrategy, StrategyKind};

use std::error::Error;
use std::fmt;

/// Errors raised by the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The cut stage failed on a compressed sub-graph.
    Cut(CutError),
    /// The final plan failed model validation (internal invariant —
    /// indicates a bug if it ever surfaces).
    Model(mec_model::ModelError),
    /// The engine cluster failed while running a distributed stage
    /// (a task panicked on a worker, or the pool shut down).
    Engine(mec_engine::EngineError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cut(e) => write!(f, "cut stage failed: {e}"),
            PipelineError::Model(e) => write!(f, "plan evaluation failed: {e}"),
            PipelineError::Engine(e) => write!(f, "engine stage failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Cut(e) => Some(e),
            PipelineError::Model(e) => Some(e),
            PipelineError::Engine(e) => Some(e),
        }
    }
}

impl From<mec_engine::EngineError> for PipelineError {
    fn from(e: mec_engine::EngineError) -> Self {
        PipelineError::Engine(e)
    }
}

impl From<CutError> for PipelineError {
    fn from(e: CutError) -> Self {
        PipelineError::Cut(e)
    }
}

impl From<mec_model::ModelError> for PipelineError {
    fn from(e: mec_model::ModelError) -> Self {
        PipelineError::Model(e)
    }
}
