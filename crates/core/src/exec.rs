//! The unified execution context.
//!
//! Before `ExecCtx` existed the pipeline's front door was forked per
//! capability: `solve` vs `solve_on`, `join` vs `join_many`, a scratch
//! arena threaded by hand in some paths and re-allocated in others, and
//! telemetry epilogues (finish the span, record the `*_nanos`
//! histogram, flush the sink) copy-pasted at every exit — which meant
//! every `?` early-return was a site where one of those copies could
//! (and did) go missing. [`ExecCtx`] collapses the fork: one context
//! carries the backend (serial with a [`CutScratch`] arena, or an
//! engine [`Cluster`]), the trace sink, and the RNG seed, and every
//! pipeline stage takes the context instead of picking a path.
//!
//! The telemetry epilogue is RAII: [`ExecCtx::scope`] returns an
//! [`ExecScope`] guard whose drop handler finishes the span, records
//! the histogram, and flushes the sink on **all** exits — ordinary
//! returns, `?` error propagation, and panics alike — so the
//! flush-skipped-on-error bug class cannot recur one call site at a
//! time.
//!
//! A future async or work-stealing backend slots in as a third
//! [`ExecBackend`] variant: algorithm code already dispatches on the
//! context, so no solve/session/front-end signature changes.

use mec_engine::Cluster;
use mec_obs::{SpanId, TraceSink};
use mec_spectral::CutScratch;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A duration as a histogram sample (nanoseconds, saturating).
pub(crate) fn duration_sample(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// `true` when `MEC_FORCE_SERIAL` is set (non-empty, not `"0"`) in the
/// environment: every [`ExecCtx`] then runs its serial backend even
/// when a cluster is configured. This is the CI lever that runs the
/// whole test suite once per backend path, so a divergence between the
/// two can never reland silently. The value is read once per process.
pub fn force_serial() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("MEC_FORCE_SERIAL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Where the per-user front-end work of a pipeline call runs.
#[derive(Debug)]
pub enum ExecBackend {
    /// Users are prepared on the calling thread, threading one
    /// [`CutScratch`] arena through every cut of every user so the
    /// spectral backends recycle their CSR snapshot, Krylov basis, and
    /// sweep buffers across the whole batch.
    Serial {
        /// The context-owned cut arena (boxed: the arena is ~400 bytes
        /// of pooled-buffer headers, and contexts move by value through
        /// the session builders).
        scratch: Box<CutScratch>,
    },
    /// Users are fanned out over an engine cluster, one stage task per
    /// user (each task owns its own arena — tasks run concurrently).
    Cluster(Arc<Cluster>),
}

/// One execution context for the whole pipeline: backend, trace sink,
/// and RNG seed. Construct with [`ExecCtx::serial`] /
/// [`ExecCtx::cluster`], configure with the `with_*` builders, and
/// pass `&mut` to [`Offloader::solve_with`](crate::Offloader::solve_with)
/// (or hold one inside an [`OffloadSession`](crate::OffloadSession)).
///
/// The context can outlive a single call: keeping one `ExecCtx` across
/// repeated serial solves reuses the scratch arena's high-water
/// buffers batch to batch.
#[derive(Debug)]
pub struct ExecCtx {
    backend: ExecBackend,
    sink: Arc<dyn TraceSink>,
    seed: u64,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecCtx {
    /// A serial context with a fresh arena, the [`mec_obs::NullSink`],
    /// and seed 0.
    pub fn serial() -> Self {
        ExecCtx {
            backend: ExecBackend::Serial {
                scratch: Box::default(),
            },
            sink: mec_obs::null_sink(),
            seed: 0,
        }
    }

    /// A cluster-backed context. Under [`force_serial`] the cluster is
    /// ignored and a serial context is returned instead — same plans,
    /// different wall-clock — so one environment variable flips every
    /// context in the process onto the other backend path.
    pub fn cluster(cluster: Arc<Cluster>) -> Self {
        Self::serial().into_cluster(cluster)
    }

    /// Swaps the backend to `cluster` (respecting [`force_serial`]),
    /// keeping the sink and seed.
    pub fn into_cluster(mut self, cluster: Arc<Cluster>) -> Self {
        if !force_serial() {
            self.backend = ExecBackend::Cluster(cluster);
        }
        self
    }

    /// Routes all pipeline telemetry recorded under this context to
    /// `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Sets the RNG seed carried by this context. Nothing in the
    /// deterministic pipeline consumes it today; randomized stages
    /// (the ROADMAP's anytime optimizer, sampled workloads) must draw
    /// their generators from here so a context fixes the whole run.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The trace sink every stage under this context records into.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The RNG seed carried by this context.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the front-end fans out over a cluster.
    pub fn is_cluster(&self) -> bool {
        matches!(self.backend, ExecBackend::Cluster(_))
    }

    /// Short backend label for reports and test matrices.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            ExecBackend::Serial { .. } => "serial",
            ExecBackend::Cluster(_) => "cluster",
        }
    }

    /// Splits the context into its backend and sink — the borrow shape
    /// the front-end dispatch needs (mutable arena + shared sink).
    pub(crate) fn backend_and_sink(&mut self) -> (&mut ExecBackend, &Arc<dyn TraceSink>) {
        (&mut self.backend, &self.sink)
    }

    /// Opens the RAII telemetry scope for one pipeline operation:
    /// enters the span `name`, and on *every* exit — [`finish`]
    /// ([`ExecScope::finish`]), `?` error propagation, or a panic
    /// unwinding through the caller — finishes the span, records the
    /// elapsed time into the histogram `histogram`, and flushes the
    /// sink so buffered (sharded) records become visible. When the
    /// backend is a cluster built with its own telemetry sink
    /// ([`Cluster::with_telemetry`]), that sink is flushed too, so
    /// worker-side shard records drain even when the operation failed
    /// before reassembly.
    ///
    /// Both names are `&'static str` because the sink interface interns
    /// them; pair them as `"op"` / `"op_nanos"` by convention.
    pub fn scope(&self, name: &'static str, histogram: &'static str) -> ExecScope {
        let worker_sink = match &self.backend {
            ExecBackend::Cluster(c) => c
                .telemetry_sink()
                .filter(|s| !Arc::ptr_eq(s, &self.sink))
                .cloned(),
            ExecBackend::Serial { .. } => None,
        };
        ExecScope {
            id: self.sink.span_enter(name),
            sink: Arc::clone(&self.sink),
            worker_sink,
            histogram,
            start: Instant::now(),
            done: false,
        }
    }
}

/// The exit-safe telemetry epilogue of one pipeline operation; see
/// [`ExecCtx::scope`]. Dropping the guard (including during `?` error
/// returns and panics) runs the same epilogue as
/// [`finish`](ExecScope::finish).
#[derive(Debug)]
pub struct ExecScope {
    sink: Arc<dyn TraceSink>,
    /// The cluster's own telemetry sink, when distinct from `sink` —
    /// flushed alongside it so worker shard records always drain.
    worker_sink: Option<Arc<dyn TraceSink>>,
    id: SpanId,
    histogram: &'static str,
    start: Instant,
    done: bool,
}

impl ExecScope {
    fn epilogue(&mut self) -> Duration {
        self.done = true;
        self.sink.span_exit(self.id);
        let elapsed = self.start.elapsed();
        self.sink
            .histogram_record(self.histogram, duration_sample(elapsed));
        self.sink.flush();
        if let Some(ws) = &self.worker_sink {
            ws.flush();
        }
        elapsed
    }

    /// Runs the epilogue now and returns the measured elapsed time
    /// (identical whether the sink records spans or discards them, so
    /// `StageTimings` can be derived from it).
    pub fn finish(mut self) -> Duration {
        self.epilogue()
    }
}

impl Drop for ExecScope {
    fn drop(&mut self) {
        if !self.done {
            self.epilogue();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::Recorder;

    #[test]
    fn serial_ctx_defaults() {
        let ctx = ExecCtx::serial();
        assert!(!ctx.is_cluster());
        assert_eq!(ctx.backend_name(), "serial");
        assert_eq!(ctx.seed(), 0);
        assert_eq!(ctx.with_seed(7).seed(), 7);
    }

    #[test]
    fn cluster_ctx_reports_backend() {
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let ctx = ExecCtx::cluster(cluster);
        if force_serial() {
            assert_eq!(ctx.backend_name(), "serial");
        } else {
            assert!(ctx.is_cluster());
            assert_eq!(ctx.backend_name(), "cluster");
        }
    }

    #[test]
    fn scope_records_span_histogram_and_flush_on_finish() {
        let rec = Arc::new(Recorder::new());
        let ctx = ExecCtx::serial().with_sink(Arc::clone(&rec) as Arc<dyn TraceSink>);
        let scope = ctx.scope("exec.test", "exec.test_nanos");
        let elapsed = scope.finish();
        assert!(elapsed >= Duration::ZERO);
        assert!(rec.spans().iter().any(|s| s.name == "exec.test"));
        let snap = rec.metrics().snapshot();
        assert_eq!(
            snap.histogram("exec.test_nanos")
                .expect("histogram")
                .count(),
            1
        );
    }

    #[test]
    fn scope_epilogue_runs_on_drop_and_panic() {
        let rec = Arc::new(Recorder::new());
        let ctx = ExecCtx::serial().with_sink(Arc::clone(&rec) as Arc<dyn TraceSink>);
        // plain drop (the `?` early-return shape)
        drop(ctx.scope("exec.dropped", "exec.dropped_nanos"));
        // unwind (the panic shape)
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _scope = ctx.scope("exec.panicked", "exec.panicked_nanos");
            panic!("boom");
        }));
        assert!(caught.is_err());
        let snap = rec.metrics().snapshot();
        for (span, hist) in [
            ("exec.dropped", "exec.dropped_nanos"),
            ("exec.panicked", "exec.panicked_nanos"),
        ] {
            assert!(
                rec.spans()
                    .iter()
                    .any(|s| s.name == span && s.end_ns.is_some()),
                "span {span} must be finished"
            );
            assert_eq!(
                snap.histogram(hist).expect("histogram").count(),
                1,
                "histogram {hist} must be recorded"
            );
        }
    }
}
