//! Sharded streaming service: one edge site, many sessions.
//!
//! A single [`OffloadSession`] replan walks its whole crowd at least
//! once (pricing is `O(users)` even when the warm-started greedy
//! applies `O(churn)` moves), so a cell tracking 10⁵–10⁶ users wants
//! the crowd split. [`OffloadService`] hashes users across `K`
//! session shards, each with its own [`ExecCtx`]; a churn event dirties
//! exactly one shard, and [`replan`](OffloadService::replan) re-solves
//! **only the dirty shards**, reusing each clean shard's cached report.
//! The edge server's capacity is partitioned evenly across shards
//! (`server_capacity / K` per shard), which approximates the
//! full-crowd coupling by letting users contend only within their
//! shard — the standard shard-local relaxation; at the crowd sizes the
//! service targets every shard is busy, so the per-shard sharer count
//! tracks the global one.
//!
//! Every event records a `service.*_nanos` histogram and bumps a
//! `service.*` counter on the service sink, mirroring the session's
//! own `session.*` telemetry one level up.

use crate::exec::duration_sample;
use crate::greedy::GreedyMode;
use crate::session::{OffloadSession, ReplanMode};
use crate::strategy::StrategyKind;
use crate::{OffloadReport, PipelineError};
use mec_engine::Cluster;
use mec_graph::Graph;
use mec_labelprop::CompressionConfig;
use mec_model::SystemParams;
use mec_obs::{span, FieldValue, TraceSink};
use std::sync::Arc;

/// One session shard plus its replan cache.
struct Shard {
    session: OffloadSession,
    /// Set by any churn event routed here; cleared when
    /// [`OffloadService::replan`] re-solves the shard.
    dirty: bool,
    /// The shard's report from the last replan that touched it.
    cached: Option<OffloadReport>,
}

/// The crowd-consistent aggregate over all shards.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ServiceReport {
    /// Users tracked across every shard.
    pub users: usize,
    /// Summed objective `E + T` over all shards.
    pub objective: f64,
    /// Summed energy term.
    pub energy: f64,
    /// Summed time term.
    pub time: f64,
    /// Shards re-solved by this replan (the rest served their cache).
    pub replanned_shards: usize,
    /// Total shard count.
    pub shards: usize,
}

/// A sharded, long-lived offloading service.
///
/// # Example
///
/// ```
/// use copmecs_core::OffloadService;
/// use mec_model::SystemParams;
/// use mec_netgen::NetgenSpec;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut service = OffloadService::new(SystemParams::default(), 4);
/// for i in 0..16u64 {
///     let g = Arc::new(NetgenSpec::new(40, 100).seed(i).generate()?);
///     service.join(format!("user-{i}"), g)?;
/// }
/// let report = service.replan()?;
/// assert_eq!(report.users, 16);
/// service.leave("user-3");
/// // only user-3's shard is dirty: the other shards serve their cache
/// let after = service.replan()?;
/// assert!(after.objective < report.objective);
/// # Ok(())
/// # }
/// ```
pub struct OffloadService {
    shards: Vec<Shard>,
    sink: Arc<dyn TraceSink>,
}

impl OffloadService {
    /// A service with `shards` default-configured sessions (spectral
    /// strategy, lazy greedy, delta replanning), splitting
    /// `params.server_capacity` evenly across shards.
    pub fn new(params: SystemParams, shards: usize) -> Self {
        Self::with_config(
            params,
            CompressionConfig::default(),
            StrategyKind::Spectral,
            GreedyMode::Lazy,
            shards,
        )
    }

    /// A fully configured service. `shards` is clamped to at least 1.
    pub fn with_config(
        params: SystemParams,
        compression: CompressionConfig,
        strategy: StrategyKind,
        greedy_mode: GreedyMode,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let mut shard_params = params;
        shard_params.server_capacity = params.server_capacity / shards as f64;
        let shards = (0..shards)
            .map(|_| Shard {
                session: OffloadSession::with_config(
                    shard_params,
                    compression.clone(),
                    strategy.clone(),
                    greedy_mode,
                ),
                dirty: false,
                cached: None,
            })
            .collect();
        OffloadService {
            shards,
            sink: mec_obs::null_sink(),
        }
    }

    /// Runs every shard's admissions on `cluster` (the shards share
    /// the pool; each keeps its own [`ExecCtx`] wrapper).
    pub fn with_cluster(mut self, cluster: Arc<Cluster>) -> Self {
        for shard in &mut self.shards {
            let session = std::mem::replace(
                &mut shard.session,
                OffloadSession::new(SystemParams::default()),
            );
            shard.session = session.with_cluster(Arc::clone(&cluster));
        }
        self
    }

    /// Routes service-level telemetry (`service.*` counters, events and
    /// histograms) **and** every shard session's telemetry to `sink`.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        for shard in &mut self.shards {
            let session = std::mem::replace(
                &mut shard.session,
                OffloadSession::new(SystemParams::default()),
            );
            shard.session = session.with_trace_sink(Arc::clone(&sink));
        }
        self.sink = sink;
        self
    }

    /// Sets every shard session's [`ReplanMode`].
    pub fn with_replan_mode(mut self, mode: ReplanMode) -> Self {
        for shard in &mut self.shards {
            let session = std::mem::replace(
                &mut shard.session,
                OffloadSession::new(SystemParams::default()),
            );
            shard.session = session.with_replan_mode(mode);
            shard.cached = None;
        }
        self
    }

    /// Sets every shard session's delta-replan drift bound.
    pub fn with_drift_limit(mut self, limit: f64) -> Self {
        for shard in &mut self.shards {
            let session = std::mem::replace(
                &mut shard.session,
                OffloadSession::new(SystemParams::default()),
            );
            shard.session = session.with_drift_limit(limit);
        }
        self
    }

    /// Number of session shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Users tracked across all shards.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.session.user_count()).sum()
    }

    /// `true` if the user's home shard tracks them.
    pub fn contains(&self, name: &str) -> bool {
        self.shards[self.route(name)].session.contains(name)
    }

    /// The shard index `name` hashes to.
    pub fn shard_of(&self, name: &str) -> usize {
        self.route(name)
    }

    /// The last report computed for shard `i`, if it has ever been
    /// replanned (`None` for out-of-range `i` too).
    pub fn shard_report(&self, i: usize) -> Option<&OffloadReport> {
        self.shards.get(i).and_then(|s| s.cached.as_ref())
    }

    /// FNV-1a over the user name — stable across runs, so benchmarks
    /// and tests shard deterministically.
    fn route(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Admits (or, for a known name, replaces) a user on their home
    /// shard and marks it dirty.
    ///
    /// # Errors
    ///
    /// Whatever [`OffloadSession::join`] reports; on error the shard
    /// is unchanged and stays clean.
    pub fn join(
        &mut self,
        name: impl Into<String>,
        graph: Arc<Graph>,
    ) -> Result<(), PipelineError> {
        let name = name.into();
        let s = span(self.sink.as_ref(), "service.join");
        let shard = self.route(&name);
        let result = self.shards[shard].session.join(name, graph);
        if result.is_ok() {
            self.shards[shard].dirty = true;
            self.sink.counter_add("service.joins", 1);
        }
        self.sink
            .histogram_record("service.join_nanos", duration_sample(s.finish()));
        result
    }

    /// Admits a batch, fanning it out into one
    /// [`OffloadSession::join_many`] per home shard. Shards join
    /// all-or-nothing individually, but a failure in one shard's batch
    /// does not roll back shards already admitted; the first error (in
    /// shard order) is returned.
    ///
    /// # Errors
    ///
    /// Whatever [`OffloadSession::join_many`] reports.
    pub fn join_many(
        &mut self,
        users: impl IntoIterator<Item = (String, Arc<Graph>)>,
    ) -> Result<(), PipelineError> {
        let s = span(self.sink.as_ref(), "service.join_many");
        let mut per_shard: Vec<Vec<(String, Arc<Graph>)>> = vec![Vec::new(); self.shards.len()];
        let mut joined = 0u64;
        for (name, graph) in users {
            per_shard[self.route(&name)].push((name, graph));
            joined += 1;
        }
        let mut result = Ok(());
        for (i, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match self.shards[i].session.join_many(batch) {
                Ok(()) => self.shards[i].dirty = true,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if result.is_ok() {
            self.sink.counter_add("service.joins", joined);
        }
        self.sink
            .histogram_record("service.join_many_nanos", duration_sample(s.finish()));
        result
    }

    /// Re-submits a known user's (possibly changed) workload: their
    /// home shard re-runs the front-end and re-seats the slot in
    /// place. Returns `Ok(false)` — without admitting — when the user
    /// is unknown, so callers can distinguish churn from arrival.
    ///
    /// # Errors
    ///
    /// Whatever [`OffloadSession::join`] reports.
    pub fn resubmit(
        &mut self,
        name: impl Into<String>,
        graph: Arc<Graph>,
    ) -> Result<bool, PipelineError> {
        let name = name.into();
        let s = span(self.sink.as_ref(), "service.resubmit");
        let shard = self.route(&name);
        if !self.shards[shard].session.contains(&name) {
            self.sink
                .histogram_record("service.resubmit_nanos", duration_sample(s.finish()));
            return Ok(false);
        }
        let result = self.shards[shard].session.join(name, graph);
        if result.is_ok() {
            self.shards[shard].dirty = true;
            self.sink.counter_add("service.resubmits", 1);
        }
        self.sink
            .histogram_record("service.resubmit_nanos", duration_sample(s.finish()));
        result.map(|()| true)
    }

    /// Removes a user from their home shard; `false` when unknown.
    pub fn leave(&mut self, name: &str) -> bool {
        let s = span(self.sink.as_ref(), "service.leave");
        let shard = self.route(name);
        let left = self.shards[shard].session.leave(name);
        if left {
            self.shards[shard].dirty = true;
            self.sink.counter_add("service.leaves", 1);
        }
        self.sink
            .histogram_record("service.leave_nanos", duration_sample(s.finish()));
        left
    }

    /// Removes a batch of users, one [`OffloadSession::leave_many`]
    /// call per home shard. Returns how many actually left.
    pub fn leave_many<I, S>(&mut self, names: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let s = span(self.sink.as_ref(), "service.leave_many");
        let mut per_shard: Vec<Vec<String>> = vec![Vec::new(); self.shards.len()];
        for name in names {
            let name = name.as_ref();
            per_shard[self.route(name)].push(name.to_string());
        }
        let mut left = 0;
        for (i, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let removed = self.shards[i].session.leave_many(batch);
            if removed > 0 {
                self.shards[i].dirty = true;
            }
            left += removed;
        }
        if left > 0 {
            self.sink.counter_add("service.leaves", left as u64);
        }
        self.sink
            .histogram_record("service.leave_many_nanos", duration_sample(s.finish()));
        left
    }

    /// Re-plans every **dirty** shard (clean shards serve their cached
    /// report) and aggregates the crowd-consistent totals.
    ///
    /// # Errors
    ///
    /// The first failing shard's error; shards replanned before it
    /// keep their fresh caches.
    pub fn replan(&mut self) -> Result<ServiceReport, PipelineError> {
        let s = span(self.sink.as_ref(), "service.replan");
        let mut replanned = 0usize;
        for shard in &mut self.shards {
            if shard.dirty || shard.cached.is_none() {
                shard.cached = Some(shard.session.replan()?);
                shard.dirty = false;
                replanned += 1;
            }
        }
        let mut report = ServiceReport {
            users: 0,
            objective: 0.0,
            energy: 0.0,
            time: 0.0,
            replanned_shards: replanned,
            shards: self.shards.len(),
        };
        for shard in &self.shards {
            let cached = shard.cached.as_ref().expect("every shard replanned above");
            report.users += shard.session.user_count();
            report.energy += cached.evaluation.totals.energy;
            report.time += cached.evaluation.totals.time;
            report.objective += cached.evaluation.totals.objective();
        }
        self.sink.counter_add("service.replans", 1);
        if self.sink.enabled() {
            self.sink.event(
                "service.replan",
                &[
                    ("users", FieldValue::from(report.users)),
                    ("replanned_shards", FieldValue::from(replanned)),
                ],
            );
        }
        self.sink
            .histogram_record("service.replan_nanos", duration_sample(s.finish()));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_netgen::NetgenSpec;

    fn graph(seed: u64) -> Arc<Graph> {
        Arc::new(NetgenSpec::new(60, 160).seed(seed).generate().unwrap())
    }

    fn filled(shards: usize, users: u64) -> OffloadService {
        let mut service = OffloadService::new(SystemParams::default(), shards);
        for i in 0..users {
            service.join(format!("u{i}"), graph(i + 1)).unwrap();
        }
        service
    }

    #[test]
    fn routes_users_deterministically() {
        let service = filled(4, 12);
        let other = filled(4, 12);
        for i in 0..12 {
            let name = format!("u{i}");
            assert_eq!(service.shard_of(&name), other.shard_of(&name));
            assert!(service.contains(&name));
        }
        assert_eq!(service.user_count(), 12);
        assert!(!service.contains("ghost"));
    }

    #[test]
    fn replan_only_touches_dirty_shards() {
        let mut service = filled(4, 16);
        let first = service.replan().unwrap();
        assert_eq!(first.replanned_shards, 4);
        assert_eq!(first.users, 16);

        // no churn: everything served from cache
        let idle = service.replan().unwrap();
        assert_eq!(idle.replanned_shards, 0);
        assert_eq!(idle.objective, first.objective);

        // one departure dirties exactly one shard
        assert!(service.leave("u5"));
        let after = service.replan().unwrap();
        assert_eq!(after.replanned_shards, 1);
        assert_eq!(after.users, 15);
        assert!(after.objective < first.objective);
    }

    #[test]
    fn aggregate_matches_shard_reports() {
        let mut service = filled(3, 9);
        let report = service.replan().unwrap();
        let mut objective = 0.0;
        let mut users = 0;
        for i in 0..service.shard_count() {
            let shard = service.shard_report(i).expect("replanned");
            objective += shard.evaluation.totals.objective();
            users += shard.plan.len();
        }
        assert_eq!(users, report.users);
        assert!((objective - report.objective).abs() < 1e-9);
        assert!(service.shard_report(99).is_none());
    }

    #[test]
    fn resubmit_reseats_known_users_only() {
        let mut service = filled(2, 4);
        service.replan().unwrap();
        assert!(!service.resubmit("ghost", graph(50)).unwrap());
        assert_eq!(service.user_count(), 4);
        let bigger = Arc::new(NetgenSpec::new(120, 360).seed(77).generate().unwrap());
        assert!(service.resubmit("u2", bigger.clone()).unwrap());
        assert_eq!(service.user_count(), 4);
        let report = service.replan().unwrap();
        assert_eq!(report.replanned_shards, 1);
        let home = service.shard_of("u2");
        let shard = service.shard_report(home).unwrap();
        assert!(shard.plan.iter().any(|p| p.len() == bigger.node_count()));
    }

    #[test]
    fn batched_entrypoints_match_singles() {
        let mut singles = filled(3, 8);
        let mut batched = OffloadService::new(SystemParams::default(), 3);
        batched
            .join_many((0..8u64).map(|i| (format!("u{i}"), graph(i + 1))))
            .unwrap();
        assert_eq!(singles.user_count(), batched.user_count());
        let a = singles.replan().unwrap();
        let b = batched.replan().unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);

        assert_eq!(singles.leave_many(["u0", "u3", "ghost"]), 2);
        assert!(batched.leave("u0"));
        assert!(batched.leave("u3"));
        let a = singles.replan().unwrap();
        let b = batched.replan().unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
        assert_eq!(a.users, 6);
    }
}
