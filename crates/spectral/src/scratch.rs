//! The reusable cut arena.
//!
//! The paper's dominant cost is the spectral stage — thousands of
//! Laplacian–vector products per cut — and before this arena existed
//! every cut of every component of every user re-allocated its CSR
//! snapshot, its Krylov basis, and its sweep buffers from a cold heap.
//! [`CutScratch`] owns all of those; threading one instance through
//! [`SpectralBisector::bisect_reusing`](crate::SpectralBisector::bisect_reusing)
//! or [`RecursiveBisector::partition_reusing`](crate::RecursiveBisector::partition_reusing)
//! makes every cut after the first allocation-free in the eigensolver's
//! inner loop (pinned by `tests/alloc_budget.rs`).

use mec_graph::CsrAdjacency;
use mec_linalg::LanczosScratch;

/// Reusable buffers for repeated spectral cuts.
///
/// One arena serves any sequence of graphs: buffers grow to the
/// high-water mark and are recycled from then on. The arena is `Send`,
/// so a cluster task can own one and reuse it across every component
/// it cuts — but it is deliberately not `Sync`-shared: each worker
/// threads its own. In the pipeline the arena's owner is the
/// execution context: `copmecs_core::ExecCtx`'s serial backend embeds
/// one `CutScratch` that survives across solves, and its cluster
/// backend gives each stage task a private arena.
#[derive(Debug, Default)]
pub struct CutScratch {
    /// Krylov-recurrence buffer pool (basis vectors, work vectors).
    pub(crate) lanczos: LanczosScratch,
    /// Reusable CSR snapshot of the graph currently being cut.
    pub(crate) csr: CsrAdjacency,
    /// Reusable compact CSR of the subset currently being cut
    /// (recursive bisection compacts each [`mec_graph::CsrView`] here
    /// so the eigensolver iterates on a dense-rowed CSR instead of
    /// re-filtering parent rows every matrix–vector product).
    pub(crate) csr_sub: CsrAdjacency,
    /// Sweep / median node orderings.
    pub(crate) order: Vec<usize>,
    /// Sweep membership flags.
    pub(crate) local: Vec<bool>,
    /// Staged warm-start vector (consumed by the next cut when the
    /// bisector's `LanczosOptions::warm_start` is set).
    pub(crate) warm: Vec<f64>,
    /// Parent → local index map for CSR views (recursive bisection).
    pub(crate) to_local: Vec<u32>,
    /// Pool of node-subset index buffers (recursive bisection).
    pub(crate) idx_pool: Vec<Vec<u32>>,
    /// Pool of float buffers (child warm-start vectors).
    pub(crate) f64_pool: Vec<Vec<f64>>,
}

impl CutScratch {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `vals` as the warm-start seed for the next
    /// [`bisect_reusing`](crate::SpectralBisector::bisect_reusing)
    /// call. The seed is consumed (cleared) by that call and only
    /// honoured when the bisector's Lanczos options set `warm_start`
    /// *and* the length matches the graph being cut — a stale or
    /// mismatched seed is ignored, never an error.
    pub fn stage_warm_start(&mut self, vals: &[f64]) {
        self.warm.clear();
        self.warm.extend_from_slice(vals);
    }

    /// Discards any staged warm-start seed.
    pub fn clear_warm_start(&mut self) {
        self.warm.clear();
    }

    /// Borrows the Lanczos pool together with the staged warm seed —
    /// the split keeps both usable at once.
    pub(crate) fn lanczos_and_warm(&mut self) -> (&mut LanczosScratch, &[f64]) {
        (&mut self.lanczos, &self.warm)
    }

    /// Checks an index buffer out of the pool.
    pub(crate) fn checkout_idx(&mut self) -> Vec<u32> {
        let mut buf = self.idx_pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns an index buffer to the pool.
    pub(crate) fn retire_idx(&mut self, buf: Vec<u32>) {
        self.idx_pool.push(buf);
    }

    /// Checks a float buffer out of the pool.
    pub(crate) fn checkout_f64(&mut self) -> Vec<f64> {
        let mut buf = self.f64_pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a float buffer to the pool.
    pub(crate) fn retire_f64(&mut self, buf: Vec<f64>) {
        self.f64_pool.push(buf);
    }
}
