//! Fiedler-vector bipartitioning.

use crate::laplacian::CsrLaplacian;
use crate::{CutScratch, SpectralError};
use mec_engine::{Cluster, ParallelLaplacian};
use mec_graph::{Bipartition, CsrAdjacency, Graph, NodeId, Side};
use mec_linalg::{kernels, smallest_eigenpairs_with, Eigenpair, LanczosOptions};
use mec_obs::{FieldValue, TraceSink};
use std::sync::Arc;

/// Default node count below which a cluster-configured bisector still
/// solves serially: shipping a 3-node Laplacian to the pool costs more
/// than the product itself. Matches the eigensolver's dense cutoff —
/// below it Lanczos never iterates, so a distributed operator would
/// only pay stage round-trips without amortising them.
pub(crate) const DEFAULT_SERIAL_CUTOFF: usize = 32;

/// How the Fiedler vector is turned into two node sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitRule {
    /// Nodes with non-negative Fiedler components go remote, the rest
    /// stay local — the paper's `q_i = ±1` indicator (default). On
    /// module-structured workloads the sign boundary tracks the true
    /// cluster boundary and consistently beats the sweep variants in
    /// end-to-end objective (see the `ablate` experiment). Falls back
    /// to [`Median`](SplitRule::Median) if numerics put every node on
    /// one side.
    #[default]
    Sign,
    /// Ratio-cut sweep: sort nodes by Fiedler component and take the
    /// prefix split minimising `cut / (|A| · |B|)` — the classic
    /// spectral-clustering objective. More robust than [`Sign`](SplitRule::Sign) on
    /// graphs without clean module structure.
    RatioSweep,
    /// Minimum-weight sweep: the prefix split with the smallest cut
    /// weight, regardless of balance. Matches the exact minimum cut on
    /// well-separated graphs but tends to peel single nodes.
    Sweep,
    /// Split at the median component: both halves are guaranteed
    /// non-empty (sizes differ by at most one).
    Median,
}

/// The result of a spectral bisection.
#[derive(Debug, Clone)]
pub struct SpectralCut {
    /// Node assignment (Fiedler-positive side is
    /// [`Side::Remote`](mec_graph::Side)).
    pub partition: Bipartition,
    /// The second-smallest Laplacian eigenvalue `λ₂` (the algebraic
    /// connectivity; the paper's Theorem 1 reads the minimum cut off
    /// this eigenvalue's eigenvector).
    pub fiedler_value: f64,
    /// The corresponding unit eigenvector, sign-normalised so its
    /// first non-zero component is positive.
    pub fiedler_vector: Vec<f64>,
    /// Communication weight crossing the partition.
    pub cut_weight: f64,
}

/// Spectral bipartitioner: Laplacian → Fiedler pair → split.
///
/// The eigensolver can run serially or with its matrix-vector products
/// sharded over a [`Cluster`] — the paper's Spark configuration
/// (`with_cluster`).
#[derive(Debug, Clone)]
pub struct SpectralBisector {
    lanczos: LanczosOptions,
    split: SplitRule,
    cluster: Option<(Arc<Cluster>, usize)>,
    serial_cutoff: usize,
    sink: Option<Arc<dyn TraceSink>>,
}

impl Default for SpectralBisector {
    fn default() -> Self {
        SpectralBisector {
            lanczos: LanczosOptions::default(),
            split: SplitRule::default(),
            cluster: None,
            serial_cutoff: DEFAULT_SERIAL_CUTOFF,
            sink: None,
        }
    }
}

impl SpectralBisector {
    /// A serial bisector with default eigensolver options and the
    /// [`SplitRule::Sign`] rule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the eigensolver options.
    pub fn lanczos_options(mut self, opts: LanczosOptions) -> Self {
        self.lanczos = opts;
        self
    }

    /// Sets the split rule.
    pub fn split_rule(mut self, rule: SplitRule) -> Self {
        self.split = rule;
        self
    }

    /// Runs the Laplacian products on `cluster`, sharded into `blocks`
    /// row blocks — the "with Spark" configuration of the paper's
    /// Fig. 9.
    pub fn with_cluster(mut self, cluster: Arc<Cluster>, blocks: usize) -> Self {
        self.cluster = Some((cluster, blocks.max(1)));
        self
    }

    /// Reverts to the serial backend.
    pub fn serial(mut self) -> Self {
        self.cluster = None;
        self
    }

    /// Node count below which a cluster-configured bisector solves
    /// serially anyway (default 32). The cluster and serial backends
    /// produce bit-identical Laplacian products — row contents and
    /// accumulation order match — so the threshold changes wall-time
    /// only, never the cut. Set to `0` to always use the cluster.
    pub fn serial_cutoff(mut self, nodes: usize) -> Self {
        self.serial_cutoff = nodes;
        self
    }

    /// `true` when a cluster backend is configured.
    pub fn is_parallel(&self) -> bool {
        self.cluster.is_some()
    }

    /// Routes telemetry to `sink`: eigensolver iteration/restart
    /// counters and one `spectral.cut` event per bisection (Fiedler
    /// value, cut weight, node count).
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Bisects `g` along its Fiedler vector.
    ///
    /// A single-node graph yields the trivial cut (the node on
    /// [`Side::Remote`], zero weight, `λ₂ = 0`). Disconnected graphs
    /// are fine: `λ₂ = 0` and the eigenvector separates components, so
    /// the returned cut has zero weight.
    ///
    /// This is a thin shim over
    /// [`bisect_reusing`](SpectralBisector::bisect_reusing) with a
    /// throwaway arena; pipeline callers never take it — the
    /// offloader's execution context owns one [`CutScratch`] per
    /// serial batch (and one per cluster task) and threads it through
    /// the reusing entry point.
    ///
    /// # Errors
    ///
    /// - [`SpectralError::EmptyGraph`] when `g` has no nodes;
    /// - [`SpectralError::Eigensolver`] if the Fiedler pair cannot be
    ///   computed.
    pub fn bisect(&self, g: &Graph) -> Result<SpectralCut, SpectralError> {
        self.bisect_reusing(g, &mut CutScratch::new())
    }

    /// [`bisect`](SpectralBisector::bisect) with a caller-owned
    /// [`CutScratch`] arena: the CSR snapshot, Krylov basis, and sweep
    /// buffers are recycled across calls, so every cut after the first
    /// is allocation-free in the eigensolver's inner loop.
    ///
    /// A warm-start seed previously staged via
    /// [`CutScratch::stage_warm_start`] is consumed by this call and
    /// honoured only when the bisector's `LanczosOptions::warm_start`
    /// is set; with the flag off the result is bit-identical to
    /// [`bisect`](SpectralBisector::bisect).
    ///
    /// # Errors
    ///
    /// Same as [`bisect`](SpectralBisector::bisect).
    pub fn bisect_reusing(
        &self,
        g: &Graph,
        scratch: &mut CutScratch,
    ) -> Result<SpectralCut, SpectralError> {
        let n = g.node_count();
        if n == 0 {
            scratch.clear_warm_start();
            return Err(SpectralError::EmptyGraph);
        }
        if n == 1 {
            scratch.clear_warm_start();
            let partition = Bipartition::uniform(1, Side::Remote);
            return Ok(SpectralCut {
                partition,
                fiedler_value: 0.0,
                fiedler_vector: vec![1.0],
                cut_weight: 0.0,
            });
        }
        let sink: &dyn TraceSink = match &self.sink {
            Some(s) => s.as_ref(),
            None => &mec_obs::NullSink,
        };
        // Below the cutoff the serial CSR kernel beats the stage
        // round-trip; the two backends produce bit-identical products
        // (same row contents in the same order), so this is purely a
        // wall-time decision.
        let use_cluster = self.cluster.is_some() && n >= self.serial_cutoff;
        let pairs = if use_cluster {
            let (cluster, blocks) = self.cluster.as_ref().expect("checked above");
            let edges: Vec<(usize, usize, f64)> = g
                .edges()
                .map(|e| (e.source.index(), e.target.index(), e.weight))
                .collect();
            let l = ParallelLaplacian::from_edges(Arc::clone(cluster), n, &edges, *blocks)
                .expect("block count is at least 1");
            let (lanczos, warm) = scratch.lanczos_and_warm();
            let seed = (self.lanczos.warm_start && warm.len() == n).then_some(warm);
            smallest_eigenpairs_with(&l, 2, &self.lanczos, seed, sink, lanczos)?
        } else {
            scratch.csr.rebuild_from(g);
            let CutScratch {
                csr, lanczos, warm, ..
            } = &mut *scratch;
            let l = CsrLaplacian::new(csr);
            let seed = (self.lanczos.warm_start && warm.len() == n).then_some(&warm[..]);
            smallest_eigenpairs_with(&l, 2, &self.lanczos, seed, sink, lanczos)?
        };
        scratch.clear_warm_start();
        let Eigenpair {
            value: fiedler_value,
            vector: mut fiedler_vector,
        } = {
            let mut pairs = pairs;
            pairs.swap_remove(1)
        };
        // canonical sign: first non-zero component positive
        if let Some(first) = fiedler_vector.iter().find(|v| v.abs() > 1e-12) {
            if *first < 0.0 {
                for v in &mut fiedler_vector {
                    *v = -*v;
                }
            }
        }
        // Disconnected graph: λ₂ = 0 with multiplicity, and the returned
        // null-space vector is only piecewise-constant per component — a
        // component whose constant is ~0 could be torn apart by sign
        // noise. The true minimum cut is trivially 0, so split along
        // actual connected components instead.
        if fiedler_value.abs() <= 1e-9 {
            let labeling = mec_graph::ComponentLabeling::compute(g);
            if labeling.count() >= 2 {
                let partition = Bipartition::from_fn(n, |i| {
                    if labeling.component_of(NodeId::new(i)) == 0 {
                        Side::Local
                    } else {
                        Side::Remote
                    }
                });
                emit_cut(sink, n, fiedler_value, 0.0);
                return Ok(SpectralCut {
                    partition,
                    fiedler_value,
                    fiedler_vector,
                    cut_weight: 0.0,
                });
            }
        }
        let partition = match self.split {
            SplitRule::RatioSweep | SplitRule::Sweep => {
                if use_cluster {
                    // the cluster path skipped the serial CSR snapshot
                    scratch.csr.rebuild_from(g);
                }
                let objective = if self.split == SplitRule::RatioSweep {
                    SweepObjective::RatioCut
                } else {
                    SweepObjective::CutWeight
                };
                let CutScratch {
                    csr, order, local, ..
                } = &mut *scratch;
                sweep_cut(csr, &fiedler_vector, objective, order, local)
            }
            rule => split_vector(&fiedler_vector, rule, &mut scratch.order),
        };
        let cut_weight = partition.cut_weight(g);
        emit_cut(sink, n, fiedler_value, cut_weight);
        Ok(SpectralCut {
            partition,
            fiedler_value,
            fiedler_vector,
            cut_weight,
        })
    }
}

/// Emits one `spectral.cut` event and bumps the `spectral.bisections`
/// counter.
fn emit_cut(sink: &dyn TraceSink, n: usize, fiedler_value: f64, cut_weight: f64) {
    sink.counter_add("spectral.bisections", 1);
    if sink.enabled() {
        sink.event(
            "spectral.cut",
            &[
                ("nodes", FieldValue::from(n)),
                ("fiedler_value", FieldValue::from(fiedler_value)),
                ("cut_weight", FieldValue::from(cut_weight)),
            ],
        );
    }
}

/// What a sweep minimises over the prefix splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepObjective {
    /// Raw crossing weight.
    CutWeight,
    /// `cut / (|A| · |B|)` — the ratio-cut score.
    RatioCut,
}

/// Sweep cut: nodes sorted by Fiedler component; every prefix split is
/// priced incrementally and the best-scoring proper one wins. Ties in
/// the ordering break by node id, ties in score by the more balanced
/// split.
///
/// Works off the CSR snapshot's SoA `columns`/`weights` slices instead
/// of chasing `g.neighbors` + `edge_weight` pointers per candidate
/// prefix; CSR rows list the same neighbours in the same order, and the
/// boundary kernel folds in row order under the scalar kernels, so the
/// incremental cut accumulation is bit-identical to the pointer-chasing
/// version. `order` and `local` are pooled scratch buffers.
fn sweep_cut(
    csr: &CsrAdjacency,
    v: &[f64],
    objective: SweepObjective,
    order: &mut Vec<usize>,
    local: &mut Vec<bool>,
) -> Bipartition {
    let n = v.len();
    debug_assert!(n >= 2);
    debug_assert_eq!(csr.node_count(), n);
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| {
        v[a].partial_cmp(&v[b])
            .expect("components are finite")
            .then(a.cmp(&b))
    });
    local.clear();
    local.resize(n, false);
    let (offsets, columns, weights) = csr.as_parts();
    let mut cut = 0.0f64;
    let mut best = (f64::INFINITY, 0usize, usize::MAX); // (weight, |k - n/2| dist, k)
    for (k, &node) in order.iter().enumerate().take(n - 1) {
        // moving `node` from Remote to Local: edges into the prefix
        // leave the boundary, edges out of it start crossing
        let (lo, hi) = (offsets[node], offsets[node + 1]);
        cut = kernels::sweep_boundary_update(cut, &columns[lo..hi], &weights[lo..hi], local);
        local[node] = true;
        let prefix = k + 1;
        let balance_dist = prefix.abs_diff(n / 2);
        let score = match objective {
            SweepObjective::CutWeight => cut,
            SweepObjective::RatioCut => cut / (prefix as f64 * (n - prefix) as f64),
        };
        if score < best.0 - 1e-12 || (score <= best.0 + 1e-12 && balance_dist < best.1) {
            best = (score, balance_dist, prefix);
        }
    }
    let split_at = best.2;
    let mut sides = vec![Side::Remote; n];
    for &node in order.iter().take(split_at) {
        sides[node] = Side::Local;
    }
    Bipartition::from_sides(sides)
}

fn split_vector(v: &[f64], rule: SplitRule, order: &mut Vec<usize>) -> Bipartition {
    let by_sign = Bipartition::from_fn(v.len(), |i| {
        if v[i] >= 0.0 {
            Side::Remote
        } else {
            Side::Local
        }
    });
    match rule {
        SplitRule::Sweep | SplitRule::RatioSweep => {
            unreachable!("sweeps are handled by sweep_cut")
        }
        SplitRule::Sign if by_sign.is_proper() => by_sign,
        SplitRule::Sign | SplitRule::Median => {
            order.clear();
            order.extend(0..v.len());
            order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("components are finite"));
            let half = v.len() / 2;
            let mut sides = vec![Side::Remote; v.len()];
            for &i in order.iter().take(half) {
                sides[i] = Side::Local;
            }
            Bipartition::from_sides(sides)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_netgen::NetgenSpec;

    /// Two heavy cliques of size `k` joined by a single light edge.
    fn dumbbell(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..2 * k).map(|_| b.add_node(1.0)).collect();
        for side in 0..2 {
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_edge(n[side * k + i], n[side * k + j], 8.0).unwrap();
                }
            }
        }
        b.add_edge(n[k - 1], n[k], 0.25).unwrap();
        b.build()
    }

    #[test]
    fn finds_the_bridge_cut() {
        for k in [3usize, 6, 20] {
            let g = dumbbell(k);
            let cut = SpectralBisector::new().bisect(&g).unwrap();
            assert_eq!(cut.cut_weight, 0.25, "k={k}");
            assert!(cut.partition.is_proper());
            assert_eq!(cut.partition.count_on(Side::Local), k);
        }
    }

    #[test]
    fn fiedler_value_is_algebraic_connectivity() {
        // P_2 with weight w: lambda2 = 2w
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 3.0).unwrap();
        let cut = SpectralBisector::new().bisect(&b.build()).unwrap();
        assert!((cut.fiedler_value - 6.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_graph_cut_is_zero() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 5.0).unwrap();
        b.add_edge(n[2], n[3], 5.0).unwrap();
        let cut = SpectralBisector::new().bisect(&b.build()).unwrap();
        assert!(cut.fiedler_value.abs() < 1e-9);
        assert_eq!(cut.cut_weight, 0.0);
        assert!(cut.partition.is_proper());
    }

    #[test]
    fn single_node_graph_is_trivial() {
        let mut b = GraphBuilder::new();
        b.add_node(5.0);
        let cut = SpectralBisector::new().bisect(&b.build()).unwrap();
        assert_eq!(cut.cut_weight, 0.0);
        assert_eq!(cut.partition.len(), 1);
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = GraphBuilder::new().build();
        assert_eq!(
            SpectralBisector::new().bisect(&g).unwrap_err(),
            SpectralError::EmptyGraph
        );
    }

    #[test]
    fn median_split_always_balances() {
        let g = dumbbell(4);
        let cut = SpectralBisector::new()
            .split_rule(SplitRule::Median)
            .bisect(&g)
            .unwrap();
        assert_eq!(cut.partition.count_on(Side::Local), 4);
        assert_eq!(cut.partition.count_on(Side::Remote), 4);
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let g = NetgenSpec::new(120, 400)
            .components(1)
            .seed(3)
            .generate()
            .unwrap();
        let serial = SpectralBisector::new().bisect(&g).unwrap();
        let cluster = Arc::new(Cluster::new(4).unwrap());
        let parallel = SpectralBisector::new()
            .with_cluster(cluster, 6)
            .bisect(&g)
            .unwrap();
        assert!((serial.fiedler_value - parallel.fiedler_value).abs() < 1e-7);
        assert_eq!(serial.partition, parallel.partition);
        assert!(parallel.cut_weight <= serial.cut_weight + 1e-9);
    }

    #[test]
    fn is_parallel_reflects_backend() {
        let b = SpectralBisector::new();
        assert!(!b.is_parallel());
        let cluster = Arc::new(Cluster::new(2).unwrap());
        let b2 = b.with_cluster(cluster, 4);
        assert!(b2.is_parallel());
        assert!(!b2.serial().is_parallel());
    }

    #[test]
    fn sweep_never_loses_to_sign_or_median() {
        for seed in [1u64, 4, 9, 16] {
            let g = NetgenSpec::new(80, 250)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let sweep = SpectralBisector::new()
                .split_rule(SplitRule::Sweep)
                .bisect(&g)
                .unwrap();
            for rule in [SplitRule::Sign, SplitRule::Median] {
                let other = SpectralBisector::new().split_rule(rule).bisect(&g).unwrap();
                assert!(
                    sweep.cut_weight <= other.cut_weight + 1e-9,
                    "seed {seed}: sweep {} vs {:?} {}",
                    sweep.cut_weight,
                    rule,
                    other.cut_weight
                );
            }
        }
    }

    #[test]
    fn sweep_is_proper_and_matches_reported_weight() {
        let g = NetgenSpec::new(60, 150)
            .components(1)
            .seed(2)
            .generate()
            .unwrap();
        let cut = SpectralBisector::new().bisect(&g).unwrap();
        assert!(cut.partition.is_proper());
        assert!((cut.partition.cut_weight(&g) - cut.cut_weight).abs() < 1e-9);
    }

    #[test]
    fn spectral_cut_beats_random_cuts_on_structured_graphs() {
        let g = NetgenSpec::new(150, 500)
            .components(1)
            .seed(11)
            .generate()
            .unwrap();
        let spectral = SpectralBisector::new().bisect(&g).unwrap();
        // compare against 20 random balanced cuts
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut best_random = f64::INFINITY;
        for _ in 0..20 {
            let p = Bipartition::from_fn(g.node_count(), |_| {
                if rng.gen_bool(0.5) {
                    Side::Local
                } else {
                    Side::Remote
                }
            });
            if p.is_proper() {
                best_random = best_random.min(p.cut_weight(&g));
            }
        }
        assert!(
            spectral.cut_weight < best_random,
            "spectral {} vs best random {}",
            spectral.cut_weight,
            best_random
        );
    }

    #[test]
    fn bisect_reusing_is_bit_identical_to_bisect() {
        let mut scratch = CutScratch::new();
        // one arena across many graphs of varying size/rule — results
        // must match the allocating path exactly, not approximately
        for (seed, rule) in [
            (1u64, SplitRule::Sweep),
            (2, SplitRule::Sign),
            (3, SplitRule::Median),
            (4, SplitRule::RatioSweep),
            (5, SplitRule::Sweep),
        ] {
            let g = NetgenSpec::new(70 + seed as usize * 13, 220)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let b = SpectralBisector::new().split_rule(rule);
            let fresh = b.bisect(&g).unwrap();
            let reused = b.bisect_reusing(&g, &mut scratch).unwrap();
            assert_eq!(fresh.partition, reused.partition, "seed {seed}");
            assert_eq!(
                fresh.fiedler_value.to_bits(),
                reused.fiedler_value.to_bits(),
                "seed {seed}"
            );
            assert_eq!(
                fresh.cut_weight.to_bits(),
                reused.cut_weight.to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn small_graphs_take_the_serial_path_on_a_cluster() {
        // 30 nodes < default cutoff (32): the cluster-configured
        // bisector must produce the serial result bit-for-bit, because
        // it *is* the serial path below the cutoff
        let g = NetgenSpec::new(30, 80)
            .components(1)
            .seed(6)
            .generate()
            .unwrap();
        let serial = SpectralBisector::new().bisect(&g).unwrap();
        let cluster = Arc::new(Cluster::new(4).unwrap());
        let small = SpectralBisector::new()
            .with_cluster(Arc::clone(&cluster), 4)
            .bisect(&g)
            .unwrap();
        assert_eq!(serial.partition, small.partition);
        assert_eq!(
            serial.fiedler_value.to_bits(),
            small.fiedler_value.to_bits()
        );
        // forcing the cutoff to 0 routes even this graph through the
        // parallel operator, which is numerically identical by design
        let forced = SpectralBisector::new()
            .with_cluster(cluster, 4)
            .serial_cutoff(0)
            .bisect(&g)
            .unwrap();
        assert_eq!(serial.partition, forced.partition);
    }

    #[test]
    fn staged_warm_start_changes_seed_but_not_quality() {
        let g = NetgenSpec::new(100, 320)
            .components(1)
            .seed(8)
            .generate()
            .unwrap();
        let cold = SpectralBisector::new().bisect(&g).unwrap();

        let opts = LanczosOptions {
            warm_start: true,
            ..LanczosOptions::default()
        };
        let warm_bisector = SpectralBisector::new().lanczos_options(opts);
        let mut scratch = CutScratch::new();
        // seed with the cold Fiedler vector: the solve should land on
        // the same eigenpair
        scratch.stage_warm_start(&cold.fiedler_vector);
        let warm = warm_bisector.bisect_reusing(&g, &mut scratch).unwrap();
        assert!((warm.fiedler_value - cold.fiedler_value).abs() < 1e-7);
        assert!(warm.cut_weight <= cold.cut_weight + 1e-9);
        // the seed is consumed: the next cut is cold again and must be
        // bit-identical to the never-warmed solve
        let again = warm_bisector.bisect_reusing(&g, &mut scratch).unwrap();
        let never = warm_bisector.bisect(&g).unwrap();
        assert_eq!(again.partition, never.partition);
        assert_eq!(again.fiedler_value.to_bits(), never.fiedler_value.to_bits());
    }

    #[test]
    fn warm_start_off_ignores_staged_seed() {
        let g = NetgenSpec::new(64, 180)
            .components(1)
            .seed(9)
            .generate()
            .unwrap();
        let plain = SpectralBisector::new().bisect(&g).unwrap();
        let mut scratch = CutScratch::new();
        scratch.stage_warm_start(&vec![1.0; g.node_count()]);
        let cut = SpectralBisector::new()
            .bisect_reusing(&g, &mut scratch)
            .unwrap();
        assert_eq!(plain.partition, cut.partition);
        assert_eq!(plain.fiedler_value.to_bits(), cut.fiedler_value.to_bits());
    }
}
