//! Spectral minimum-cut bipartitioning (paper §III-B).
//!
//! The paper transfers the offloading objective to a minimum-cut search
//! on each compressed sub-graph and solves it with spectral graph
//! theory: by Theorems 1–3, the cut is read off the eigenvector of the
//! graph Laplacian `L = D − A` belonging to the second-smallest
//! eigenvalue (the *Fiedler pair*). This crate implements that step:
//!
//! - [`GraphLaplacian`] — a serial [`SymOp`](mec_linalg::SymOp) view of
//!   a graph's Laplacian;
//! - [`SpectralBisector`] — computes the Fiedler pair (serially, or on
//!   a [`mec_engine::Cluster`] the way the paper uses Spark) and splits
//!   the node set by [`SplitRule`];
//! - [`theory`] — executable forms of the paper's Theorem 2 identity,
//!   used by tests and documentation.
//!
//! # Example
//!
//! ```
//! use mec_spectral::{SpectralBisector, SplitRule};
//! use mec_graph::GraphBuilder;
//!
//! # fn main() -> Result<(), mec_spectral::SpectralError> {
//! // two heavy pairs joined by a light bridge
//! let mut b = GraphBuilder::new();
//! let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
//! b.add_edge(n[0], n[1], 10.0).unwrap();
//! b.add_edge(n[2], n[3], 10.0).unwrap();
//! b.add_edge(n[1], n[2], 0.5).unwrap();
//! let g = b.build();
//!
//! let cut = SpectralBisector::new().bisect(&g)?;
//! assert_eq!(cut.partition.cut_weight(&g), 0.5); // the bridge
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod laplacian;
mod recursive;
mod scratch;
pub mod theory;

pub use bisect::{SpectralBisector, SpectralCut, SplitRule};
pub use laplacian::{CsrLaplacian, CsrViewLaplacian, GraphLaplacian};
pub use recursive::{RecursiveBisector, RecursivePartition};
pub use scratch::CutScratch;

use std::error::Error;
use std::fmt;

/// Errors raised by the spectral bisection stage.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectralError {
    /// The graph has no nodes; there is nothing to bisect.
    EmptyGraph,
    /// The underlying eigensolver failed.
    Eigensolver(mec_linalg::LinalgError),
}

impl fmt::Display for SpectralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralError::EmptyGraph => f.write_str("cannot bisect an empty graph"),
            SpectralError::Eigensolver(e) => write!(f, "eigensolver failed: {e}"),
        }
    }
}

impl Error for SpectralError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpectralError::EmptyGraph => None,
            SpectralError::Eigensolver(e) => Some(e),
        }
    }
}

impl From<mec_linalg::LinalgError> for SpectralError {
    fn from(e: mec_linalg::LinalgError) -> Self {
        SpectralError::Eigensolver(e)
    }
}
