//! Laplacian operators over graphs.

use mec_graph::{CsrAdjacency, Graph};
use mec_linalg::SymOp;

/// The graph Laplacian `L = D − A` of a [`Graph`], as a serial
/// symmetric operator.
///
/// Holds a CSR snapshot of the adjacency, so later mutations of the
/// graph's weights are not reflected.
#[derive(Debug, Clone)]
pub struct GraphLaplacian {
    csr: CsrAdjacency,
}

impl GraphLaplacian {
    /// Snapshots the Laplacian of `g`.
    pub fn new(g: &Graph) -> Self {
        GraphLaplacian {
            csr: CsrAdjacency::build(g),
        }
    }

    /// The underlying CSR adjacency.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }
}

impl SymOp for GraphLaplacian {
    fn dim(&self) -> usize {
        self.csr.node_count()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.csr.laplacian_mul(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_linalg::{smallest_eigenpairs, LanczosOptions};

    #[test]
    fn laplacian_annihilates_constants() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        for k in 1..5 {
            b.add_edge(n[k - 1], n[k], k as f64).unwrap();
        }
        let l = GraphLaplacian::new(&b.build());
        let mut y = vec![1.0; 5];
        l.apply(&[2.0; 5], &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn eigensolver_accepts_graph_laplacian() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..2).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 4.0).unwrap();
        let l = GraphLaplacian::new(&b.build());
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-12);
        assert!((pairs[1].value - 8.0).abs() < 1e-9);
    }
}
