//! Laplacian operators over graphs.

use mec_graph::{CsrAdjacency, CsrView, Graph};
use mec_linalg::SymOp;

/// The graph Laplacian `L = D − A` of a [`Graph`], as a serial
/// symmetric operator.
///
/// Holds a CSR snapshot of the adjacency, so later mutations of the
/// graph's weights are not reflected.
#[derive(Debug, Clone)]
pub struct GraphLaplacian {
    csr: CsrAdjacency,
}

impl GraphLaplacian {
    /// Snapshots the Laplacian of `g`.
    pub fn new(g: &Graph) -> Self {
        GraphLaplacian {
            csr: CsrAdjacency::build(g),
        }
    }

    /// The underlying CSR adjacency.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }
}

impl SymOp for GraphLaplacian {
    fn dim(&self) -> usize {
        self.csr.node_count()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.csr.laplacian_mul(x, y)
    }
}

/// The Laplacian of a *borrowed* CSR snapshot — the scratch-arena
/// variant of [`GraphLaplacian`]: the bisector rebuilds one pooled
/// [`CsrAdjacency`] in place per cut and lends it to the eigensolver
/// through this operator, so no CSR storage is allocated per cut.
#[derive(Debug, Clone, Copy)]
pub struct CsrLaplacian<'a> {
    csr: &'a CsrAdjacency,
}

impl<'a> CsrLaplacian<'a> {
    /// Wraps a CSR snapshot.
    pub fn new(csr: &'a CsrAdjacency) -> Self {
        CsrLaplacian { csr }
    }
}

impl SymOp for CsrLaplacian<'_> {
    fn dim(&self) -> usize {
        self.csr.node_count()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.csr.laplacian_mul(x, y)
    }
}

/// The **induced** Laplacian of a [`CsrView`] — the operator the
/// recursive bisector hands to Lanczos at every level below the root,
/// where no owned sub-graph exists at all.
#[derive(Debug, Clone, Copy)]
pub struct CsrViewLaplacian<'a> {
    view: CsrView<'a>,
}

impl<'a> CsrViewLaplacian<'a> {
    /// Wraps an index-space restriction.
    pub fn new(view: CsrView<'a>) -> Self {
        CsrViewLaplacian { view }
    }
}

impl SymOp for CsrViewLaplacian<'_> {
    fn dim(&self) -> usize {
        self.view.node_count()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.view.laplacian_mul(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_linalg::{smallest_eigenpairs, LanczosOptions};

    #[test]
    fn laplacian_annihilates_constants() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        for k in 1..5 {
            b.add_edge(n[k - 1], n[k], k as f64).unwrap();
        }
        let l = GraphLaplacian::new(&b.build());
        let mut y = vec![1.0; 5];
        l.apply(&[2.0; 5], &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn eigensolver_accepts_graph_laplacian() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..2).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 4.0).unwrap();
        let l = GraphLaplacian::new(&b.build());
        let pairs = smallest_eigenpairs(&l, 2, &LanczosOptions::default()).unwrap();
        assert!(pairs[0].value.abs() < 1e-12);
        assert!((pairs[1].value - 8.0).abs() < 1e-9);
    }
}
