//! Executable statements of the paper's spectral theory.
//!
//! Appendix A proves (Theorem 2) that for the indicator vector `q` with
//! `q_i = d₁` on one side and `q_i = d₂` on the other,
//!
//! ```text
//! CUT(G₁, G₂) = qᵀ L q / (d₁ − d₂)²
//! ```
//!
//! and (Theorem 3, via Lagrange multipliers) that the extreme points of
//! the cut functional are eigenvectors of `L`. These functions compute
//! both sides of the Theorem 2 identity so tests — and downstream users
//! — can check them on any graph.

use crate::GraphLaplacian;
use mec_graph::{Bipartition, Graph, Side};
use mec_linalg::{largest_eigenpair, PowerOptions, SymOp};

/// Builds the paper's indicator vector: `d1` on [`Side::Local`] nodes,
/// `d2` on [`Side::Remote`] nodes.
///
/// # Panics
///
/// Panics if `cut` covers fewer nodes than `g`.
pub fn indicator_vector(g: &Graph, cut: &Bipartition, d1: f64, d2: f64) -> Vec<f64> {
    assert!(cut.len() >= g.node_count());
    (0..g.node_count())
        .map(|i| match cut.side(mec_graph::NodeId::new(i)) {
            Side::Local => d1,
            Side::Remote => d2,
        })
        .collect()
}

/// Evaluates the Laplacian quadratic form `qᵀ L q`.
///
/// # Panics
///
/// Panics if `q.len() != g.node_count()`.
pub fn quadratic_form(g: &Graph, q: &[f64]) -> f64 {
    let l = GraphLaplacian::new(g);
    let mut y = vec![0.0; q.len()];
    l.apply(q, &mut y);
    q.iter().zip(&y).map(|(a, b)| a * b).sum()
}

/// The right-hand side of Theorem 2:
/// `qᵀ L q / (d₁ − d₂)²` for the indicator with levels `d1`, `d2`.
///
/// Equals [`Bipartition::cut_weight`] for every proper choice
/// `d1 ≠ d2` — the identity the whole spectral method rests on.
///
/// # Panics
///
/// Panics if `d1 == d2` (the indicator is constant and the identity
/// degenerates) or if `cut` covers fewer nodes than `g`.
pub fn cut_via_laplacian(g: &Graph, cut: &Bipartition, d1: f64, d2: f64) -> f64 {
    assert!(d1 != d2, "indicator levels must differ");
    let q = indicator_vector(g, cut, d1, d2);
    quadratic_form(g, &q) / (d1 - d2).powi(2)
}

/// The spectral cut bracket of the paper's formula (11): the extreme
/// Laplacian eigenvalues `(λ_min, λ_max)` of `g`. For any proper cut,
/// the *normalised* cut value `qᵀLq/qᵀq` (with `q` the ±1 indicator)
/// lies inside this bracket — the Rayleigh-quotient bound behind
/// Theorem 3.
///
/// `λ_min` is exactly `0` for every graph Laplacian; it is returned
/// for symmetry with the formula.
///
/// # Panics
///
/// Panics if `g` is empty or the power iteration fails to converge
/// (practically impossible on finite Laplacians).
pub fn cut_bracket(g: &Graph) -> (f64, f64) {
    let l = GraphLaplacian::new(g);
    let top = largest_eigenpair(&l, &PowerOptions::default())
        .expect("Laplacian power iteration converges");
    (0.0, top.value)
}

/// Rayleigh quotient `qᵀLq / qᵀq` — Theorem 3's objective; its
/// stationary points are the eigenpairs of `L`.
///
/// # Panics
///
/// Panics if `q` is the zero vector or of mismatched length.
pub fn rayleigh_quotient(g: &Graph, q: &[f64]) -> f64 {
    let qq: f64 = q.iter().map(|v| v * v).sum();
    assert!(qq > 0.0, "Rayleigh quotient of the zero vector");
    quadratic_form(g, q) / qq
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::{GraphBuilder, NodeId};

    fn sample() -> (Graph, Bipartition) {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 2.0).unwrap();
        b.add_edge(n[1], n[2], 3.0).unwrap();
        b.add_edge(n[2], n[3], 4.0).unwrap();
        b.add_edge(n[3], n[4], 5.0).unwrap();
        b.add_edge(n[0], n[4], 1.0).unwrap();
        let cut = Bipartition::from_fn(5, |i| if i < 2 { Side::Local } else { Side::Remote });
        (b.build(), cut)
    }

    #[test]
    fn theorem2_identity_with_paper_levels() {
        // the paper uses q_i = ±1 (d1 = 1, d2 = -1)
        let (g, cut) = sample();
        let direct = cut.cut_weight(&g);
        let spectral = cut_via_laplacian(&g, &cut, 1.0, -1.0);
        assert!((direct - spectral).abs() < 1e-12);
    }

    #[test]
    fn theorem2_identity_is_level_invariant() {
        let (g, cut) = sample();
        let direct = cut.cut_weight(&g);
        for (d1, d2) in [(2.0, 0.0), (5.0, -3.0), (0.1, 0.9)] {
            let v = cut_via_laplacian(&g, &cut, d1, d2);
            assert!(
                (direct - v).abs() < 1e-9,
                "levels ({d1},{d2}): {v} vs {direct}"
            );
        }
    }

    #[test]
    fn quadratic_form_is_edge_sum_of_squared_differences() {
        let (g, _) = sample();
        let q = [1.0, -2.0, 0.5, 3.0, 0.0];
        let lhs = quadratic_form(&g, &q);
        let rhs: f64 = g
            .edges()
            .map(|e| e.weight * (q[e.source.index()] - q[e.target.index()]).powi(2))
            .sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_quotient_is_bounded_by_extreme_eigenvalues() {
        let (g, _) = sample();
        // lambda_min = 0 for any Laplacian; check 0 <= R(q)
        let q = [0.3, -1.0, 2.0, 0.7, -0.2];
        let r = rayleigh_quotient(&g, &q);
        assert!(r >= 0.0);
        // constant vector attains the minimum
        assert!(rayleigh_quotient(&g, &[1.0; 5]).abs() < 1e-12);
    }

    #[test]
    fn indicator_vector_levels() {
        let (g, cut) = sample();
        let q = indicator_vector(&g, &cut, 7.0, -2.0);
        assert_eq!(q[0], 7.0);
        assert_eq!(q[4], -2.0);
        assert_eq!(cut.side(NodeId::new(0)), Side::Local);
    }

    #[test]
    fn formula_11_brackets_every_cut() {
        // λ_min ≤ R(q) ≤ λ_max for the ±1 indicator of any proper cut
        let (g, _) = sample();
        let (lo, hi) = cut_bracket(&g);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0);
        // every bipartition of 5 nodes (node 0 pinned Local)
        for mask in 1u32..(1 << 4) {
            let cut = Bipartition::from_fn(5, |i| {
                if i == 0 || (i > 0 && mask & (1 << (i - 1)) == 0) {
                    Side::Local
                } else {
                    Side::Remote
                }
            });
            if !cut.is_proper() {
                continue;
            }
            let q = indicator_vector(&g, &cut, 1.0, -1.0);
            let r = rayleigh_quotient(&g, &q);
            assert!(
                r >= lo - 1e-9 && r <= hi + 1e-9,
                "R(q) = {r} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "levels must differ")]
    fn equal_levels_panic() {
        let (g, cut) = sample();
        let _ = cut_via_laplacian(&g, &cut, 1.0, 1.0);
    }
}
