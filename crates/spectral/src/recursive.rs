//! CSR-native recursive Fiedler partitioning.
//!
//! The paper's spectral stage bisects each compressed component once;
//! the natural extension — and the dominant cost in any k-way variant —
//! is to keep cutting recursively. Done naively, every level
//! re-materialises an owned `Graph` via `Subgraph::induced`, rebuilds a
//! fresh CSR, and lets Lanczos allocate a new basis per iteration.
//! [`RecursiveBisector`] instead descends in **index space**: one CSR
//! snapshot of the root graph is built into the [`CutScratch`] arena,
//! every level below the root restricts it through a
//! [`mec_graph::CsrView`] compacted into a second pooled CSR (one
//! O(subset edges) pass — the eigensolver then iterates on dense rows),
//! and each child cut can be warm-started with the restriction of its
//! parent's Fiedler vector (`LanczosOptions::warm_start`, default off —
//! results are bit-identical to the cold solver when off).

use crate::bisect::DEFAULT_SERIAL_CUTOFF;
use crate::laplacian::CsrLaplacian;
use crate::{CutScratch, SpectralError, SplitRule};
use mec_graph::{CsrView, Graph, NodeId};
use mec_linalg::{kernels, smallest_eigenpairs_with, Eigenpair, LanczosOptions};

const OUTSIDE: u32 = CsrView::OUTSIDE;

/// A k-way partition produced by recursive bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursivePartition {
    /// `part_of[i]` is the part id of node `i` (`0..parts`), assigned
    /// in depth-first (left-side-first) order — deterministic for a
    /// fixed graph and options.
    pub part_of: Vec<u32>,
    /// Number of parts.
    pub parts: usize,
}

impl RecursivePartition {
    /// Total weight of edges crossing between different parts.
    pub fn cut_weight(&self, g: &Graph) -> f64 {
        g.edges()
            .filter(|e| self.part_of[e.source.index()] != self.part_of[e.target.index()])
            .map(|e| e.weight)
            .sum()
    }

    /// Number of nodes in part `p`.
    pub fn part_size(&self, p: u32) -> usize {
        self.part_of.iter().filter(|&&q| q == p).count()
    }
}

/// Recursive Fiedler-cut partitioner: splits a graph into up to
/// `2^max_depth` parts by repeated spectral bisection, without ever
/// materialising a sub-graph.
#[derive(Debug, Clone)]
pub struct RecursiveBisector {
    lanczos: LanczosOptions,
    split: SplitRule,
    max_depth: usize,
    min_nodes: usize,
}

impl Default for RecursiveBisector {
    fn default() -> Self {
        RecursiveBisector {
            lanczos: LanczosOptions::default(),
            split: SplitRule::default(),
            max_depth: 3,
            min_nodes: 2,
        }
    }
}

impl RecursiveBisector {
    /// A partitioner with default options: depth 3 (≤ 8 parts),
    /// [`SplitRule::Sign`], cold-started Lanczos.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the eigensolver options. Setting
    /// `LanczosOptions::warm_start` makes every child cut seed its
    /// Krylov recurrence with the restriction of the parent's Fiedler
    /// vector — typically fewer iterations per level, at the price of
    /// losing bit-identity with the cold solver (cut *quality* stays on
    /// par; see `tests/alloc_budget.rs`).
    pub fn lanczos_options(mut self, opts: LanczosOptions) -> Self {
        self.lanczos = opts;
        self
    }

    /// Sets the split rule applied at every level.
    pub fn split_rule(mut self, rule: SplitRule) -> Self {
        self.split = rule;
        self
    }

    /// Recursion depth: up to `2^depth` parts (default 3).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Subsets smaller than this become leaves without further cutting
    /// (default 2; values below 2 are treated as 2).
    pub fn min_nodes(mut self, nodes: usize) -> Self {
        self.min_nodes = nodes;
        self
    }

    /// Partitions `g`, allocating a fresh arena — a thin shim over
    /// [`partition_reusing`](RecursiveBisector::partition_reusing) for
    /// one-off callers. Batch callers (the offloader's execution
    /// context) own a long-lived [`CutScratch`] instead and thread it
    /// through the reusing entry point.
    ///
    /// # Errors
    ///
    /// Same as [`partition_reusing`](RecursiveBisector::partition_reusing).
    pub fn partition(&self, g: &Graph) -> Result<RecursivePartition, SpectralError> {
        self.partition_reusing(g, &mut CutScratch::new())
    }

    /// Partitions `g` inside a caller-owned [`CutScratch`]: below the
    /// root, no owned graph, CSR, or Krylov basis is allocated — every
    /// level works through a [`CsrView`] over the root snapshot and the
    /// arena's pooled buffers.
    ///
    /// # Errors
    ///
    /// - [`SpectralError::EmptyGraph`] when `g` has no nodes;
    /// - [`SpectralError::Eigensolver`] if a Fiedler pair cannot be
    ///   computed at some level.
    pub fn partition_reusing(
        &self,
        g: &Graph,
        scratch: &mut CutScratch,
    ) -> Result<RecursivePartition, SpectralError> {
        let n = g.node_count();
        if n == 0 {
            return Err(SpectralError::EmptyGraph);
        }
        scratch.csr.rebuild_from(g);
        scratch.to_local.clear();
        scratch.to_local.resize(n, OUTSIDE);
        let min_leaf = self.min_nodes.max(2);

        let mut part_of = vec![0u32; n];
        let mut parts = 0u32;

        let mut root = scratch.checkout_idx();
        root.extend(0..u32::try_from(n).expect("node count fits u32"));
        let root_warm = scratch.checkout_f64();
        // (subset, staged warm seed, depth); left child pushed last so
        // part ids are assigned in depth-first left-first order
        let mut stack: Vec<(Vec<u32>, Vec<f64>, usize)> = vec![(root, root_warm, 0)];

        while let Some((nodes, warm, depth)) = stack.pop() {
            let m = nodes.len();
            if depth >= self.max_depth || m < min_leaf {
                for &p in &nodes {
                    part_of[p as usize] = parts;
                }
                parts += 1;
                scratch.retire_idx(nodes);
                scratch.retire_f64(warm);
                continue;
            }

            let CutScratch {
                csr,
                csr_sub,
                lanczos,
                to_local,
                order,
                local,
                idx_pool,
                f64_pool,
                ..
            } = &mut *scratch;
            for (l, &p) in nodes.iter().enumerate() {
                to_local[p as usize] = u32::try_from(l).expect("subset fits u32");
            }
            // one O(subset edges) compaction pass; every Lanczos
            // matrix–vector product below then runs on dense rows
            // instead of re-filtering the parent CSR
            csr_sub.rebuild_from_view(&csr.view(&nodes, to_local));
            let op = CsrLaplacian::new(csr_sub);
            let seed = (self.lanczos.warm_start && warm.len() == m).then_some(&warm[..]);
            let mut pairs =
                smallest_eigenpairs_with(&op, 2, &self.lanczos, seed, &mec_obs::NullSink, lanczos)?;
            let Eigenpair {
                value: fiedler_value,
                vector: mut fiedler,
            } = pairs.swap_remove(1);
            // canonical sign: first non-zero component positive
            if let Some(first) = fiedler.iter().find(|v| v.abs() > 1e-12) {
                if *first < 0.0 {
                    for v in &mut fiedler {
                        *v = -*v;
                    }
                }
            }

            // `local[l] == true` → node goes to the left child
            local.clear();
            local.resize(m, false);
            let mut proper = false;
            if fiedler_value.abs() <= 1e-9 {
                // disconnected subset: peel the component of local 0
                let mut queue = idx_pool.pop().unwrap_or_default();
                queue.clear();
                queue.push(0);
                local[0] = true;
                let mut head = 0;
                while head < queue.len() {
                    let u = queue[head] as usize;
                    head += 1;
                    for (nb, _) in csr_sub.row(NodeId::new(u)) {
                        if !local[nb.index()] {
                            local[nb.index()] = true;
                            queue.push(u32::try_from(nb.index()).expect("subset fits u32"));
                        }
                    }
                }
                proper = queue.len() < m;
                if !proper {
                    // connected after all (λ₂ merely tiny): reset and
                    // fall through to the configured split rule
                    local.clear();
                    local.resize(m, false);
                }
                idx_pool.push(queue);
            }
            if !proper {
                proper = match self.split {
                    SplitRule::Sweep | SplitRule::RatioSweep => {
                        sweep_sides(csr_sub, &fiedler, self.split, order, local)
                    }
                    SplitRule::Sign => {
                        for (l, &x) in fiedler.iter().enumerate() {
                            local[l] = x < 0.0;
                        }
                        let lefts = local.iter().filter(|&&s| s).count();
                        lefts > 0 && lefts < m
                    }
                    SplitRule::Median => false,
                };
                if !proper {
                    // Sign produced an improper split, or Median: take
                    // the lower half of the Fiedler ordering
                    order.clear();
                    order.extend(0..m);
                    order.sort_by(|&a, &b| {
                        fiedler[a]
                            .partial_cmp(&fiedler[b])
                            .expect("components are finite")
                    });
                    local.iter_mut().for_each(|s| *s = false);
                    for &l in order.iter().take(m / 2) {
                        local[l] = true;
                    }
                    proper = m >= 2;
                }
            }

            let mut left = idx_pool.pop().unwrap_or_default();
            let mut right = idx_pool.pop().unwrap_or_default();
            left.clear();
            right.clear();
            let mut warm_left = f64_pool.pop().unwrap_or_default();
            let mut warm_right = f64_pool.pop().unwrap_or_default();
            warm_left.clear();
            warm_right.clear();
            for (l, &p) in nodes.iter().enumerate() {
                if local[l] {
                    left.push(p);
                    if self.lanczos.warm_start {
                        warm_left.push(fiedler[l]);
                    }
                } else {
                    right.push(p);
                    if self.lanczos.warm_start {
                        warm_right.push(fiedler[l]);
                    }
                }
            }
            for &p in &nodes {
                to_local[p as usize] = OUTSIDE;
            }

            if !proper || left.is_empty() || right.is_empty() {
                for &p in &nodes {
                    part_of[p as usize] = parts;
                }
                parts += 1;
                scratch.retire_idx(left);
                scratch.retire_idx(right);
                scratch.retire_f64(warm_left);
                scratch.retire_f64(warm_right);
            } else {
                stack.push((right, warm_right, depth + 1));
                stack.push((left, warm_left, depth + 1));
            }
            scratch.retire_idx(nodes);
            scratch.retire_f64(warm);
        }

        Ok(RecursivePartition {
            part_of,
            parts: parts as usize,
        })
    }
}

/// Compact-CSR sweep: prices every prefix of the Fiedler ordering
/// incrementally (same tie-breaks as the flat bisector's sweep) and
/// marks the winning prefix in `local`. Returns whether the split is
/// proper. The per-vertex boundary update reads the CSR's SoA
/// `columns`/`weights` slices through the shared sweep kernel.
fn sweep_sides(
    csr: &mec_graph::CsrAdjacency,
    v: &[f64],
    rule: SplitRule,
    order: &mut Vec<usize>,
    local: &mut Vec<bool>,
) -> bool {
    let m = v.len();
    debug_assert!(m >= 2);
    order.clear();
    order.extend(0..m);
    order.sort_by(|&a, &b| {
        v[a].partial_cmp(&v[b])
            .expect("components are finite")
            .then(a.cmp(&b))
    });
    local.clear();
    local.resize(m, false);
    let (offsets, columns, weights) = csr.as_parts();
    let mut cut = 0.0f64;
    let mut best = (f64::INFINITY, 0usize, usize::MAX);
    for (k, &node) in order.iter().enumerate().take(m - 1) {
        let (lo, hi) = (offsets[node], offsets[node + 1]);
        cut = kernels::sweep_boundary_update(cut, &columns[lo..hi], &weights[lo..hi], local);
        local[node] = true;
        let prefix = k + 1;
        let balance_dist = prefix.abs_diff(m / 2);
        let score = if rule == SplitRule::RatioSweep {
            cut / (prefix as f64 * (m - prefix) as f64)
        } else {
            cut
        };
        if score < best.0 - 1e-12 || (score <= best.0 + 1e-12 && balance_dist < best.1) {
            best = (score, balance_dist, prefix);
        }
    }
    local.iter_mut().for_each(|s| *s = false);
    let split_at = best.2;
    if split_at == usize::MAX || split_at == 0 || split_at >= m {
        return false;
    }
    for &node in order.iter().take(split_at) {
        local[node] = true;
    }
    true
}

// keep the serial-cutoff constant referenced so the two defaults stay
// discoverable together in docs
#[allow(dead_code)]
const _: usize = DEFAULT_SERIAL_CUTOFF;

#[cfg(test)]
mod tests {
    use super::*;
    use mec_graph::GraphBuilder;
    use mec_netgen::NetgenSpec;

    /// `k` heavy cliques of size `s` chained by light bridges.
    fn clique_chain(k: usize, s: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..k * s).map(|_| b.add_node(1.0)).collect();
        for c in 0..k {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_edge(n[c * s + i], n[c * s + j], 9.0).unwrap();
                }
            }
        }
        for c in 1..k {
            b.add_edge(n[c * s - 1], n[c * s], 0.5).unwrap();
        }
        b.build()
    }

    #[test]
    fn four_cliques_become_four_parts() {
        let g = clique_chain(4, 6);
        let p = RecursiveBisector::new().max_depth(2).partition(&g).unwrap();
        assert_eq!(p.parts, 4);
        // every clique is one part
        for c in 0..4 {
            let first = p.part_of[c * 6];
            for i in 0..6 {
                assert_eq!(p.part_of[c * 6 + i], first, "clique {c} split");
            }
        }
        // only the three bridges are cut
        assert!((p.cut_weight(&g) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_one_part() {
        let g = clique_chain(2, 4);
        let p = RecursiveBisector::new().max_depth(0).partition(&g).unwrap();
        assert_eq!(p.parts, 1);
        assert_eq!(p.cut_weight(&g), 0.0);
    }

    #[test]
    fn depth_one_matches_flat_bisection_sides() {
        let g = clique_chain(2, 8);
        let p = RecursiveBisector::new().max_depth(1).partition(&g).unwrap();
        assert_eq!(p.parts, 2);
        let flat = crate::SpectralBisector::new().bisect(&g).unwrap();
        // identical grouping (part ids may differ from sides)
        for i in 0..g.node_count() {
            for j in 0..g.node_count() {
                let same_rec = p.part_of[i] == p.part_of[j];
                let same_flat = flat.partition.side(mec_graph::NodeId::new(i))
                    == flat.partition.side(mec_graph::NodeId::new(j));
                assert_eq!(same_rec, same_flat, "nodes {i},{j}");
            }
        }
    }

    #[test]
    fn deterministic_and_scratch_independent() {
        let g = NetgenSpec::new(120, 360)
            .components(1)
            .seed(7)
            .generate()
            .unwrap();
        let r = RecursiveBisector::new();
        let a = r.partition(&g).unwrap();
        let mut scratch = CutScratch::new();
        let b = r.partition_reusing(&g, &mut scratch).unwrap();
        let c = r.partition_reusing(&g, &mut scratch).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(a.parts >= 2);
    }

    #[test]
    fn warm_start_keeps_cut_quality() {
        for seed in [1u64, 5, 12] {
            let g = NetgenSpec::new(150, 450)
                .components(1)
                .seed(seed)
                .generate()
                .unwrap();
            let cold = RecursiveBisector::new().partition(&g).unwrap();
            let warm = RecursiveBisector::new()
                .lanczos_options(LanczosOptions {
                    warm_start: true,
                    ..LanczosOptions::default()
                })
                .partition(&g)
                .unwrap();
            assert_eq!(cold.parts, warm.parts, "seed {seed}");
            let (cw, ww) = (cold.cut_weight(&g), warm.cut_weight(&g));
            // warm starts change the Krylov seed, not the physics: cut
            // weights must stay within a few percent of each other
            assert!(
                (cw - ww).abs() <= 0.05 * cw.max(1.0),
                "seed {seed}: cold {cw} vs warm {ww}"
            );
        }
    }

    #[test]
    fn disconnected_graphs_split_along_components() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 2.0).unwrap();
        b.add_edge(n[2], n[3], 2.0).unwrap();
        b.add_edge(n[4], n[5], 2.0).unwrap();
        let g = b.build();
        // pairs are leaves (min_nodes 3), so only the λ₂ ≈ 0 component
        // peeling contributes splits — one part per component
        let p = RecursiveBisector::new().min_nodes(3).partition(&g).unwrap();
        assert_eq!(p.parts, 3);
        assert_eq!(p.cut_weight(&g), 0.0);
    }

    #[test]
    fn min_nodes_limits_leaf_splitting() {
        let g = clique_chain(4, 4);
        let p = RecursiveBisector::new()
            .max_depth(5)
            .min_nodes(8)
            .partition(&g)
            .unwrap();
        // leaves stop splitting below 8 nodes, so parts stay coarse
        for part in 0..p.parts as u32 {
            assert!(p.part_size(part) >= 2);
        }
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = GraphBuilder::new().build();
        assert_eq!(
            RecursiveBisector::new().partition(&g).unwrap_err(),
            SpectralError::EmptyGraph
        );
    }
}
