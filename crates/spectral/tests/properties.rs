//! Property tests for the spectral stage: split-rule contracts,
//! Theorem 2 on arbitrary generated graphs, backend parity.

use mec_graph::{NodeId, Side};
use mec_netgen::NetgenSpec;
use mec_spectral::{theory, SpectralBisector, SplitRule};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = mec_graph::Graph> {
    // node range keeps every sampled spec inside per-component pair
    // capacity (edges = 2·nodes needs components of ≥ 7 nodes)
    (30usize..80, 1usize..3, 0u64..400).prop_map(|(nodes, comps, seed)| {
        NetgenSpec::new(nodes, nodes * 2)
            .components(comps)
            .unoffloadable_fraction(0.0)
            .seed(seed)
            .generate()
            .expect("feasible spec")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_split_rule_returns_a_proper_full_cover(g in arb_graph()) {
        for rule in [SplitRule::Sign, SplitRule::RatioSweep, SplitRule::Sweep, SplitRule::Median] {
            let cut = SpectralBisector::new().split_rule(rule).bisect(&g).unwrap();
            prop_assert_eq!(cut.partition.len(), g.node_count());
            prop_assert!(cut.partition.is_proper(), "{rule:?} improper");
            prop_assert!((cut.partition.cut_weight(&g) - cut.cut_weight).abs() < 1e-9);
        }
    }

    #[test]
    fn fiedler_value_is_nonnegative_and_vector_is_unit(g in arb_graph()) {
        let cut = SpectralBisector::new().bisect(&g).unwrap();
        prop_assert!(cut.fiedler_value >= -1e-9);
        let norm: f64 = cut.fiedler_vector.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-6);
        // sign canonicalisation: first non-zero component positive
        if let Some(first) = cut.fiedler_vector.iter().find(|v| v.abs() > 1e-12) {
            prop_assert!(*first > 0.0);
        }
    }

    #[test]
    fn theorem2_holds_for_the_returned_cut(g in arb_graph()) {
        let cut = SpectralBisector::new().bisect(&g).unwrap();
        let via_l = theory::cut_via_laplacian(&g, &cut.partition, 1.0, -1.0);
        prop_assert!((via_l - cut.cut_weight).abs() < 1e-7);
    }

    #[test]
    fn rayleigh_of_indicator_stays_in_the_bracket(g in arb_graph(), flips in proptest::collection::vec(any::<bool>(), 80)) {
        let (lo, hi) = theory::cut_bracket(&g);
        let cut = mec_graph::Bipartition::from_fn(g.node_count(), |i| {
            if flips[i % flips.len()] { Side::Local } else { Side::Remote }
        });
        if !cut.is_proper() { return Ok(()); }
        let q = theory::indicator_vector(&g, &cut, 1.0, -1.0);
        let r = theory::rayleigh_quotient(&g, &q);
        prop_assert!(r >= lo - 1e-7 && r <= hi + 1e-7, "R = {r} outside [{lo}, {hi}]");
    }

    #[test]
    fn min_weight_sweep_never_beaten_by_other_rules(g in arb_graph()) {
        let sweep = SpectralBisector::new().split_rule(SplitRule::Sweep).bisect(&g).unwrap();
        for rule in [SplitRule::Sign, SplitRule::RatioSweep, SplitRule::Median] {
            let other = SpectralBisector::new().split_rule(rule).bisect(&g).unwrap();
            prop_assert!(
                sweep.cut_weight <= other.cut_weight + 1e-9,
                "{rule:?} cut {} beat sweep {}",
                other.cut_weight,
                sweep.cut_weight
            );
        }
    }

    #[test]
    fn deterministic_per_graph(g in arb_graph()) {
        let a = SpectralBisector::new().bisect(&g).unwrap();
        let b = SpectralBisector::new().bisect(&g).unwrap();
        prop_assert_eq!(a.partition, b.partition);
        prop_assert_eq!(a.fiedler_value.to_bits(), b.fiedler_value.to_bits());
    }

    #[test]
    fn disconnected_inputs_get_zero_cuts(g in arb_graph()) {
        // add an isolated node to force disconnection
        let mut b = mec_graph::GraphBuilder::new();
        let ids: Vec<NodeId> = g.node_ids().map(|n| b.add_node(g.node_weight(n))).collect();
        for e in g.edges() {
            b.add_edge(ids[e.source.index()], ids[e.target.index()], e.weight).unwrap();
        }
        b.add_node(1.0);
        let g2 = b.build();
        let cut = SpectralBisector::new().bisect(&g2).unwrap();
        prop_assert!(cut.fiedler_value.abs() < 1e-6);
        prop_assert_eq!(cut.cut_weight, 0.0);
    }
}
