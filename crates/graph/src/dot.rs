//! Graphviz DOT export for debugging and documentation figures.

use crate::{Bipartition, Graph, Side};
use std::fmt::Write as _;

impl Graph {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Node labels show `id:weight`; unoffloadable nodes are drawn as
    /// boxes. Edge labels show communication weights.
    ///
    /// ```
    /// use mec_graph::GraphBuilder;
    /// # fn main() -> Result<(), mec_graph::GraphError> {
    /// let mut b = GraphBuilder::new();
    /// let a = b.add_node(1.0);
    /// let c = b.add_pinned_node(2.0);
    /// b.add_edge(a, c, 3.0)?;
    /// let dot = b.build().to_dot("app");
    /// assert!(dot.contains("graph app"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "graph {name} {{");
        for n in self.node_ids() {
            let shape = if self.is_offloadable(n) {
                "ellipse"
            } else {
                "box"
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}:{:.1}\", shape={}];",
                n.index(),
                n.index(),
                self.node_weight(n),
                shape
            );
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "  {} -- {} [label=\"{:.1}\"];",
                e.source.index(),
                e.target.index(),
                e.weight
            );
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph with a bipartition: local nodes white, remote
    /// nodes shaded.
    ///
    /// # Panics
    ///
    /// Panics if `cut` covers fewer nodes than the graph.
    pub fn to_dot_with_cut(&self, name: &str, cut: &Bipartition) -> String {
        assert!(cut.len() >= self.node_count());
        let mut out = String::new();
        let _ = writeln!(out, "graph {name} {{");
        for n in self.node_ids() {
            let fill = match cut.side(n) {
                Side::Local => "white",
                Side::Remote => "lightblue",
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}:{:.1}\", style=filled, fillcolor={}];",
                n.index(),
                n.index(),
                self.node_weight(n),
                fill
            );
        }
        for e in self.edges() {
            let crossing = cut.side(e.source) != cut.side(e.target);
            let style = if crossing {
                ", style=dashed, color=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {} -- {} [label=\"{:.1}\"{}];",
                e.source.index(),
                e.target.index(),
                e.weight,
                style
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bipartition, GraphBuilder, Side};

    #[test]
    fn dot_output_lists_all_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_pinned_node(2.0);
        b.add_edge(a, c, 3.5).unwrap();
        let g = b.build();
        let dot = g.to_dot("t");
        assert!(dot.starts_with("graph t {"));
        assert!(dot.contains("0 [label=\"0:1.0\", shape=ellipse];"));
        assert!(dot.contains("1 [label=\"1:2.0\", shape=box];"));
        assert!(dot.contains("0 -- 1 [label=\"3.5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_with_cut_highlights_crossing_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(2.0);
        let d = b.add_node(3.0);
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 2.0).unwrap();
        let g = b.build();
        let cut = Bipartition::from_sides(vec![Side::Local, Side::Local, Side::Remote]);
        let dot = g.to_dot_with_cut("t", &cut);
        assert!(dot.contains("fillcolor=white"));
        assert!(dot.contains("fillcolor=lightblue"));
        // only edge 1-2 crosses
        assert!(dot.contains("1 -- 2 [label=\"2.0\", style=dashed, color=red];"));
        assert!(dot.contains("0 -- 1 [label=\"1.0\"];"));
    }
}
