//! Error type shared by graph construction and queries.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised while building or querying a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint refers to a node that was never added.
    UnknownNode(NodeId),
    /// A self-loop was requested; function data-flow graphs model
    /// communication *between* functions, so loops carry no meaning.
    SelfLoop(NodeId),
    /// A negative node or edge weight was supplied; computation and
    /// communication amounts are non-negative quantities.
    NegativeWeight(f64),
    /// A non-finite (NaN / infinite) weight was supplied.
    NonFiniteWeight(f64),
    /// A parallel edge was rejected under
    /// [`ParallelEdgePolicy::Reject`](crate::ParallelEdgePolicy).
    ParallelEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::NegativeWeight(w) => write!(f, "negative weight {w} is not allowed"),
            GraphError::NonFiniteWeight(w) => write!(f, "non-finite weight {w} is not allowed"),
            GraphError::ParallelEdge(a, b) => {
                write!(f, "parallel edge between {a} and {b} rejected by policy")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            GraphError::UnknownNode(NodeId::new(3)).to_string(),
            GraphError::SelfLoop(NodeId::new(1)).to_string(),
            GraphError::NegativeWeight(-2.0).to_string(),
            GraphError::NonFiniteWeight(f64::NAN).to_string(),
            GraphError::ParallelEdge(NodeId::new(0), NodeId::new(1)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
