//! The weighted undirected function data-flow graph.

use crate::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// One endpoint-adjacency entry: the neighbouring node together with the
/// edge that connects to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeighborRef {
    /// The adjacent node.
    pub node: NodeId,
    /// The undirected edge joining the two nodes.
    pub edge: EdgeId,
}

/// A borrowed view of an edge: its id, endpoints and weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Edge id inside the owning graph.
    pub id: EdgeId,
    /// First endpoint (lower insertion order).
    pub source: NodeId,
    /// Second endpoint.
    pub target: NodeId,
    /// Communication amount carried by the edge.
    pub weight: f64,
}

impl EdgeRef {
    /// Returns the endpoint opposite to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.source {
            self.target
        } else if n == self.target {
            self.source
        } else {
            panic!("{n} is not an endpoint of edge {}", self.id)
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct EdgeData {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) weight: f64,
}

/// A weighted, undirected function data-flow graph (paper §II).
///
/// *Nodes* are functions carrying a non-negative computation weight and
/// an *offloadable* flag (functions reading sensors or local I/O must
/// run on the device — paper §II calls them "unoffloaded functions").
/// *Edges* carry the amount of data exchanged between the two functions.
///
/// Graphs are constructed through [`GraphBuilder`](crate::GraphBuilder),
/// which validates weights and edge endpoints; once built, the structure
/// is immutable except for node weights and offloadability flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "GraphRepr", into = "GraphRepr")]
pub struct Graph {
    node_weights: Vec<f64>,
    offloadable: Vec<bool>,
    edges: Vec<EdgeData>,
    adjacency: Vec<Vec<NeighborRef>>,
}

impl Graph {
    pub(crate) fn from_parts(
        node_weights: Vec<f64>,
        offloadable: Vec<bool>,
        edges: Vec<EdgeData>,
    ) -> Self {
        debug_assert_eq!(node_weights.len(), offloadable.len());
        let mut adjacency = vec![Vec::new(); node_weights.len()];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::new(i);
            adjacency[e.a.index()].push(NeighborRef {
                node: e.b,
                edge: id,
            });
            adjacency[e.b.index()].push(NeighborRef {
                node: e.a,
                edge: id,
            });
        }
        Graph {
            node_weights,
            offloadable,
            edges,
            adjacency,
        }
    }

    /// Number of nodes (functions).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_weights.is_empty()
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edges as [`EdgeRef`] views, in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId::new(i),
            source: e.a,
            target: e.b,
            weight: e.weight,
        })
    }

    /// Returns the computation weight of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn node_weight(&self, n: NodeId) -> f64 {
        self.node_weights[n.index()]
    }

    /// Overwrites the computation weight of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds or `weight` is negative/non-finite.
    pub fn set_node_weight(&mut self, n: NodeId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "node weight must be finite and non-negative, got {weight}"
        );
        self.node_weights[n.index()] = weight;
    }

    /// `true` if function `n` may be offloaded to the edge server.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn is_offloadable(&self, n: NodeId) -> bool {
        self.offloadable[n.index()]
    }

    /// Marks function `n` as offloadable (`true`) or pinned to the
    /// device (`false`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn set_offloadable(&mut self, n: NodeId, offloadable: bool) {
        self.offloadable[n.index()] = offloadable;
    }

    /// Returns the communication weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].weight
    }

    /// Returns both endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let d = &self.edges[e.index()];
        (d.a, d.b)
    }

    /// Iterates over the neighbours of node `n` (with the connecting
    /// edge), in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn neighbors(&self, n: NodeId) -> impl ExactSizeIterator<Item = NeighborRef> + '_ {
        self.adjacency[n.index()].iter().copied()
    }

    /// Number of edges incident to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Sum of weights of the edges incident to `n` (the node's
    /// *coupling volume* — the paper uses edge weight as the coupling
    /// degree between two functions).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn weighted_degree(&self, n: NodeId) -> f64 {
        self.adjacency[n.index()]
            .iter()
            .map(|nb| self.edge_weight(nb.edge))
            .sum()
    }

    /// Total computation weight over all nodes.
    pub fn total_node_weight(&self) -> f64 {
        self.node_weights.iter().sum()
    }

    /// Total communication weight over all edges.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Looks up the edge joining `a` and `b`, if any.
    ///
    /// Scans the shorter of the two adjacency lists, so this is
    /// `O(min(deg(a), deg(b)))`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        let (probe, goal) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[probe.index()]
            .iter()
            .find(|nb| nb.node == goal)
            .map(|nb| nb.edge)
    }

    /// The node with the largest degree, breaking ties by lowest id;
    /// `None` for an empty graph. The paper's label propagation starts
    /// from this node (§III-A "Label initialization and propagation").
    pub fn max_degree_node(&self) -> Option<NodeId> {
        (0..self.node_count())
            .max_by(|&a, &b| {
                self.adjacency[a]
                    .len()
                    .cmp(&self.adjacency[b].len())
                    .then(b.cmp(&a))
            })
            .map(NodeId::new)
    }

    /// `true` when every node is reachable from every other (or the
    /// graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let labeling = crate::components::ComponentLabeling::compute(self);
        labeling.count() == 1
    }

    /// Validates internal invariants; used by tests and debug builds.
    ///
    /// Returns a description of the first violated invariant, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.node_weights.len() != self.offloadable.len() {
            return Err("node weight / offloadable length mismatch".into());
        }
        if self.adjacency.len() != self.node_weights.len() {
            return Err("adjacency length mismatch".into());
        }
        let mut seen = vec![0usize; self.node_count()];
        for (i, e) in self.edges.iter().enumerate() {
            if e.a.index() >= self.node_count() || e.b.index() >= self.node_count() {
                return Err(format!("edge {i} has out-of-range endpoint"));
            }
            if e.a == e.b {
                return Err(format!("edge {i} is a self-loop"));
            }
            if !e.weight.is_finite() || e.weight < 0.0 {
                return Err(format!("edge {i} has invalid weight {}", e.weight));
            }
            seen[e.a.index()] += 1;
            seen[e.b.index()] += 1;
        }
        for (n, adj) in self.adjacency.iter().enumerate() {
            if adj.len() != seen[n] {
                return Err(format!("adjacency list of node {n} is inconsistent"));
            }
        }
        Ok(())
    }
}

/// Serialisable mirror of [`Graph`] — node arrays plus the edge list.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GraphRepr {
    node_weights: Vec<f64>,
    offloadable: Vec<bool>,
    edges: Vec<EdgeData>,
}

impl From<GraphRepr> for Graph {
    fn from(r: GraphRepr) -> Self {
        Graph::from_parts(r.node_weights, r.offloadable, r.edges)
    }
}

impl From<Graph> for GraphRepr {
    fn from(g: Graph) -> Self {
        GraphRepr {
            node_weights: g.node_weights,
            offloadable: g.offloadable,
            edges: g.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, NodeId};

    fn diamond() -> crate::Graph {
        // 0 - 1
        // | X |   (0-1, 0-2, 1-2, 1-3, 2-3)
        // 2 - 3
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as f64 + 1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[0], n[2], 2.0).unwrap();
        b.add_edge(n[1], n[2], 3.0).unwrap();
        b.add_edge(n[1], n[3], 4.0).unwrap();
        b.add_edge(n[2], n[3], 5.0).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_totals() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.total_node_weight(), 10.0);
        assert_eq!(g.total_edge_weight(), 15.0);
        assert!(!g.is_empty());
    }

    #[test]
    fn degrees_and_weighted_degrees() {
        let g = diamond();
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 3);
        assert_eq!(g.weighted_degree(NodeId::new(3)), 9.0);
        assert_eq!(g.weighted_degree(NodeId::new(0)), 3.0);
    }

    #[test]
    fn edge_between_finds_edges_both_ways() {
        let g = diamond();
        let e = g.edge_between(NodeId::new(1), NodeId::new(3)).unwrap();
        assert_eq!(g.edge_weight(e), 4.0);
        let e2 = g.edge_between(NodeId::new(3), NodeId::new(1)).unwrap();
        assert_eq!(e, e2);
        assert!(g.edge_between(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn neighbors_cover_all_incident_edges() {
        let g = diamond();
        let nbrs: Vec<_> = g.neighbors(NodeId::new(1)).map(|nb| nb.node).collect();
        assert_eq!(nbrs.len(), 3);
        for n in [0, 2, 3] {
            assert!(nbrs.contains(&NodeId::new(n)));
        }
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let g = diamond();
        let e = g.edges().next().unwrap();
        assert_eq!(e.other(e.source), e.target);
        assert_eq!(e.other(e.target), e.source);
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn edge_ref_other_panics_on_foreign_node() {
        let g = diamond();
        let e = g.edges().next().unwrap();
        let _ = e.other(NodeId::new(3));
    }

    #[test]
    fn max_degree_node_prefers_lowest_id_on_tie() {
        let g = diamond();
        // nodes 1 and 2 both have degree 3; expect node 1.
        assert_eq!(g.max_degree_node(), Some(NodeId::new(1)));
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        let g2 = b.build();
        assert!(!g2.is_connected());
        let empty = GraphBuilder::new().build();
        assert!(empty.is_connected());
    }

    #[test]
    fn mutation_of_node_attributes() {
        let mut g = diamond();
        g.set_node_weight(NodeId::new(0), 7.5);
        assert_eq!(g.node_weight(NodeId::new(0)), 7.5);
        assert!(g.is_offloadable(NodeId::new(0)));
        g.set_offloadable(NodeId::new(0), false);
        assert!(!g.is_offloadable(NodeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "node weight must be finite")]
    fn set_node_weight_rejects_nan() {
        let mut g = diamond();
        g.set_node_weight(NodeId::new(0), f64::NAN);
    }

    #[test]
    fn invariants_hold_for_builder_output() {
        assert_eq!(diamond().check_invariants(), Ok(()));
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: crate::Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.check_invariants(), Ok(()));
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Graph>();
    }
}
