//! Structural metrics over function data-flow graphs.
//!
//! Used by the workload generator's validation (does the synthetic
//! graph actually look like a modular mobile application?), by
//! experiment reports, and by downstream users sizing their inputs.

use crate::{Graph, NodeGrouping, NodeId};

/// Summary statistics of a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistributionSummary {
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl DistributionSummary {
    /// Summarises `values`; all-zero for an empty input.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let vals: Vec<f64> = values.into_iter().collect();
        if vals.is_empty() {
            return DistributionSummary::default();
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &vals {
            min = min.min(v);
            max = max.max(v);
        }
        DistributionSummary {
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

impl Graph {
    /// Edge density: `m / (n·(n−1)/2)`, `0` for graphs with < 2 nodes.
    pub fn density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        self.edge_count() as f64 / (n * (n - 1) / 2) as f64
    }

    /// Summary of the (unweighted) degree distribution.
    pub fn degree_summary(&self) -> DistributionSummary {
        DistributionSummary::of(self.node_ids().map(|n| self.degree(n) as f64))
    }

    /// Summary of the edge-weight distribution.
    pub fn edge_weight_summary(&self) -> DistributionSummary {
        DistributionSummary::of(self.edges().map(|e| e.weight))
    }

    /// Summary of the node (computation) weight distribution.
    pub fn node_weight_summary(&self) -> DistributionSummary {
        DistributionSummary::of(self.node_ids().map(|n| self.node_weight(n)))
    }

    /// Global (transitivity-style) clustering coefficient:
    /// `3 × triangles / open triads`, ignoring weights. `0` when no
    /// triad exists.
    pub fn clustering_coefficient(&self) -> f64 {
        let n = self.node_count();
        // adjacency sets for O(deg) membership tests
        let mut neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in self.edges() {
            neigh[e.source.index()].push(e.target.index());
            neigh[e.target.index()].push(e.source.index());
        }
        for l in &mut neigh {
            l.sort_unstable();
        }
        let mut triangles = 0usize; // each counted 3× (once per vertex pair order)
        let mut triads = 0usize;
        for v in 0..n {
            let d = neigh[v].len();
            triads += d * d.saturating_sub(1) / 2;
            for (i, &a) in neigh[v].iter().enumerate() {
                for &b in &neigh[v][i + 1..] {
                    if neigh[a].binary_search(&b).is_ok() {
                        triangles += 1;
                    }
                }
            }
        }
        if triads == 0 {
            0.0
        } else {
            triangles as f64 / triads as f64
        }
    }

    /// Weighted Newman modularity of a node grouping:
    /// `Q = Σ_c (w_in(c)/W − (vol(c)/2W)²)` with `W` the total edge
    /// weight. Positive values mean the grouping captures real
    /// community structure; `0` for an edgeless graph.
    ///
    /// # Panics
    ///
    /// Panics if `grouping` does not cover exactly this graph's nodes.
    pub fn modularity(&self, grouping: &NodeGrouping) -> f64 {
        assert_eq!(
            grouping.node_count(),
            self.node_count(),
            "grouping covers {} nodes but graph has {}",
            grouping.node_count(),
            self.node_count()
        );
        let total = self.total_edge_weight();
        if total <= 0.0 {
            return 0.0;
        }
        let k = grouping.group_count();
        let mut internal = vec![0.0f64; k];
        let mut volume = vec![0.0f64; k];
        for e in self.edges() {
            let (ga, gb) = (grouping.group_of(e.source), grouping.group_of(e.target));
            volume[ga] += e.weight;
            volume[gb] += e.weight;
            if ga == gb {
                internal[ga] += e.weight;
            }
        }
        (0..k)
            .map(|c| internal[c] / total - (volume[c] / (2.0 * total)).powi(2))
            .sum()
    }

    /// The fraction of total edge weight incident to unoffloadable
    /// nodes — how device-bound the application's communication is.
    pub fn pinned_coupling_fraction(&self) -> f64 {
        let total = self.total_edge_weight();
        if total <= 0.0 {
            return 0.0;
        }
        let pinned: f64 = self
            .edges()
            .filter(|e| !self.is_offloadable(e.source) || !self.is_offloadable(e.target))
            .map(|e| e.weight)
            .sum();
        pinned / total
    }

    /// The node maximising `f`; ties go to the smaller id. `None` on an
    /// empty graph.
    pub fn argmax_node(&self, mut f: impl FnMut(NodeId) -> f64) -> Option<NodeId> {
        self.node_ids()
            .fold(None, |best, n| {
                let v = f(n);
                match best {
                    Some((_, bv)) if bv >= v => best,
                    _ => Some((n, v)),
                }
            })
            .map(|(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as f64 + 1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[0], 3.0).unwrap();
        b.add_edge(n[2], n[3], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn distribution_summary_basics() {
        let s = DistributionSummary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(DistributionSummary::of([]), DistributionSummary::default());
    }

    #[test]
    fn density_and_degree() {
        let g = triangle_plus_tail();
        assert!((g.density() - 4.0 / 6.0).abs() < 1e-12);
        let d = g.degree_summary();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert_eq!(d.mean, 2.0);
    }

    #[test]
    fn clustering_counts_the_triangle() {
        let g = triangle_plus_tail();
        // triangles (counted per centre vertex): 3; triads: 1+1+3+0 = 5
        assert!((g.clustering_coefficient() - 3.0 / 5.0).abs() < 1e-12);
        // a path has no triangles
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        assert_eq!(b.build().clustering_coefficient(), 0.0);
    }

    #[test]
    fn modularity_prefers_true_communities() {
        // two heavy triangles bridged by one light edge
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(n[a], n[c], 10.0).unwrap();
        }
        b.add_edge(n[2], n[3], 1.0).unwrap();
        let g = b.build();
        let good = NodeGrouping::from_raw(&[0, 0, 0, 1, 1, 1]);
        let bad = NodeGrouping::from_raw(&[0, 1, 0, 1, 0, 1]);
        let all_one = NodeGrouping::from_raw(&[0; 6]);
        assert!(g.modularity(&good) > 0.3);
        assert!(g.modularity(&good) > g.modularity(&bad));
        assert!(g.modularity(&all_one).abs() < 1e-12);
    }

    #[test]
    fn pinned_coupling_fraction() {
        let mut b = GraphBuilder::new();
        let p = b.add_pinned_node(1.0);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(p, x, 3.0).unwrap();
        b.add_edge(x, y, 7.0).unwrap();
        let g = b.build();
        assert!((g.pinned_coupling_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn argmax_node_breaks_ties_low() {
        let g = triangle_plus_tail();
        assert_eq!(g.argmax_node(|n| g.node_weight(n)), Some(NodeId::new(3)));
        assert_eq!(g.argmax_node(|_| 1.0), Some(NodeId::new(0)));
        assert_eq!(GraphBuilder::new().build().argmax_node(|_| 0.0), None);
    }

    #[test]
    fn empty_graph_metrics_are_zero() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.clustering_coefficient(), 0.0);
        assert_eq!(g.pinned_coupling_fraction(), 0.0);
    }
}
