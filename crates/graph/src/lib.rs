//! Weighted undirected *function data-flow graphs* — the core data
//! structure of the COPMECS pipeline (paper §II, Fig. 1).
//!
//! A [`Graph`] models one mobile application: each node is a function
//! with a computation weight, each edge carries the amount of data the
//! two functions exchange. Nodes flagged *unoffloadable* (sensor / local
//! I/O access) must stay on the device.
//!
//! The crate also hosts the shared partition vocabulary used by every
//! cut algorithm in the workspace ([`Bipartition`], [`Side`]) and the
//! structural helpers the pipeline needs: connected components, induced
//! sub-graphs, quotient (merge) graphs, and CSR adjacency views.
//!
//! # Example
//!
//! ```
//! use mec_graph::{GraphBuilder, Side};
//!
//! # fn main() -> Result<(), mec_graph::GraphError> {
//! // Fig. 1 of the paper: f1 calls f2 (|a| = 10) and f3 (|b| = 8);
//! // f2 calls f4 (|c| = 12) and f5 (|d| = 7).
//! let mut b = GraphBuilder::new();
//! let f1 = b.add_node(4.0);
//! let f2 = b.add_node(6.0);
//! let f3 = b.add_node(2.0);
//! let f4 = b.add_node(9.0);
//! let f5 = b.add_node(3.0);
//! b.add_edge(f1, f2, 10.0)?;
//! b.add_edge(f1, f3, 8.0)?;
//! b.add_edge(f2, f4, 12.0)?;
//! b.add_edge(f2, f5, 7.0)?;
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 5);
//! assert!(g.is_connected());
//!
//! // Cut {f1} | {f2..f5} severs the two calls out of f1.
//! let cut = mec_graph::Bipartition::from_fn(g.node_count(), |i| {
//!     if i == f1.index() { Side::Local } else { Side::Remote }
//! });
//! assert_eq!(cut.cut_weight(&g), 18.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// index-based loops over rows/columns are the natural idiom in the
// numeric kernels here; iterator gymnastics would obscure the math
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod builder;
mod components;
mod csr;
mod dot;
mod error;
mod graph;
mod ids;
mod metrics;
mod partition;
mod quotient;
mod subgraph;
mod traversal;

pub use builder::{GraphBuilder, ParallelEdgePolicy};
pub use components::ComponentLabeling;
pub use csr::{CsrAdjacency, CsrView};
pub use error::GraphError;
pub use graph::{EdgeRef, Graph, NeighborRef};
pub use ids::{EdgeId, NodeId};
pub use metrics::DistributionSummary;
pub use partition::{Bipartition, Side};
pub use quotient::{NodeGrouping, QuotientGraph};
pub use subgraph::Subgraph;
