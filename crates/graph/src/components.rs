//! Connected-component labelling.
//!
//! The paper's compression stage (§III-A "Graph Partition") splits the
//! function data-flow graph at component boundaries before any label
//! propagation runs, so component discovery is a first-class operation.

use crate::{Graph, NodeId};

/// The result of a connected-components pass: a dense component id per
/// node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabeling {
    component_of: Vec<u32>,
    count: usize,
}

impl ComponentLabeling {
    /// Labels the connected components of `g` with a breadth-first
    /// sweep; component ids are dense in `0..count`, numbered in order
    /// of their smallest node id.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        const UNVISITED: u32 = u32::MAX;
        let mut component_of = vec![UNVISITED; n];
        let mut count = 0usize;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if component_of[start] != UNVISITED {
                continue;
            }
            let id = u32::try_from(count).expect("component count exceeds u32");
            component_of[start] = id;
            queue.push_back(NodeId::new(start));
            while let Some(u) = queue.pop_front() {
                for nb in g.neighbors(u) {
                    let slot = &mut component_of[nb.node.index()];
                    if *slot == UNVISITED {
                        *slot = id;
                        queue.push_back(nb.node);
                    }
                }
            }
            count += 1;
        }
        ComponentLabeling {
            component_of,
            count,
        }
    }

    /// Number of connected components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component id of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds for the labelled graph.
    #[inline]
    pub fn component_of(&self, n: NodeId) -> usize {
        self.component_of[n.index()] as usize
    }

    /// `true` when `a` and `b` are in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    #[inline]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component_of[a.index()] == self.component_of[b.index()]
    }

    /// Groups node ids by component: `result[c]` lists the members of
    /// component `c` in ascending node order.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &c) in self.component_of.iter().enumerate() {
            out[c as usize].push(NodeId::new(i));
        }
        out
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles_and_isolate() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..7).map(|_| b.add_node(1.0)).collect();
        // triangle A: 0-1-2
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.add_edge(n[2], n[0], 1.0).unwrap();
        // triangle B: 3-4-5
        b.add_edge(n[3], n[4], 1.0).unwrap();
        b.add_edge(n[4], n[5], 1.0).unwrap();
        b.add_edge(n[5], n[3], 1.0).unwrap();
        // node 6 isolated
        b.build()
    }

    #[test]
    fn finds_three_components() {
        let g = two_triangles_and_isolate();
        let c = ComponentLabeling::compute(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes(), vec![3, 3, 1]);
    }

    #[test]
    fn component_ids_follow_smallest_member() {
        let g = two_triangles_and_isolate();
        let c = ComponentLabeling::compute(&g);
        assert_eq!(c.component_of(NodeId::new(0)), 0);
        assert_eq!(c.component_of(NodeId::new(4)), 1);
        assert_eq!(c.component_of(NodeId::new(6)), 2);
    }

    #[test]
    fn same_component_relation() {
        let g = two_triangles_and_isolate();
        let c = ComponentLabeling::compute(&g);
        assert!(c.same_component(NodeId::new(0), NodeId::new(2)));
        assert!(!c.same_component(NodeId::new(0), NodeId::new(3)));
        assert!(!c.same_component(NodeId::new(5), NodeId::new(6)));
    }

    #[test]
    fn members_partition_the_node_set() {
        let g = two_triangles_and_isolate();
        let c = ComponentLabeling::compute(&g);
        let members = c.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
        assert_eq!(members[2], vec![NodeId::new(6)]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::new().build();
        let c = ComponentLabeling::compute(&g);
        assert_eq!(c.count(), 0);
        assert!(c.members().is_empty());
    }

    #[test]
    fn edges_never_cross_components() {
        let g = two_triangles_and_isolate();
        let c = ComponentLabeling::compute(&g);
        for e in g.edges() {
            assert!(c.same_component(e.source, e.target));
        }
    }
}
