//! Validated construction of [`Graph`]s.

use crate::graph::EdgeData;
use crate::{EdgeId, Graph, GraphError, NodeId};
use std::collections::HashMap;

/// What to do when an edge between an already-connected node pair is
/// added again.
///
/// Function data-flow graphs aggregate *all* data exchanged between two
/// functions onto one edge, so the default policy sums the weights
/// (paper Fig. 1: one edge per calling relationship, weight = data
/// volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelEdgePolicy {
    /// Add the new weight onto the existing edge (default).
    #[default]
    Sum,
    /// Keep the larger of the two weights.
    Max,
    /// Return [`GraphError::ParallelEdge`].
    Reject,
}

/// Incremental, validating builder for [`Graph`].
///
/// ```
/// use mec_graph::GraphBuilder;
/// # fn main() -> Result<(), mec_graph::GraphError> {
/// let mut b = GraphBuilder::new();
/// let sensor_read = b.add_pinned_node(1.5); // touches hardware: unoffloadable
/// let classify = b.add_node(40.0);
/// b.add_edge(sensor_read, classify, 12.0)?;
/// let g = b.build();
/// assert!(!g.is_offloadable(sensor_read));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_weights: Vec<f64>,
    offloadable: Vec<bool>,
    edges: Vec<EdgeData>,
    edge_index: HashMap<(NodeId, NodeId), EdgeId>,
    policy: ParallelEdgePolicy,
}

impl GraphBuilder {
    /// Creates an empty builder with the default
    /// [`ParallelEdgePolicy::Sum`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            node_weights: Vec::with_capacity(nodes),
            offloadable: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_index: HashMap::with_capacity(edges),
            policy: ParallelEdgePolicy::default(),
        }
    }

    /// Sets the policy applied when the same node pair is connected
    /// twice.
    pub fn parallel_edge_policy(&mut self, policy: ParallelEdgePolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an offloadable function with computation weight `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite; use
    /// [`try_add_node`](Self::try_add_node) for fallible insertion.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        self.try_add_node(weight, true)
            .expect("invalid node weight")
    }

    /// Adds an *unoffloadable* function (sensor / local-I/O bound).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn add_pinned_node(&mut self, weight: f64) -> NodeId {
        self.try_add_node(weight, false)
            .expect("invalid node weight")
    }

    /// Adds a function, specifying offloadability explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NegativeWeight`] or
    /// [`GraphError::NonFiniteWeight`] for invalid weights.
    pub fn try_add_node(&mut self, weight: f64, offloadable: bool) -> Result<NodeId, GraphError> {
        validate_weight(weight)?;
        let id = NodeId::new(self.node_weights.len());
        self.node_weights.push(weight);
        self.offloadable.push(offloadable);
        Ok(id)
    }

    /// Connects `a` and `b` with communication weight `weight`.
    ///
    /// Re-connecting an existing pair follows the configured
    /// [`ParallelEdgePolicy`]; the returned id is the surviving edge.
    ///
    /// # Errors
    ///
    /// - [`GraphError::UnknownNode`] if an endpoint was never added;
    /// - [`GraphError::SelfLoop`] if `a == b`;
    /// - [`GraphError::NegativeWeight`] / [`GraphError::NonFiniteWeight`]
    ///   for invalid weights;
    /// - [`GraphError::ParallelEdge`] under
    ///   [`ParallelEdgePolicy::Reject`].
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> Result<EdgeId, GraphError> {
        validate_weight(weight)?;
        if a.index() >= self.node_weights.len() {
            return Err(GraphError::UnknownNode(a));
        }
        if b.index() >= self.node_weights.len() {
            return Err(GraphError::UnknownNode(b));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&existing) = self.edge_index.get(&key) {
            match self.policy {
                ParallelEdgePolicy::Sum => {
                    self.edges[existing.index()].weight += weight;
                    Ok(existing)
                }
                ParallelEdgePolicy::Max => {
                    let w = &mut self.edges[existing.index()].weight;
                    *w = w.max(weight);
                    Ok(existing)
                }
                ParallelEdgePolicy::Reject => Err(GraphError::ParallelEdge(a, b)),
            }
        } else {
            let id = EdgeId::new(self.edges.len());
            self.edges.push(EdgeData { a, b, weight });
            self.edge_index.insert(key, id);
            Ok(id)
        }
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_parts(self.node_weights, self.offloadable, self.edges)
    }
}

fn validate_weight(weight: f64) -> Result<(), GraphError> {
    if !weight.is_finite() {
        Err(GraphError::NonFiniteWeight(weight))
    } else if weight < 0.0 {
        Err(GraphError::NegativeWeight(weight))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::with_capacity(2, 1);
        let a = b.add_node(1.0);
        let c = b.add_node(2.0);
        assert_eq!(b.node_count(), 2);
        b.add_edge(a, c, 3.0).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.is_offloadable(a));
    }

    #[test]
    fn pinned_nodes_are_unoffloadable() {
        let mut b = GraphBuilder::new();
        let p = b.add_pinned_node(5.0);
        let g = b.build();
        assert!(!g.is_offloadable(p));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        assert_eq!(b.add_edge(a, a, 1.0), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_unknown_endpoints() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let ghost = NodeId::new(9);
        assert_eq!(
            b.add_edge(a, ghost, 1.0),
            Err(GraphError::UnknownNode(ghost))
        );
        assert_eq!(
            b.add_edge(ghost, a, 1.0),
            Err(GraphError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0);
        let c = b.add_node(0.0);
        assert_eq!(
            b.add_edge(a, c, -1.0),
            Err(GraphError::NegativeWeight(-1.0))
        );
        assert!(matches!(
            b.add_edge(a, c, f64::INFINITY),
            Err(GraphError::NonFiniteWeight(_))
        ));
        assert!(b.try_add_node(-2.0, true).is_err());
        assert!(b.try_add_node(f64::NAN, true).is_err());
    }

    #[test]
    fn parallel_edges_sum_by_default() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let e1 = b.add_edge(a, c, 2.0).unwrap();
        let e2 = b.add_edge(c, a, 3.0).unwrap();
        assert_eq!(e1, e2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(e1), 5.0);
    }

    #[test]
    fn parallel_edges_max_policy() {
        let mut b = GraphBuilder::new();
        b.parallel_edge_policy(ParallelEdgePolicy::Max);
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let e = b.add_edge(a, c, 2.0).unwrap();
        b.add_edge(a, c, 7.0).unwrap();
        b.add_edge(a, c, 4.0).unwrap();
        assert_eq!(b.build().edge_weight(e), 7.0);
    }

    #[test]
    fn parallel_edges_reject_policy() {
        let mut b = GraphBuilder::new();
        b.parallel_edge_policy(ParallelEdgePolicy::Reject);
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        b.add_edge(a, c, 2.0).unwrap();
        assert_eq!(b.add_edge(a, c, 3.0), Err(GraphError::ParallelEdge(a, c)));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0);
        let c = b.add_node(0.0);
        b.add_edge(a, c, 0.0).unwrap();
        assert_eq!(b.build().total_edge_weight(), 0.0);
    }
}
