//! Quotient (merge) graphs — the output of the compression stage.
//!
//! After label propagation, directly-connected nodes sharing a label are
//! merged into one super-node (paper §III-A "Compression"). A
//! [`QuotientGraph`] is the merged graph plus the grouping that produced
//! it, so cut decisions on super-nodes can be expanded back onto the
//! original functions.

use crate::{Bipartition, Graph, GraphBuilder, NodeId, Side};

/// A mapping of original nodes onto merge groups.
///
/// Groups are dense ids `0..group_count`; every original node belongs
/// to exactly one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeGrouping {
    group_of: Vec<u32>,
    group_count: usize,
}

impl NodeGrouping {
    /// Builds a grouping from a per-node group id vector.
    ///
    /// Group ids need not be dense; they are renumbered to
    /// `0..group_count` preserving first-appearance order.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is empty group ids overflow `u32`.
    pub fn from_raw(raw: &[usize]) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut group_of = Vec::with_capacity(raw.len());
        for &r in raw {
            let next = remap.len();
            let id = *remap.entry(r).or_insert(next);
            group_of.push(u32::try_from(id).expect("group id exceeds u32"));
        }
        NodeGrouping {
            group_of,
            group_count: remap.len(),
        }
    }

    /// The identity grouping: every node is its own group.
    pub fn identity(node_count: usize) -> Self {
        NodeGrouping {
            group_of: (0..node_count)
                .map(|i| u32::try_from(i).expect("node count exceeds u32"))
                .collect(),
            group_count: node_count,
        }
    }

    /// Number of groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Number of original nodes covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.group_of.len()
    }

    /// Group id of original node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn group_of(&self, n: NodeId) -> usize {
        self.group_of[n.index()] as usize
    }

    /// Lists members of each group in ascending node order.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.group_count];
        for (i, &g) in self.group_of.iter().enumerate() {
            out[g as usize].push(NodeId::new(i));
        }
        out
    }
}

/// A merged graph: one node per group, node weights summed, edge
/// weights between groups aggregated, intra-group edges dropped.
#[derive(Debug, Clone)]
pub struct QuotientGraph {
    graph: Graph,
    grouping: NodeGrouping,
    /// Communication weight that disappeared inside groups.
    absorbed_weight: f64,
}

impl QuotientGraph {
    /// Contracts `parent` according to `grouping`.
    ///
    /// A merged super-node is offloadable only if *all* its members are
    /// (a pinned function pins the whole merge group to the device).
    ///
    /// # Panics
    ///
    /// Panics if `grouping` does not cover exactly the nodes of
    /// `parent`.
    pub fn contract(parent: &Graph, grouping: NodeGrouping) -> Self {
        assert_eq!(
            grouping.node_count(),
            parent.node_count(),
            "grouping covers {} nodes but graph has {}",
            grouping.node_count(),
            parent.node_count()
        );
        let k = grouping.group_count();
        let mut weights = vec![0.0f64; k];
        let mut offloadable = vec![true; k];
        for n in parent.node_ids() {
            let g = grouping.group_of(n);
            weights[g] += parent.node_weight(n);
            offloadable[g] &= parent.is_offloadable(n);
        }
        let mut b = GraphBuilder::with_capacity(k, parent.edge_count());
        for g in 0..k {
            b.try_add_node(weights[g], offloadable[g])
                .expect("summed weights are finite and non-negative");
        }
        let mut absorbed = 0.0;
        for e in parent.edges() {
            let ga = grouping.group_of(e.source);
            let gb = grouping.group_of(e.target);
            if ga == gb {
                absorbed += e.weight;
            } else {
                // default Sum policy aggregates parallel group edges.
                b.add_edge(NodeId::new(ga), NodeId::new(gb), e.weight)
                    .expect("group edges are validated");
            }
        }
        QuotientGraph {
            graph: b.build(),
            grouping,
            absorbed_weight: absorbed,
        }
    }

    /// The contracted graph (one node per group).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The grouping used for contraction.
    #[inline]
    pub fn grouping(&self) -> &NodeGrouping {
        &self.grouping
    }

    /// Total edge weight that became internal to groups (and therefore
    /// can never be cut — the point of compression).
    #[inline]
    pub fn absorbed_weight(&self) -> f64 {
        self.absorbed_weight
    }

    /// Expands a bipartition of the quotient graph onto the original
    /// node set: every member inherits its group's side.
    ///
    /// # Panics
    ///
    /// Panics if `quotient_cut` does not cover the quotient graph.
    pub fn expand(&self, quotient_cut: &Bipartition) -> Bipartition {
        assert!(quotient_cut.len() >= self.graph.node_count());
        Bipartition::from_fn(self.grouping.node_count(), |i| {
            quotient_cut.side(NodeId::new(self.grouping.group_of(NodeId::new(i))))
        })
    }

    /// Expands per-group sides given as a slice indexed by group id.
    ///
    /// # Panics
    ///
    /// Panics if `sides` is shorter than the group count.
    pub fn expand_sides(&self, sides: &[Side]) -> Bipartition {
        assert!(sides.len() >= self.grouping.group_count());
        Bipartition::from_fn(self.grouping.node_count(), |i| {
            sides[self.grouping.group_of(NodeId::new(i))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn square() -> Graph {
        // 0-1, 1-2, 2-3, 3-0 cycle with distinct weights
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node((i + 1) as f64)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        b.add_edge(n[3], n[0], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn grouping_renumbers_densely() {
        let g = NodeGrouping::from_raw(&[7, 7, 3, 9]);
        assert_eq!(g.group_count(), 3);
        assert_eq!(g.group_of(NodeId::new(0)), 0);
        assert_eq!(g.group_of(NodeId::new(1)), 0);
        assert_eq!(g.group_of(NodeId::new(2)), 1);
        assert_eq!(g.group_of(NodeId::new(3)), 2);
    }

    #[test]
    fn identity_grouping_is_one_to_one() {
        let g = NodeGrouping::identity(3);
        assert_eq!(g.group_count(), 3);
        for i in 0..3 {
            assert_eq!(g.group_of(NodeId::new(i)), i);
        }
    }

    #[test]
    fn contract_merges_weights_and_edges() {
        let g = square();
        // merge {0,1} and {2,3}
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 0, 1, 1]));
        assert_eq!(q.graph().node_count(), 2);
        assert_eq!(q.graph().node_weight(NodeId::new(0)), 3.0);
        assert_eq!(q.graph().node_weight(NodeId::new(1)), 7.0);
        // inter-group edges 1-2 (2.0) and 3-0 (4.0) collapse to one edge 6.0
        assert_eq!(q.graph().edge_count(), 1);
        assert_eq!(q.graph().total_edge_weight(), 6.0);
        // intra-group edges 0-1 (1.0) and 2-3 (3.0) absorbed
        assert_eq!(q.absorbed_weight(), 4.0);
    }

    #[test]
    fn contract_conserves_total_weights() {
        let g = square();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 1, 0, 1]));
        assert_eq!(q.graph().total_node_weight(), g.total_node_weight());
        assert!(
            (q.graph().total_edge_weight() + q.absorbed_weight() - g.total_edge_weight()).abs()
                < 1e-12
        );
    }

    #[test]
    fn pinned_member_pins_group() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_pinned_node(1.0);
        let d = b.add_node(1.0);
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        let g = b.build();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 0, 1]));
        assert!(!q.graph().is_offloadable(NodeId::new(0)));
        assert!(q.graph().is_offloadable(NodeId::new(1)));
    }

    #[test]
    fn expand_propagates_sides_to_members() {
        let g = square();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 0, 1, 1]));
        let cut = Bipartition::from_sides(vec![Side::Local, Side::Remote]);
        let full = q.expand(&cut);
        assert_eq!(full.side(NodeId::new(0)), Side::Local);
        assert_eq!(full.side(NodeId::new(1)), Side::Local);
        assert_eq!(full.side(NodeId::new(2)), Side::Remote);
        assert_eq!(full.side(NodeId::new(3)), Side::Remote);
        // the expanded cut weight equals the quotient cut weight
        assert_eq!(full.cut_weight(&g), cut.cut_weight(q.graph()));
    }

    #[test]
    fn expand_sides_slice_variant() {
        let g = square();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 1, 1, 0]));
        let full = q.expand_sides(&[Side::Remote, Side::Local]);
        assert_eq!(full.side(NodeId::new(0)), Side::Remote);
        assert_eq!(full.side(NodeId::new(3)), Side::Remote);
        assert_eq!(full.side(NodeId::new(1)), Side::Local);
    }

    #[test]
    #[should_panic(expected = "grouping covers")]
    fn contract_rejects_mismatched_grouping() {
        let g = square();
        let _ = QuotientGraph::contract(&g, NodeGrouping::from_raw(&[0, 0]));
    }
}
