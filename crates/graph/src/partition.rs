//! Bipartition vocabulary shared by every cut algorithm.
//!
//! The paper partitions each compressed sub-graph into two parts — one
//! executing locally on the device, one offloaded to the edge server
//! (§III-B). [`Side`] names the two parts and [`Bipartition`] maps each
//! node to a side and prices the resulting cut.

use crate::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which half of a bipartition a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Executes on the mobile device (`V_c` in the paper).
    Local,
    /// Offloaded to the edge server (`V_s` in the paper).
    Remote,
}

impl Side {
    /// The other side.
    #[inline]
    pub fn flipped(self) -> Side {
        match self {
            Side::Local => Side::Remote,
            Side::Remote => Side::Local,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Local => f.write_str("local"),
            Side::Remote => f.write_str("remote"),
        }
    }
}

/// An assignment of every node of a graph to [`Side::Local`] or
/// [`Side::Remote`].
///
/// This is the common output type of all cut strategies (spectral,
/// max-flow, Kernighan–Lin) and the common input of the MEC cost model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bipartition {
    sides: Vec<Side>,
}

impl Bipartition {
    /// All nodes on one side.
    pub fn uniform(len: usize, side: Side) -> Self {
        Bipartition {
            sides: vec![side; len],
        }
    }

    /// Builds a partition by evaluating `f` on each node index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> Side) -> Self {
        Bipartition {
            sides: (0..len).map(&mut f).collect(),
        }
    }

    /// Builds a partition from an explicit side vector.
    pub fn from_sides(sides: Vec<Side>) -> Self {
        Bipartition { sides }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// `true` when the partition covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// Side of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn side(&self, n: NodeId) -> Side {
        self.sides[n.index()]
    }

    /// Reassigns node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn assign(&mut self, n: NodeId, side: Side) {
        self.sides[n.index()] = side;
    }

    /// Moves node `n` to the opposite side.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    #[inline]
    pub fn flip(&mut self, n: NodeId) {
        let s = self.sides[n.index()];
        self.sides[n.index()] = s.flipped();
    }

    /// Iterates over the nodes assigned to `side`.
    pub fn nodes_on(&self, side: Side) -> impl Iterator<Item = NodeId> + '_ {
        self.sides
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == side)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Number of nodes assigned to `side`.
    pub fn count_on(&self, side: Side) -> usize {
        self.sides.iter().filter(|&&s| s == side).count()
    }

    /// Total communication weight crossing the partition — the paper's
    /// `CUT` of formula (8).
    ///
    /// # Panics
    ///
    /// Panics if `g` has more nodes than this partition covers.
    pub fn cut_weight(&self, g: &Graph) -> f64 {
        assert!(
            g.node_count() <= self.sides.len(),
            "partition covers {} nodes but graph has {}",
            self.sides.len(),
            g.node_count()
        );
        g.edges()
            .filter(|e| self.sides[e.source.index()] != self.sides[e.target.index()])
            .map(|e| e.weight)
            .sum()
    }

    /// Total node (computation) weight on `side`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has more nodes than this partition covers.
    pub fn node_weight_on(&self, g: &Graph, side: Side) -> f64 {
        assert!(g.node_count() <= self.sides.len());
        self.nodes_on(side)
            .filter(|n| n.index() < g.node_count())
            .map(|n| g.node_weight(n))
            .sum()
    }

    /// `true` when both sides hold at least one node.
    pub fn is_proper(&self) -> bool {
        let mut seen_local = false;
        let mut seen_remote = false;
        for &s in &self.sides {
            match s {
                Side::Local => seen_local = true,
                Side::Remote => seen_remote = true,
            }
            if seen_local && seen_remote {
                return true;
            }
        }
        false
    }

    /// Immutable view of the side vector.
    pub fn as_slice(&self) -> &[Side] {
        &self.sides
    }
}

impl FromIterator<Side> for Bipartition {
    fn from_iter<I: IntoIterator<Item = Side>>(iter: I) -> Self {
        Bipartition {
            sides: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(i as f64)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        b.build()
    }

    #[test]
    fn side_flips() {
        assert_eq!(Side::Local.flipped(), Side::Remote);
        assert_eq!(Side::Remote.flipped(), Side::Local);
        assert_eq!(Side::Local.to_string(), "local");
    }

    #[test]
    fn uniform_partition_has_zero_cut() {
        let g = path4();
        let p = Bipartition::uniform(4, Side::Local);
        assert_eq!(p.cut_weight(&g), 0.0);
        assert!(!p.is_proper());
        assert_eq!(p.count_on(Side::Local), 4);
    }

    #[test]
    fn cut_weight_counts_crossing_edges_once() {
        let g = path4();
        // split between node 1 and node 2: only edge (1,2) crosses.
        let p = Bipartition::from_fn(4, |i| if i <= 1 { Side::Local } else { Side::Remote });
        assert_eq!(p.cut_weight(&g), 2.0);
        assert!(p.is_proper());
    }

    #[test]
    fn flip_moves_node_across() {
        let g = path4();
        let mut p = Bipartition::uniform(4, Side::Local);
        p.flip(NodeId::new(3));
        assert_eq!(p.side(NodeId::new(3)), Side::Remote);
        assert_eq!(p.cut_weight(&g), 3.0);
        p.assign(NodeId::new(3), Side::Local);
        assert_eq!(p.cut_weight(&g), 0.0);
    }

    #[test]
    fn node_weight_on_sums_by_side() {
        let g = path4();
        let p = Bipartition::from_fn(4, |i| {
            if i % 2 == 0 {
                Side::Local
            } else {
                Side::Remote
            }
        });
        assert_eq!(p.node_weight_on(&g, Side::Local), 0.0 + 2.0);
        assert_eq!(p.node_weight_on(&g, Side::Remote), 1.0 + 3.0);
    }

    #[test]
    fn nodes_on_enumerates_in_order() {
        let p = Bipartition::from_sides(vec![Side::Remote, Side::Local, Side::Remote, Side::Local]);
        let locals: Vec<_> = p.nodes_on(Side::Local).map(NodeId::index).collect();
        assert_eq!(locals, vec![1, 3]);
    }

    #[test]
    fn from_iterator_collects() {
        let p: Bipartition = [Side::Local, Side::Remote].into_iter().collect();
        assert_eq!(p.len(), 2);
        assert!(p.is_proper());
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn cut_weight_rejects_undersized_partition() {
        let g = path4();
        let p = Bipartition::uniform(2, Side::Local);
        let _ = p.cut_weight(&g);
    }

    #[test]
    fn serde_round_trip() {
        let p = Bipartition::from_sides(vec![Side::Local, Side::Remote]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Bipartition = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
