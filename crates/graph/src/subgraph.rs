//! Induced sub-graphs with bidirectional node mappings.
//!
//! The compression stage processes each connected component as its own
//! graph (paper Algorithm 1, `componentSplit`); [`Subgraph`] carries the
//! extracted graph together with the mapping back into the parent.

use crate::{Graph, GraphBuilder, NodeId};

/// Sentinel marking "not in the subset" in dense parent → local maps.
const OUTSIDE: u32 = u32::MAX;

/// A graph induced on a subset of a parent graph's nodes, remembering
/// where every node came from.
#[derive(Debug, Clone)]
pub struct Subgraph {
    graph: Graph,
    /// `to_parent[i]` is the parent node that became local node `i`.
    to_parent: Vec<NodeId>,
}

impl Subgraph {
    /// Extracts the sub-graph of `parent` induced on `nodes`.
    ///
    /// Nodes keep their weights and offloadability; every parent edge
    /// with both endpoints in `nodes` is kept with its weight. Local
    /// node ids follow the order of `nodes`.
    ///
    /// Duplicate entries in `nodes` are ignored after their first
    /// occurrence.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `nodes` is out of bounds for `parent`.
    pub fn induced(parent: &Graph, nodes: &[NodeId]) -> Self {
        // dense parent → local map: O(1) lookups with no hashing in the
        // edge scan, the hot part of component splitting
        let mut to_local = vec![OUTSIDE; parent.node_count()];
        let mut to_parent = Vec::with_capacity(nodes.len());
        let mut b = GraphBuilder::with_capacity(nodes.len(), nodes.len());
        for &p in nodes {
            if to_local[p.index()] != OUTSIDE {
                continue;
            }
            let local = b
                .try_add_node(parent.node_weight(p), parent.is_offloadable(p))
                .expect("parent graph holds validated weights");
            to_local[p.index()] = u32::try_from(local.index()).expect("node index exceeds u32");
            to_parent.push(p);
        }
        for e in parent.edges() {
            let (la, lb) = (to_local[e.source.index()], to_local[e.target.index()]);
            if la != OUTSIDE && lb != OUTSIDE {
                b.add_edge(NodeId::new(la as usize), NodeId::new(lb as usize), e.weight)
                    .expect("parent edges are validated and distinct");
            }
        }
        Subgraph {
            graph: b.build(),
            to_parent,
        }
    }

    /// Splits `parent` into one sub-graph per connected component,
    /// ordered by component id.
    ///
    /// Single-pass: every parent edge is dispatched to its component's
    /// builder directly (edges never straddle components), so the whole
    /// split costs `O(V + E)` instead of one full edge scan per
    /// component. Nodes and edges land in the same order a per-component
    /// [`Subgraph::induced`] call would produce.
    pub fn split_components(parent: &Graph) -> Vec<Subgraph> {
        let labeling = crate::ComponentLabeling::compute(parent);
        let members = labeling.members();
        let mut to_local = vec![OUTSIDE; parent.node_count()];
        let mut builders = Vec::with_capacity(members.len());
        for mem in &members {
            let mut b = GraphBuilder::with_capacity(mem.len(), mem.len());
            for &p in mem {
                let local = b
                    .try_add_node(parent.node_weight(p), parent.is_offloadable(p))
                    .expect("parent graph holds validated weights");
                to_local[p.index()] = u32::try_from(local.index()).expect("node index exceeds u32");
            }
            builders.push(b);
        }
        for e in parent.edges() {
            let c = labeling.component_of(e.source);
            builders[c]
                .add_edge(
                    NodeId::new(to_local[e.source.index()] as usize),
                    NodeId::new(to_local[e.target.index()] as usize),
                    e.weight,
                )
                .expect("parent edges are validated and distinct");
        }
        builders
            .into_iter()
            .zip(members)
            .map(|(b, mem)| Subgraph {
                graph: b.build(),
                to_parent: mem,
            })
            .collect()
    }

    /// The extracted graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the extracted graph (weights / flags only —
    /// the structure is immutable).
    #[inline]
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Number of nodes in the sub-graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Maps a local node id back to the parent graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    #[inline]
    pub fn parent_of(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }

    /// The full local → parent mapping, indexed by local id.
    #[inline]
    pub fn parent_ids(&self) -> &[NodeId] {
        &self.to_parent
    }

    /// Consumes the sub-graph, returning the graph and the mapping.
    pub fn into_parts(self) -> (Graph, Vec<NodeId>) {
        (self.graph, self.to_parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        // component 0: 0-1-2 path; component 1: 3-4 edge
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|i| b.add_node(i as f64 * 10.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[3], n[4], 3.0).unwrap();
        b.build()
    }

    #[test]
    fn induced_keeps_weights_and_inner_edges() {
        let g = sample();
        let s = Subgraph::induced(&g, &[NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(s.node_count(), 3);
        // only edge 1-2 survives (3 has no partner inside).
        assert_eq!(s.graph().edge_count(), 1);
        assert_eq!(s.graph().total_edge_weight(), 2.0);
        assert_eq!(s.graph().node_weight(NodeId::new(0)), 10.0);
        assert_eq!(s.parent_of(NodeId::new(0)), NodeId::new(1));
        assert_eq!(s.parent_of(NodeId::new(2)), NodeId::new(3));
    }

    #[test]
    fn induced_ignores_duplicates() {
        let g = sample();
        let s = Subgraph::induced(&g, &[NodeId::new(0), NodeId::new(0), NodeId::new(1)]);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.graph().edge_count(), 1);
    }

    #[test]
    fn induced_preserves_offloadability() {
        let mut b = GraphBuilder::new();
        let a = b.add_pinned_node(1.0);
        let c = b.add_node(2.0);
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build();
        let s = Subgraph::induced(&g, &[a, c]);
        assert!(!s.graph().is_offloadable(NodeId::new(0)));
        assert!(s.graph().is_offloadable(NodeId::new(1)));
    }

    #[test]
    fn split_components_covers_everything() {
        let g = sample();
        let parts = Subgraph::split_components(&g);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].node_count(), 3);
        assert_eq!(parts[1].node_count(), 2);
        let total_nodes: usize = parts.iter().map(Subgraph::node_count).sum();
        assert_eq!(total_nodes, g.node_count());
        let total_edges: usize = parts.iter().map(|s| s.graph().edge_count()).sum();
        assert_eq!(total_edges, g.edge_count());
        for p in &parts {
            assert!(p.graph().is_connected());
        }
    }

    #[test]
    fn into_parts_returns_mapping() {
        let g = sample();
        let s = Subgraph::induced(&g, &[NodeId::new(4), NodeId::new(3)]);
        let (sub, map) = s.into_parts();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map, vec![NodeId::new(4), NodeId::new(3)]);
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let g = sample();
        let s = Subgraph::induced(&g, &[]);
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.graph().edge_count(), 0);
    }
}
