//! Compressed-sparse-row adjacency view.
//!
//! The spectral stage multiplies Laplacians against vectors thousands of
//! times; a CSR layout gives the eigensolver cache-friendly neighbour
//! scans without chasing per-node `Vec`s.

use crate::{Graph, NodeId};

/// Immutable CSR snapshot of a graph's weighted adjacency.
///
/// Row `i` lists `(neighbor, weight)` pairs for node `i`; each
/// undirected edge appears in both endpoint rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrAdjacency {
    /// An empty snapshot (zero nodes); useful as the initial state of a
    /// reusable buffer fed to [`rebuild_from`](CsrAdjacency::rebuild_from).
    pub fn empty() -> Self {
        CsrAdjacency {
            offsets: vec![0],
            columns: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Builds the CSR view of `g`.
    pub fn build(g: &Graph) -> Self {
        let mut csr = CsrAdjacency::empty();
        csr.rebuild_from(g);
        csr
    }

    /// Re-snapshots `g` into this CSR, reusing the existing backing
    /// storage. Repeated snapshots of similar-sized graphs stop
    /// allocating once capacity has grown to the high-water mark —
    /// this is what lets the spectral hot path rebuild its operator per
    /// cut without touching the heap.
    pub fn rebuild_from(&mut self, g: &Graph) {
        let n = g.node_count();
        self.offsets.clear();
        self.columns.clear();
        self.weights.clear();
        self.offsets.reserve(n + 1);
        self.columns.reserve(2 * g.edge_count());
        self.weights.reserve(2 * g.edge_count());
        self.offsets.push(0usize);
        for node in g.node_ids() {
            for nb in g.neighbors(node) {
                self.columns
                    .push(u32::try_from(nb.node.index()).expect("node index exceeds u32"));
                self.weights.push(g.edge_weight(nb.edge));
            }
            self.offsets.push(self.columns.len());
        }
    }

    /// Rebuilds this CSR as the **induced** sub-matrix selected by
    /// `view`, reusing the backing storage: once capacities have grown
    /// to the high-water mark, compacting further subsets performs no
    /// heap allocation. Entries keep the parent's row order, so the
    /// result is entry-for-entry identical to
    /// [`build`](CsrAdjacency::build) on the owned induced graph.
    pub fn rebuild_from_view(&mut self, view: &CsrView<'_>) {
        let n = view.node_count();
        self.offsets.clear();
        self.columns.clear();
        self.weights.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0usize);
        for i in 0..n {
            for (nb, w) in view.row(i) {
                self.columns.push(nb);
                self.weights.push(w);
            }
            self.offsets.push(self.columns.len());
        }
    }

    /// Number of rows (nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored entries (twice the edge count).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.columns.len()
    }

    /// Iterates the `(neighbor, weight)` pairs of row `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn row(&self, n: NodeId) -> impl ExactSizeIterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.offsets[n.index()], self.offsets[n.index() + 1]);
        self.columns[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&c, &w)| (NodeId::new(c as usize), w))
    }

    /// Sum of weights in row `n` (the weighted degree).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn row_sum(&self, n: NodeId) -> f64 {
        let (lo, hi) = (self.offsets[n.index()], self.offsets[n.index() + 1]);
        self.weights[lo..hi].iter().sum()
    }

    /// Multiplies the weighted adjacency matrix against `x`, writing
    /// into `y` (`y = A x`).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the node count.
    pub fn adjacency_mul(&self, x: &[f64], y: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(x.len(), n, "x length mismatch");
        assert_eq!(y.len(), n, "y length mismatch");
        mec_linalg::kernels::csr_matvec(&self.offsets, &self.columns, &self.weights, x, y);
    }

    /// Multiplies the graph **Laplacian** `L = D − A` against `x`,
    /// writing into `y` (`y = L x`). This is the kernel the paper's
    /// spectral stage spends its time in.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the node count.
    pub fn laplacian_mul(&self, x: &[f64], y: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(x.len(), n, "x length mismatch");
        assert_eq!(y.len(), n, "y length mismatch");
        mec_linalg::kernels::csr_laplacian_matvec(
            &self.offsets,
            &self.columns,
            &self.weights,
            x,
            0,
            y,
        );
    }

    /// Raw CSR parts `(offsets, columns, weights)`, e.g. for shipping
    /// rows to a parallel backend.
    pub fn as_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.offsets, &self.columns, &self.weights)
    }

    /// Restricts this CSR to the induced sub-matrix on `nodes` without
    /// copying any rows.
    ///
    /// `nodes[i]` is the parent index of local row `i`; `to_local` maps
    /// parent index → local index with [`CsrView::OUTSIDE`] marking
    /// nodes outside the subset. The caller owns both maps (typically
    /// pooled in a scratch arena) so a recursive partitioner descends
    /// the cut tree with **zero** per-level graph materialisation.
    ///
    /// # Panics
    ///
    /// Panics if `to_local` is shorter than the parent node count or an
    /// entry of `nodes` is out of bounds (debug assertions).
    pub fn view<'a>(&'a self, nodes: &'a [u32], to_local: &'a [u32]) -> CsrView<'a> {
        debug_assert!(to_local.len() >= self.node_count());
        debug_assert!(
            nodes
                .iter()
                .all(|&p| (p as usize) < self.node_count()
                    && to_local[p as usize] != CsrView::OUTSIDE)
        );
        CsrView {
            parent: self,
            nodes,
            to_local,
        }
    }
}

impl Default for CsrAdjacency {
    fn default() -> Self {
        Self::empty()
    }
}

/// Index-space restriction of a parent [`CsrAdjacency`] to a node
/// subset — the induced sub-graph's adjacency without building an
/// owned [`Graph`] or copying rows.
///
/// Edges leaving the subset are skipped on the fly; weighted degrees
/// count only in-subset edges, so [`laplacian_mul`](CsrView::laplacian_mul)
/// is exactly the induced sub-graph's Laplacian. Neighbour order within
/// a row follows the parent row, which itself follows the parent's
/// edge-insertion order — the same order an owned induced graph's CSR
/// would produce, keeping float accumulation bit-identical between the
/// two code paths.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    parent: &'a CsrAdjacency,
    /// Local row → parent row.
    nodes: &'a [u32],
    /// Parent row → local row, [`CsrView::OUTSIDE`] when excluded.
    to_local: &'a [u32],
}

impl<'a> CsrView<'a> {
    /// Sentinel marking a parent node as outside the subset in the
    /// `to_local` map.
    pub const OUTSIDE: u32 = u32::MAX;

    /// Number of rows (subset size).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The parent row backing local row `i`.
    #[inline]
    pub fn parent_of(&self, i: usize) -> u32 {
        self.nodes[i]
    }

    /// Iterates the in-subset `(local_neighbor, weight)` pairs of local
    /// row `i`, in parent-row order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let to_local = self.to_local;
        self.parent
            .row(NodeId::new(self.nodes[i] as usize))
            .filter_map(move |(nb, w)| {
                let l = to_local[nb.index()];
                (l != Self::OUTSIDE).then_some((l, w))
            })
    }

    /// Sum of in-subset weights of local row `i` (the induced weighted
    /// degree).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).map(|(_, w)| w).sum()
    }

    /// Multiplies the **induced** graph Laplacian against `x`, writing
    /// into `y` (`y = L|_S x`). Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the subset size.
    pub fn laplacian_mul(&self, x: &[f64], y: &mut [f64]) {
        let n = self.nodes.len();
        assert_eq!(x.len(), n, "x length mismatch");
        assert_eq!(y.len(), n, "y length mismatch");
        let (offsets, columns, weights) = self.parent.as_parts();
        for (i, &p) in self.nodes.iter().enumerate() {
            let (lo, hi) = (offsets[p as usize], offsets[p as usize + 1]);
            let mut acc = 0.0;
            let mut deg = 0.0;
            for (c, w) in columns[lo..hi].iter().zip(&weights[lo..hi]) {
                let l = self.to_local[*c as usize];
                if l != Self::OUTSIDE {
                    acc += w * x[l as usize];
                    deg += w;
                }
            }
            y[i] = deg * x[i] - acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[0], 3.0).unwrap();
        b.build()
    }

    #[test]
    fn csr_mirrors_adjacency() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.entry_count(), 6);
        let row0: Vec<_> = csr.row(NodeId::new(0)).collect();
        assert_eq!(row0.len(), 2);
        assert!(row0.contains(&(NodeId::new(1), 1.0)));
        assert!(row0.contains(&(NodeId::new(2), 3.0)));
        assert_eq!(csr.row_sum(NodeId::new(0)), 4.0);
    }

    #[test]
    fn adjacency_mul_matches_manual() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        csr.adjacency_mul(&x, &mut y);
        // A = [[0,1,3],[1,0,2],[3,2,0]]
        assert_eq!(y, [1.0 * 2.0 + 3.0 * 3.0, 1.0 + 2.0 * 3.0, 3.0 + 2.0 * 2.0]);
    }

    #[test]
    fn laplacian_mul_annihilates_constants() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [5.0; 3];
        let mut y = [1.0; 3];
        csr.laplacian_mul(&x, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12, "L * 1 must be 0, got {v}");
        }
    }

    #[test]
    fn laplacian_quadratic_form_equals_cut_identity() {
        // x^T L x = sum over edges w_uv (x_u - x_v)^2
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        csr.laplacian_mul(&x, &mut y);
        let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let direct: f64 = g
            .edges()
            .map(|e| e.weight * (x[e.source.index()] - x[e.target.index()]).powi(2))
            .sum();
        assert!((quad - direct).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_csr() {
        let g = GraphBuilder::new().build();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
        csr.adjacency_mul(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn mul_validates_dimensions() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let mut y = [0.0; 3];
        csr.laplacian_mul(&[1.0], &mut y);
    }

    #[test]
    fn rebuild_reuses_capacity_and_matches_build() {
        let g = triangle();
        let mut csr = CsrAdjacency::empty();
        csr.rebuild_from(&g);
        assert_eq!(csr, CsrAdjacency::build(&g));
        let cap = (csr.offsets.capacity(), csr.columns.capacity());
        csr.rebuild_from(&g);
        assert_eq!(csr, CsrAdjacency::build(&g));
        assert_eq!((csr.offsets.capacity(), csr.columns.capacity()), cap);
    }

    /// Path 0-1-2-3 restricted to {1, 2, 3}: the view's Laplacian must
    /// equal the induced path 1-2-3's Laplacian.
    #[test]
    fn view_laplacian_matches_induced_graph() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 5.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        let g = b.build();
        let csr = CsrAdjacency::build(&g);
        let nodes = [1u32, 2, 3];
        let mut to_local = vec![CsrView::OUTSIDE; 4];
        for (l, &p) in nodes.iter().enumerate() {
            to_local[p as usize] = l as u32;
        }
        let view = csr.view(&nodes, &to_local);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.parent_of(0), 1);
        // induced degrees: node 1 loses the weight-5 edge to node 0
        assert_eq!(view.row_sum(0), 2.0);
        assert_eq!(view.row_sum(1), 5.0);
        let x = [1.0, -2.0, 4.0];
        let mut y = [0.0; 3];
        view.laplacian_mul(&x, &mut y);
        // L|_S = [[2,-2,0],[-2,5,-3],[0,-3,3]]
        assert_eq!(y, [2.0 + 4.0, -2.0 - 10.0 - 12.0, 6.0 + 12.0]);
        // constants are annihilated by the induced Laplacian
        let mut z = [7.0; 3];
        view.laplacian_mul(&[3.0; 3], &mut z);
        for v in z {
            assert!(v.abs() < 1e-12);
        }
    }

    /// Compacting a view must reproduce the CSR of the owned induced
    /// graph entry-for-entry (same order, same floats).
    #[test]
    fn rebuild_from_view_matches_induced_build() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 5.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        b.add_edge(n[3], n[4], 1.0).unwrap();
        b.add_edge(n[1], n[4], 4.0).unwrap();
        let g = b.build();
        let csr = CsrAdjacency::build(&g);
        let nodes = [1u32, 2, 4];
        let mut to_local = vec![CsrView::OUTSIDE; 5];
        for (l, &p) in nodes.iter().enumerate() {
            to_local[p as usize] = l as u32;
        }
        let view = csr.view(&nodes, &to_local);
        let mut compact = CsrAdjacency::empty();
        compact.rebuild_from_view(&view);
        let ids: Vec<NodeId> = nodes.iter().map(|&p| NodeId::new(p as usize)).collect();
        let induced = crate::Subgraph::induced(&g, &ids);
        assert_eq!(compact, CsrAdjacency::build(induced.graph()));
        // and a second compaction into warmed storage allocates nothing new
        let cap = (compact.offsets.capacity(), compact.columns.capacity());
        compact.rebuild_from_view(&view);
        assert_eq!(
            (compact.offsets.capacity(), compact.columns.capacity()),
            cap
        );
    }

    #[test]
    fn view_rows_skip_outside_neighbors() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let nodes = [0u32, 1];
        let mut to_local = vec![CsrView::OUTSIDE; 3];
        to_local[0] = 0;
        to_local[1] = 1;
        let view = csr.view(&nodes, &to_local);
        let row0: Vec<_> = view.row(0).collect();
        assert_eq!(row0, vec![(1, 1.0)]);
    }
}
