//! Compressed-sparse-row adjacency view.
//!
//! The spectral stage multiplies Laplacians against vectors thousands of
//! times; a CSR layout gives the eigensolver cache-friendly neighbour
//! scans without chasing per-node `Vec`s.

use crate::{Graph, NodeId};

/// Immutable CSR snapshot of a graph's weighted adjacency.
///
/// Row `i` lists `(neighbor, weight)` pairs for node `i`; each
/// undirected edge appears in both endpoint rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrAdjacency {
    /// Builds the CSR view of `g`.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut columns = Vec::with_capacity(2 * g.edge_count());
        let mut weights = Vec::with_capacity(2 * g.edge_count());
        for node in g.node_ids() {
            for nb in g.neighbors(node) {
                columns.push(u32::try_from(nb.node.index()).expect("node index exceeds u32"));
                weights.push(g.edge_weight(nb.edge));
            }
            offsets.push(columns.len());
        }
        CsrAdjacency {
            offsets,
            columns,
            weights,
        }
    }

    /// Number of rows (nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored entries (twice the edge count).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.columns.len()
    }

    /// Iterates the `(neighbor, weight)` pairs of row `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn row(&self, n: NodeId) -> impl ExactSizeIterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.offsets[n.index()], self.offsets[n.index() + 1]);
        self.columns[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&c, &w)| (NodeId::new(c as usize), w))
    }

    /// Sum of weights in row `n` (the weighted degree).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn row_sum(&self, n: NodeId) -> f64 {
        let (lo, hi) = (self.offsets[n.index()], self.offsets[n.index() + 1]);
        self.weights[lo..hi].iter().sum()
    }

    /// Multiplies the weighted adjacency matrix against `x`, writing
    /// into `y` (`y = A x`).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the node count.
    pub fn adjacency_mul(&self, x: &[f64], y: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(x.len(), n, "x length mismatch");
        assert_eq!(y.len(), n, "y length mismatch");
        for i in 0..n {
            let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
            let mut acc = 0.0;
            for (c, w) in self.columns[lo..hi].iter().zip(&self.weights[lo..hi]) {
                acc += w * x[*c as usize];
            }
            y[i] = acc;
        }
    }

    /// Multiplies the graph **Laplacian** `L = D − A` against `x`,
    /// writing into `y` (`y = L x`). This is the kernel the paper's
    /// spectral stage spends its time in.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length differs from the node count.
    pub fn laplacian_mul(&self, x: &[f64], y: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(x.len(), n, "x length mismatch");
        assert_eq!(y.len(), n, "y length mismatch");
        for i in 0..n {
            let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
            let mut acc = 0.0;
            let mut deg = 0.0;
            for (c, w) in self.columns[lo..hi].iter().zip(&self.weights[lo..hi]) {
                acc += w * x[*c as usize];
                deg += w;
            }
            y[i] = deg * x[i] - acc;
        }
    }

    /// Raw CSR parts `(offsets, columns, weights)`, e.g. for shipping
    /// rows to a parallel backend.
    pub fn as_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.offsets, &self.columns, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[0], 3.0).unwrap();
        b.build()
    }

    #[test]
    fn csr_mirrors_adjacency() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.entry_count(), 6);
        let row0: Vec<_> = csr.row(NodeId::new(0)).collect();
        assert_eq!(row0.len(), 2);
        assert!(row0.contains(&(NodeId::new(1), 1.0)));
        assert!(row0.contains(&(NodeId::new(2), 3.0)));
        assert_eq!(csr.row_sum(NodeId::new(0)), 4.0);
    }

    #[test]
    fn adjacency_mul_matches_manual() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        csr.adjacency_mul(&x, &mut y);
        // A = [[0,1,3],[1,0,2],[3,2,0]]
        assert_eq!(y, [1.0 * 2.0 + 3.0 * 3.0, 1.0 + 2.0 * 3.0, 3.0 + 2.0 * 2.0]);
    }

    #[test]
    fn laplacian_mul_annihilates_constants() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [5.0; 3];
        let mut y = [1.0; 3];
        csr.laplacian_mul(&x, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12, "L * 1 must be 0, got {v}");
        }
    }

    #[test]
    fn laplacian_quadratic_form_equals_cut_identity() {
        // x^T L x = sum over edges w_uv (x_u - x_v)^2
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        csr.laplacian_mul(&x, &mut y);
        let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let direct: f64 = g
            .edges()
            .map(|e| e.weight * (x[e.source.index()] - x[e.target.index()]).powi(2))
            .sum();
        assert!((quad - direct).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_csr() {
        let g = GraphBuilder::new().build();
        let csr = CsrAdjacency::build(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
        csr.adjacency_mul(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn mul_validates_dimensions() {
        let g = triangle();
        let csr = CsrAdjacency::build(&g);
        let mut y = [0.0; 3];
        csr.laplacian_mul(&[1.0], &mut y);
    }
}
