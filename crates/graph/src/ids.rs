//! Index newtypes for nodes and edges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (function) inside one [`Graph`](crate::Graph).
///
/// Node ids are dense indices `0..node_count()`; they are only
/// meaningful relative to the graph that handed them out.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index this id wraps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of an undirected edge inside one [`Graph`](crate::Graph).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index this id wraps.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn edge_id_round_trips_index() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(9));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(5).to_string(), "e5");
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_rejects_overflow() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
