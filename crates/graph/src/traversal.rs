//! Breadth-first traversal utilities.
//!
//! Used by the max-flow baseline's terminal selection (farthest node
//! from the hub) and handy for workload diagnostics (eccentricity,
//! reachability).

use crate::{Graph, NodeId};
use std::collections::VecDeque;

impl Graph {
    /// Hop distances from `start` to every node; `None` for
    /// unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of bounds.
    pub fn bfs_distances(&self, start: NodeId) -> Vec<Option<u32>> {
        let n = self.node_count();
        assert!(start.index() < n, "start node out of bounds");
        let mut dist = vec![None; n];
        dist[start.index()] = Some(0);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for nb in self.neighbors(u) {
                if dist[nb.node.index()].is_none() {
                    dist[nb.node.index()] = Some(du + 1);
                    queue.push_back(nb.node);
                }
            }
        }
        dist
    }

    /// Nodes in BFS order from `start`; unreachable nodes appended
    /// after in id order, so the last entry is always a farthest (or
    /// disconnected) node.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of bounds.
    pub fn bfs_order(&self, start: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        assert!(start.index() < n, "start node out of bounds");
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        seen[start.index()] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for nb in self.neighbors(u) {
                if !seen[nb.node.index()] {
                    seen[nb.node.index()] = true;
                    queue.push_back(nb.node);
                }
            }
        }
        for i in 0..n {
            if !seen[i] {
                order.push(NodeId::new(i));
            }
        }
        order
    }

    /// Eccentricity of `start`: the largest hop distance to any
    /// reachable node (`0` for an isolated node).
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of bounds.
    pub fn eccentricity(&self, start: NodeId) -> u32 {
        self.bfs_distances(start)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_with_isolate() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 1.0).unwrap();
        b.add_edge(n[2], n[3], 1.0).unwrap();
        // node 4 isolated
        b.build()
    }

    #[test]
    fn distances_follow_hops() {
        let g = path_with_isolate();
        let d = g.bfs_distances(NodeId::new(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn order_covers_all_nodes_reachable_first() {
        let g = path_with_isolate();
        let order = g.bfs_order(NodeId::new(1));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId::new(1));
        assert_eq!(*order.last().unwrap(), NodeId::new(4)); // unreachable last
    }

    #[test]
    fn eccentricity_of_path_ends() {
        let g = path_with_isolate();
        assert_eq!(g.eccentricity(NodeId::new(0)), 3);
        assert_eq!(g.eccentricity(NodeId::new(1)), 2);
        assert_eq!(g.eccentricity(NodeId::new(4)), 0);
    }

    #[test]
    #[should_panic(expected = "start node out of bounds")]
    fn start_is_validated() {
        let g = path_with_isolate();
        let _ = g.bfs_distances(NodeId::new(9));
    }
}
