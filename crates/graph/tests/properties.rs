//! Property-based tests over random graphs: structural invariants that
//! must hold for any input the generators can produce.

use mec_graph::{
    Bipartition, ComponentLabeling, CsrAdjacency, GraphBuilder, NodeGrouping, NodeId,
    QuotientGraph, Side, Subgraph,
};
use proptest::prelude::*;

/// A random graph spec: node weights plus a set of candidate edges.
fn arb_graph() -> impl Strategy<Value = mec_graph::Graph> {
    (2usize..40).prop_flat_map(|n| {
        let weights = proptest::collection::vec(0.0f64..100.0, n);
        let edges = proptest::collection::vec(((0..n), (0..n), 0.1f64..50.0), 0..(n * 3).min(120));
        (weights, edges).prop_map(move |(ws, es)| {
            let mut b = GraphBuilder::new();
            let ids: Vec<_> = ws.iter().map(|&w| b.add_node(w)).collect();
            for (a, c, w) in es {
                if a != c {
                    b.add_edge(ids[a], ids[c], w).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn invariants_hold(g in arb_graph()) {
        prop_assert_eq!(g.check_invariants(), Ok(()));
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = g.node_ids().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        let wdeg_sum: f64 = g.node_ids().map(|n| g.weighted_degree(n)).sum();
        prop_assert!((wdeg_sum - 2.0 * g.total_edge_weight()).abs() < 1e-9);
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let c = ComponentLabeling::compute(&g);
        let sizes = c.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.node_count());
        prop_assert!(sizes.iter().all(|&s| s > 0));
        for e in g.edges() {
            prop_assert!(c.same_component(e.source, e.target));
        }
    }

    #[test]
    fn component_split_preserves_totals(g in arb_graph()) {
        let parts = Subgraph::split_components(&g);
        let nodes: usize = parts.iter().map(Subgraph::node_count).sum();
        let edges: usize = parts.iter().map(|p| p.graph().edge_count()).sum();
        let node_w: f64 = parts.iter().map(|p| p.graph().total_node_weight()).sum();
        let edge_w: f64 = parts.iter().map(|p| p.graph().total_edge_weight()).sum();
        prop_assert_eq!(nodes, g.node_count());
        prop_assert_eq!(edges, g.edge_count());
        prop_assert!((node_w - g.total_node_weight()).abs() < 1e-9);
        prop_assert!((edge_w - g.total_edge_weight()).abs() < 1e-9);
        for p in &parts {
            prop_assert!(p.graph().is_connected());
        }
    }

    #[test]
    fn cut_weight_plus_uncut_weight_is_total(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 40)) {
        let p = Bipartition::from_fn(g.node_count(), |i| {
            if mask[i % mask.len()] { Side::Local } else { Side::Remote }
        });
        let cut = p.cut_weight(&g);
        let uncut: f64 = g
            .edges()
            .filter(|e| p.side(e.source) == p.side(e.target))
            .map(|e| e.weight)
            .sum();
        prop_assert!((cut + uncut - g.total_edge_weight()).abs() < 1e-9);
        // complement partition has the same cut weight
        let comp = Bipartition::from_fn(g.node_count(), |i| p.side(NodeId::new(i)).flipped());
        prop_assert!((comp.cut_weight(&g) - cut).abs() < 1e-12);
    }

    #[test]
    fn quotient_conserves_weight(g in arb_graph(), groups in proptest::collection::vec(0usize..5, 40)) {
        let raw: Vec<usize> = (0..g.node_count()).map(|i| groups[i % groups.len()]).collect();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&raw));
        prop_assert!((q.graph().total_node_weight() - g.total_node_weight()).abs() < 1e-9);
        prop_assert!(
            (q.graph().total_edge_weight() + q.absorbed_weight() - g.total_edge_weight()).abs()
                < 1e-9
        );
        prop_assert_eq!(q.graph().check_invariants(), Ok(()));
    }

    #[test]
    fn quotient_expand_preserves_cut_weight(g in arb_graph(), groups in proptest::collection::vec(0usize..4, 40), mask in proptest::collection::vec(any::<bool>(), 8)) {
        let raw: Vec<usize> = (0..g.node_count()).map(|i| groups[i % groups.len()]).collect();
        let q = QuotientGraph::contract(&g, NodeGrouping::from_raw(&raw));
        let qcut = Bipartition::from_fn(q.graph().node_count(), |i| {
            if mask[i % mask.len()] { Side::Local } else { Side::Remote }
        });
        let expanded = q.expand(&qcut);
        prop_assert!((expanded.cut_weight(&g) - qcut.cut_weight(q.graph())).abs() < 1e-9);
    }

    #[test]
    fn csr_laplacian_is_psd_on_samples(g in arb_graph(), xs in proptest::collection::vec(-10.0f64..10.0, 40)) {
        let csr = CsrAdjacency::build(&g);
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| xs[i % xs.len()]).collect();
        let mut y = vec![0.0; n];
        csr.laplacian_mul(&x, &mut y);
        let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert!(quad >= -1e-9, "Laplacian quadratic form must be non-negative, got {quad}");
    }

    #[test]
    fn induced_on_all_nodes_is_isomorphic(g in arb_graph()) {
        let all: Vec<_> = g.node_ids().collect();
        let s = Subgraph::induced(&g, &all);
        prop_assert_eq!(s.node_count(), g.node_count());
        prop_assert_eq!(s.graph().edge_count(), g.edge_count());
        prop_assert!((s.graph().total_edge_weight() - g.total_edge_weight()).abs() < 1e-9);
    }

    #[test]
    fn bfs_distances_are_consistent(g in arb_graph()) {
        let start = NodeId::new(0);
        let dist = g.bfs_distances(start);
        prop_assert_eq!(dist[0], Some(0));
        // triangle inequality over edges: |d(u) - d(v)| <= 1 when both reachable
        for e in g.edges() {
            if let (Some(du), Some(dv)) = (dist[e.source.index()], dist[e.target.index()]) {
                prop_assert!(du.abs_diff(dv) <= 1, "edge spans distance gap > 1");
            }
            // an edge never connects reachable and unreachable nodes
            prop_assert_eq!(
                dist[e.source.index()].is_some(),
                dist[e.target.index()].is_some()
            );
        }
        // eccentricity equals the max finite distance
        let max_d = dist.iter().flatten().copied().max().unwrap_or(0);
        prop_assert_eq!(g.eccentricity(start), max_d);
        // bfs_order covers every node exactly once
        let order = g.bfs_order(start);
        prop_assert_eq!(order.len(), g.node_count());
        let mut seen = vec![false; g.node_count()];
        for n in order {
            prop_assert!(!seen[n.index()]);
            seen[n.index()] = true;
        }
    }

    #[test]
    fn modularity_is_bounded_and_trivial_grouping_scores_zero(g in arb_graph(), groups in proptest::collection::vec(0usize..4, 40)) {
        if g.edge_count() == 0 {
            return Ok(());
        }
        let raw: Vec<usize> = (0..g.node_count()).map(|i| groups[i % groups.len()]).collect();
        let q = g.modularity(&NodeGrouping::from_raw(&raw));
        prop_assert!((-1.0..=1.0).contains(&q), "modularity {q} out of range");
        let everything = NodeGrouping::from_raw(&vec![0usize; g.node_count()]);
        prop_assert!(g.modularity(&everything).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip(g in arb_graph()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: mec_graph::Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }
}
