//! A small text format for describing applications in files.
//!
//! Real adopters profile their app once and keep the result under
//! version control; this format is that artefact. Line-based, `#`
//! comments, whitespace-insensitive:
//!
//! ```text
//! app camera-app
//! component pipeline
//!   fn capture 2.0 sensor
//!   fn denoise 35 pure
//! component ui
//!   fn render 5 ui
//! call capture -> denoise 120
//! call denoise -> render 8
//! ```
//!
//! Function kinds: `pure`, `sensor`, `io`, `ui`. Calls may appear after
//! all declarations and reference functions by name (names must be
//! unique app-wide).

use crate::{AppError, Application, ApplicationBuilder, ComponentId, FunctionId, FunctionKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors raised while parsing an application spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for SpecParseError {}

impl From<(usize, AppError)> for SpecParseError {
    fn from((line, e): (usize, AppError)) -> Self {
        SpecParseError {
            line,
            message: e.to_string(),
        }
    }
}

fn parse_kind(s: &str) -> Option<FunctionKind> {
    match s {
        "pure" => Some(FunctionKind::Pure),
        "sensor" => Some(FunctionKind::SensorRead),
        "io" => Some(FunctionKind::LocalIo),
        "ui" => Some(FunctionKind::UserInterface),
        _ => None,
    }
}

fn kind_token(k: FunctionKind) -> &'static str {
    match k {
        FunctionKind::Pure => "pure",
        FunctionKind::SensorRead => "sensor",
        FunctionKind::LocalIo => "io",
        FunctionKind::UserInterface => "ui",
    }
}

impl Application {
    /// Parses an application from the text spec format.
    ///
    /// # Errors
    ///
    /// [`SpecParseError`] pointing at the first malformed line:
    /// unknown directive, duplicate or unknown function name, function
    /// outside a component, malformed number, invalid call.
    pub fn from_spec_str(input: &str) -> Result<Application, SpecParseError> {
        let mut builder: Option<ApplicationBuilder> = None;
        let mut current: Option<ComponentId> = None;
        let mut by_name: HashMap<String, FunctionId> = HashMap::new();
        let err = |line: usize, message: &str| SpecParseError {
            line,
            message: message.to_string(),
        };

        for (idx, raw) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens[0] {
                "app" => {
                    if builder.is_some() {
                        return Err(err(line_no, "duplicate app directive"));
                    }
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "app needs a name"))?;
                    builder = Some(ApplicationBuilder::new(*name));
                }
                "component" => {
                    let b = builder
                        .as_mut()
                        .ok_or_else(|| err(line_no, "component before app directive"))?;
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "component needs a name"))?;
                    current = Some(b.begin_component(*name));
                }
                "fn" => {
                    let b = builder
                        .as_mut()
                        .ok_or_else(|| err(line_no, "fn before app directive"))?;
                    let comp = current.ok_or_else(|| err(line_no, "fn outside of a component"))?;
                    let [_, name, weight, kind] = tokens[..] else {
                        return Err(err(line_no, "expected: fn <name> <weight> <kind>"));
                    };
                    if by_name.contains_key(name) {
                        return Err(err(line_no, &format!("duplicate function name {name}")));
                    }
                    let w: f64 = weight
                        .parse()
                        .map_err(|_| err(line_no, &format!("bad weight {weight}")))?;
                    let k = parse_kind(kind)
                        .ok_or_else(|| err(line_no, &format!("unknown kind {kind}")))?;
                    let id = b.add_function(comp, name, w, k).map_err(|e| (line_no, e))?;
                    by_name.insert(name.to_string(), id);
                }
                "call" => {
                    let b = builder
                        .as_mut()
                        .ok_or_else(|| err(line_no, "call before app directive"))?;
                    let [_, caller, arrow, callee, volume] = tokens[..] else {
                        return Err(err(line_no, "expected: call <caller> -> <callee> <volume>"));
                    };
                    if arrow != "->" {
                        return Err(err(line_no, "expected '->' between caller and callee"));
                    }
                    let &from = by_name
                        .get(caller)
                        .ok_or_else(|| err(line_no, &format!("unknown function {caller}")))?;
                    let &to = by_name
                        .get(callee)
                        .ok_or_else(|| err(line_no, &format!("unknown function {callee}")))?;
                    let v: f64 = volume
                        .parse()
                        .map_err(|_| err(line_no, &format!("bad volume {volume}")))?;
                    b.add_call(from, to, v).map_err(|e| (line_no, e))?;
                }
                other => return Err(err(line_no, &format!("unknown directive {other}"))),
            }
        }
        builder
            .map(ApplicationBuilder::build)
            .ok_or_else(|| err(1, "empty spec: missing app directive"))
    }

    /// Renders the application back into the spec format. Parsing the
    /// output reproduces the application exactly.
    pub fn to_spec_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "app {}", self.name());
        for c in 0..self.component_count() {
            let cid = ComponentId::from_index(c);
            let _ = writeln!(out, "component {}", self.component_name(cid));
            for (_, f) in self.functions().filter(|(_, f)| f.component == cid) {
                let _ = writeln!(
                    out,
                    "  fn {} {} {}",
                    f.name,
                    f.compute_weight,
                    kind_token(f.kind)
                );
            }
        }
        for call in self.calls() {
            let _ = writeln!(
                out,
                "call {} -> {} {}",
                self.function(call.caller).name,
                self.function(call.callee).name,
                call.data_volume
            );
        }
        out
    }

    /// Renders the application's call structure as Graphviz DOT;
    /// unoffloadable functions are boxes, components are subgraph
    /// clusters.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        for c in 0..self.component_count() {
            let cid = ComponentId::from_index(c);
            let _ = writeln!(out, "  subgraph cluster_{c} {{");
            let _ = writeln!(out, "    label=\"{}\";", self.component_name(cid));
            for (id, f) in self.functions().filter(|(_, f)| f.component == cid) {
                let shape = if f.kind.is_offloadable() {
                    "ellipse"
                } else {
                    "box"
                };
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}:{:.1}\", shape={}];",
                    id.index(),
                    f.name,
                    f.compute_weight,
                    shape
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for call in self.calls() {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{:.1}\"];",
                call.caller.index(),
                call.callee.index(),
                call.data_volume
            );
        }
        out.push_str("}\n");
        out
    }
}

impl ComponentId {
    /// Crate-internal: mints an id from a dense index.
    pub(crate) fn from_index(i: usize) -> Self {
        // ComponentIds are dense, created in declaration order.
        Self::from_index_impl(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny camera app
app camera
component pipeline
  fn capture 2.0 sensor
  fn detect 80 pure
component ui
  fn render 5 ui
call capture -> detect 120
call detect -> render 1.5
";

    #[test]
    fn parses_the_sample() {
        let app = Application::from_spec_str(SAMPLE).unwrap();
        assert_eq!(app.name(), "camera");
        assert_eq!(app.component_count(), 2);
        assert_eq!(app.function_count(), 3);
        assert_eq!(app.call_count(), 2);
        let ex = app.extract();
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.total_edge_weight(), 121.5);
        assert_eq!(app.pinned_functions().count(), 2);
    }

    #[test]
    fn round_trips_through_spec_format() {
        let app = Application::from_spec_str(SAMPLE).unwrap();
        let rendered = app.to_spec_string();
        let back = Application::from_spec_str(&rendered).unwrap();
        assert_eq!(app, back);
    }

    #[test]
    fn synthetic_apps_round_trip_too() {
        let app = crate::SyntheticAppSpec::new("synth", 2, 10).seed(4).build();
        let back = Application::from_spec_str(&app.to_spec_string()).unwrap();
        assert_eq!(app, back);
    }

    #[test]
    fn error_positions_are_reported() {
        let bad = "app x\ncomponent c\n  fn a 1.0 pure\n  fn a 2.0 pure\n";
        let e = Application::from_spec_str(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate"));

        let e2 = Application::from_spec_str("component c\n").unwrap_err();
        assert_eq!(e2.line, 1);
        assert!(e2.to_string().contains("before app"));

        let e3 = Application::from_spec_str("app x\ncall a -> b 1\n").unwrap_err();
        assert_eq!(e3.line, 2);
        assert!(e3.message.contains("unknown function"));

        let e4 = Application::from_spec_str("app x\ncomponent c\n  fn f nope pure\n").unwrap_err();
        assert!(e4.message.contains("bad weight"));

        let e5 = Application::from_spec_str("").unwrap_err();
        assert!(e5.message.contains("empty spec"));

        let e6 = Application::from_spec_str("app x\nfrobnicate\n").unwrap_err();
        assert!(e6.message.contains("unknown directive"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = "\n# comment\napp x # trailing\n\ncomponent c\n  fn f 1 pure # ok\n";
        let app = Application::from_spec_str(spec).unwrap();
        assert_eq!(app.function_count(), 1);
    }

    #[test]
    fn dot_export_contains_clusters_and_calls() {
        let app = Application::from_spec_str(SAMPLE).unwrap();
        let dot = app.to_dot();
        assert!(dot.contains("digraph \"camera\""));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("shape=box")); // pinned functions
        assert!(dot.contains("->"));
    }
}
