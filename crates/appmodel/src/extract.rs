//! The "Soot step": application → function data-flow graph.

use crate::{Application, FunctionId};
use mec_graph::{Graph, GraphBuilder, NodeId};

/// The function data-flow graph of an application, with the mappings
/// the downstream pipeline needs.
///
/// All functions appear as nodes (including unoffloadable ones — the
/// compression stage removes them; keeping them here lets callers
/// account for their mandatory local cost). Mutual calls are folded
/// into one undirected edge with summed data volume.
#[derive(Debug, Clone)]
pub struct ExtractedGraph {
    /// The weighted undirected function data-flow graph (paper Fig. 1).
    pub graph: Graph,
    /// Component id of each graph node (indexed by node id) — the
    /// boundary the compression stage splits on.
    pub component_of: Vec<usize>,
    /// Graph node of each application function, indexed by function id.
    node_of: Vec<NodeId>,
}

impl ExtractedGraph {
    /// Graph node corresponding to application function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` does not belong to the extracted application.
    #[inline]
    pub fn node_of(&self, f: FunctionId) -> NodeId {
        self.node_of[f.index()]
    }

    /// Application function corresponding to graph node `n` (the
    /// extraction is a bijection: nodes are created in function order).
    #[inline]
    pub fn function_of(&self, n: NodeId) -> FunctionId {
        debug_assert!(n.index() < self.node_of.len());
        FunctionId::from_index(n.index())
    }
}

impl Application {
    /// Extracts the function data-flow graph (the paper's Soot step).
    ///
    /// Every function becomes a node carrying its computation weight
    /// and offloadability; every call relationship contributes its data
    /// volume to the undirected edge between caller and callee
    /// (parallel calls sum).
    pub fn extract(&self) -> ExtractedGraph {
        let mut b = GraphBuilder::with_capacity(self.function_count(), self.call_count());
        let mut node_of = Vec::with_capacity(self.function_count());
        let mut component_of = Vec::with_capacity(self.function_count());
        for (_, f) in self.functions() {
            let node = b
                .try_add_node(f.compute_weight, f.kind.is_offloadable())
                .expect("application weights are validated");
            node_of.push(node);
            component_of.push(f.component.index());
        }
        for call in self.calls() {
            b.add_edge(
                node_of[call.caller.index()],
                node_of[call.callee.index()],
                call.data_volume,
            )
            .expect("call endpoints validated, parallel edges sum");
        }
        ExtractedGraph {
            graph: b.build(),
            component_of,
            node_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{ApplicationBuilder, FunctionKind};
    use mec_graph::NodeId;

    #[test]
    fn figure1_example_extracts_correctly() {
        // Fig. 1: f1 calls f2 (10) and f3 (8); f2 calls f4 (12), f5 (7).
        let mut b = ApplicationBuilder::new("fig1");
        let c = b.begin_component("main");
        let f1 = b.add_function(c, "f1", 1.0, FunctionKind::Pure).unwrap();
        let f2 = b.add_function(c, "f2", 1.0, FunctionKind::Pure).unwrap();
        let f3 = b.add_function(c, "f3", 1.0, FunctionKind::Pure).unwrap();
        let f4 = b.add_function(c, "f4", 1.0, FunctionKind::Pure).unwrap();
        let f5 = b.add_function(c, "f5", 1.0, FunctionKind::Pure).unwrap();
        b.add_call(f1, f2, 10.0).unwrap();
        b.add_call(f1, f3, 8.0).unwrap();
        b.add_call(f2, f4, 12.0).unwrap();
        b.add_call(f2, f5, 7.0).unwrap();
        let ex = b.build().extract();
        assert_eq!(ex.graph.node_count(), 5);
        assert_eq!(ex.graph.edge_count(), 4);
        assert_eq!(ex.graph.total_edge_weight(), 37.0);
        let n1 = ex.node_of(f1);
        let n2 = ex.node_of(f2);
        let e = ex.graph.edge_between(n1, n2).unwrap();
        assert_eq!(ex.graph.edge_weight(e), 10.0);
    }

    #[test]
    fn mutual_calls_fold_into_one_edge() {
        let mut b = ApplicationBuilder::new("x");
        let c = b.begin_component("c");
        let f = b.add_function(c, "f", 1.0, FunctionKind::Pure).unwrap();
        let g = b.add_function(c, "g", 1.0, FunctionKind::Pure).unwrap();
        b.add_call(f, g, 3.0).unwrap();
        b.add_call(g, f, 4.0).unwrap();
        let ex = b.build().extract();
        assert_eq!(ex.graph.edge_count(), 1);
        assert_eq!(ex.graph.total_edge_weight(), 7.0);
    }

    #[test]
    fn offloadability_and_components_carry_over() {
        let mut b = ApplicationBuilder::new("x");
        let c0 = b.begin_component("core");
        let c1 = b.begin_component("io");
        let f = b.add_function(c0, "f", 2.0, FunctionKind::Pure).unwrap();
        let g = b.add_function(c1, "g", 3.0, FunctionKind::LocalIo).unwrap();
        b.add_call(f, g, 1.0).unwrap();
        let ex = b.build().extract();
        assert!(ex.graph.is_offloadable(ex.node_of(f)));
        assert!(!ex.graph.is_offloadable(ex.node_of(g)));
        assert_eq!(ex.component_of, vec![0, 1]);
        assert_eq!(ex.graph.node_weight(ex.node_of(g)), 3.0);
    }

    #[test]
    fn node_function_mapping_is_bijective() {
        let mut b = ApplicationBuilder::new("x");
        let c = b.begin_component("c");
        let ids: Vec<_> = (0..6)
            .map(|i| {
                b.add_function(c, format!("f{i}"), 1.0, FunctionKind::Pure)
                    .unwrap()
            })
            .collect();
        let ex = b.build().extract();
        for (i, f) in ids.iter().enumerate() {
            assert_eq!(ex.node_of(*f), NodeId::new(i));
            assert_eq!(ex.function_of(NodeId::new(i)), *f);
        }
    }
}
