//! Synthetic mobile-application model and function data-flow graph
//! extraction — the workspace's stand-in for Soot.
//!
//! The paper derives each application's function data-flow graph from
//! compiled bytecode with Soot (§II): functions become weighted nodes,
//! calling relationships become weighted edges (Fig. 1), and functions
//! that touch sensors or local I/O are excluded as *unoffloadable*.
//! The offloading algorithms only ever see that graph, so this crate
//! substitutes the bytecode analysis with an explicit application
//! model:
//!
//! - [`Application`] — components containing [`Function`]s connected by
//!   [`CallSite`]s carrying data volumes;
//! - [`FunctionKind`] — why a function may be pinned to the device;
//! - [`extract`](Application::extract) — the "Soot step": produces the
//!   [`mec_graph::Graph`] plus the component assignment that the
//!   compression stage splits on;
//! - [`SyntheticAppSpec`] — seeded generators for realistic app shapes
//!   (pipelines, event handlers, hot loops) used by examples and
//!   benchmarks.
//!
//! # Example
//!
//! ```
//! use mec_app::{ApplicationBuilder, FunctionKind};
//!
//! # fn main() -> Result<(), mec_app::AppError> {
//! let mut b = ApplicationBuilder::new("camera-app");
//! let ui = b.begin_component("ui");
//! let capture = b.add_function(ui, "capture", 2.0, FunctionKind::SensorRead)?;
//! let encode = b.add_function(ui, "encode", 40.0, FunctionKind::Pure)?;
//! b.add_call(capture, encode, 1024.0)?;
//! let app = b.build();
//!
//! let extracted = app.extract();
//! assert_eq!(extracted.graph.node_count(), 2);
//! assert!(!extracted.graph.is_offloadable(extracted.node_of(capture)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extract;
mod model;
mod spec;
mod synth;

pub use extract::ExtractedGraph;
pub use model::{
    AppError, Application, ApplicationBuilder, CallSite, ComponentId, Function, FunctionId,
    FunctionKind,
};
pub use spec::SpecParseError;
pub use synth::{CouplingProfile, SyntheticAppSpec};
