//! The application model: components, functions, call sites.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Identifier of a function within an [`Application`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct FunctionId(u32);

impl FunctionId {
    /// Dense index of this function.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Crate-internal: mints an id from a dense index (extraction keeps
    /// function ids equal to graph node indices).
    #[inline]
    pub(crate) fn from_index(i: usize) -> Self {
        FunctionId(u32::try_from(i).expect("function index exceeds u32"))
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a component within an [`Application`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Dense index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Crate-internal raw constructor (components are dense ids).
    #[inline]
    pub(crate) fn from_index_impl(i: usize) -> Self {
        ComponentId(u32::try_from(i).expect("component index exceeds u32"))
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Why a function can or cannot leave the device.
///
/// Anything other than [`Pure`](FunctionKind::Pure) pins the function:
/// the paper's "unoffloaded functions" are those whose "execution
/// highly depends on local data interaction like sensors' data reading,
/// local I/O devices accessing" (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FunctionKind {
    /// Pure computation over its inputs — freely offloadable.
    #[default]
    Pure,
    /// Reads hardware sensors (camera, GPS, accelerometer).
    SensorRead,
    /// Accesses local storage or device I/O.
    LocalIo,
    /// Drives the user interface; must render on the device.
    UserInterface,
}

impl FunctionKind {
    /// `true` when functions of this kind may run on the edge server.
    #[inline]
    pub fn is_offloadable(self) -> bool {
        matches!(self, FunctionKind::Pure)
    }
}

/// One function of the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name (e.g. `"decode_frame"`).
    pub name: String,
    /// Computation amount (same unit as the MEC model's capacities).
    pub compute_weight: f64,
    /// Offloadability class.
    pub kind: FunctionKind,
    /// Owning component.
    pub component: ComponentId,
}

/// A directed call with the volume of data it moves.
///
/// Extraction folds mutual calls into one undirected edge by summing
/// volumes, exactly as the paper's Fig. 1 aggregates `|a|`, `|b|` …
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallSite {
    /// Calling function.
    pub caller: FunctionId,
    /// Called function.
    pub callee: FunctionId,
    /// Data exchanged by this call relationship.
    pub data_volume: f64,
}

/// Errors raised while assembling an [`Application`].
#[derive(Debug, Clone, PartialEq)]
pub enum AppError {
    /// A call references a function that was never declared.
    UnknownFunction(FunctionId),
    /// A function was attached to an undeclared component.
    UnknownComponent(ComponentId),
    /// A function calls itself; self-communication is meaningless in
    /// the data-flow graph.
    SelfCall(FunctionId),
    /// A negative or non-finite weight / volume was supplied.
    InvalidWeight(f64),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            AppError::UnknownComponent(id) => write!(f, "unknown component {id}"),
            AppError::SelfCall(id) => write!(f, "function {id} cannot call itself"),
            AppError::InvalidWeight(w) => write!(f, "invalid weight {w}"),
        }
    }
}

impl Error for AppError {}

/// A mobile application: named components, functions, and calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    component_names: Vec<String>,
    functions: Vec<Function>,
    calls: Vec<CallSite>,
}

impl Application {
    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared components.
    pub fn component_count(&self) -> usize {
        self.component_names.len()
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Number of call sites.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Name of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn component_name(&self, c: ComponentId) -> &str {
        &self.component_names[c.index()]
    }

    /// The function record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// Iterates all functions with their ids.
    pub fn functions(&self) -> impl ExactSizeIterator<Item = (FunctionId, &Function)> + '_ {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FunctionId(i as u32), f))
    }

    /// Iterates all call sites.
    pub fn calls(&self) -> impl ExactSizeIterator<Item = &CallSite> + '_ {
        self.calls.iter()
    }

    /// Functions that may not be offloaded.
    pub fn pinned_functions(&self) -> impl Iterator<Item = FunctionId> + '_ {
        self.functions().filter_map(|(id, f)| {
            if f.kind.is_offloadable() {
                None
            } else {
                Some(id)
            }
        })
    }
}

/// Incremental builder for [`Application`].
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    component_names: Vec<String>,
    functions: Vec<Function>,
    calls: Vec<CallSite>,
}

impl ApplicationBuilder {
    /// Starts an application named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            component_names: Vec::new(),
            functions: Vec::new(),
            calls: Vec::new(),
        }
    }

    /// Declares a component and returns its id.
    pub fn begin_component(&mut self, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(
            u32::try_from(self.component_names.len()).expect("component count exceeds u32"),
        );
        self.component_names.push(name.into());
        id
    }

    /// Declares a function inside `component`.
    ///
    /// # Errors
    ///
    /// - [`AppError::UnknownComponent`] for an undeclared component;
    /// - [`AppError::InvalidWeight`] for a negative or non-finite
    ///   weight.
    pub fn add_function(
        &mut self,
        component: ComponentId,
        name: impl Into<String>,
        compute_weight: f64,
        kind: FunctionKind,
    ) -> Result<FunctionId, AppError> {
        if component.index() >= self.component_names.len() {
            return Err(AppError::UnknownComponent(component));
        }
        if !compute_weight.is_finite() || compute_weight < 0.0 {
            return Err(AppError::InvalidWeight(compute_weight));
        }
        let id =
            FunctionId(u32::try_from(self.functions.len()).expect("function count exceeds u32"));
        self.functions.push(Function {
            name: name.into(),
            compute_weight,
            kind,
            component,
        });
        Ok(id)
    }

    /// Records that `caller` exchanges `data_volume` units of data with
    /// `callee`.
    ///
    /// # Errors
    ///
    /// - [`AppError::UnknownFunction`] for undeclared endpoints;
    /// - [`AppError::SelfCall`] when `caller == callee`;
    /// - [`AppError::InvalidWeight`] for a negative or non-finite
    ///   volume.
    pub fn add_call(
        &mut self,
        caller: FunctionId,
        callee: FunctionId,
        data_volume: f64,
    ) -> Result<(), AppError> {
        if caller.index() >= self.functions.len() {
            return Err(AppError::UnknownFunction(caller));
        }
        if callee.index() >= self.functions.len() {
            return Err(AppError::UnknownFunction(callee));
        }
        if caller == callee {
            return Err(AppError::SelfCall(caller));
        }
        if !data_volume.is_finite() || data_volume < 0.0 {
            return Err(AppError::InvalidWeight(data_volume));
        }
        self.calls.push(CallSite {
            caller,
            callee,
            data_volume,
        });
        Ok(())
    }

    /// Finalises the application.
    pub fn build(self) -> Application {
        Application {
            name: self.name,
            component_names: self.component_names,
            functions: self.functions,
            calls: self.calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Application {
        let mut b = ApplicationBuilder::new("app");
        let c0 = b.begin_component("core");
        let c1 = b.begin_component("ui");
        let f0 = b.add_function(c0, "main", 1.0, FunctionKind::Pure).unwrap();
        let f1 = b
            .add_function(c0, "work", 10.0, FunctionKind::Pure)
            .unwrap();
        let f2 = b
            .add_function(c1, "render", 3.0, FunctionKind::UserInterface)
            .unwrap();
        b.add_call(f0, f1, 5.0).unwrap();
        b.add_call(f1, f2, 2.0).unwrap();
        b.build()
    }

    #[test]
    fn builder_counts() {
        let app = sample();
        assert_eq!(app.name(), "app");
        assert_eq!(app.component_count(), 2);
        assert_eq!(app.function_count(), 3);
        assert_eq!(app.call_count(), 2);
        assert_eq!(app.component_name(ComponentId(1)), "ui");
    }

    #[test]
    fn function_records_are_retrievable() {
        let app = sample();
        let f = app.function(FunctionId(1));
        assert_eq!(f.name, "work");
        assert_eq!(f.compute_weight, 10.0);
        assert_eq!(f.component, ComponentId(0));
    }

    #[test]
    fn pinned_functions_are_non_pure() {
        let app = sample();
        let pinned: Vec<_> = app.pinned_functions().collect();
        assert_eq!(pinned, vec![FunctionId(2)]);
        assert!(FunctionKind::Pure.is_offloadable());
        assert!(!FunctionKind::SensorRead.is_offloadable());
        assert!(!FunctionKind::LocalIo.is_offloadable());
        assert!(!FunctionKind::UserInterface.is_offloadable());
    }

    #[test]
    fn builder_validates_components_and_functions() {
        let mut b = ApplicationBuilder::new("x");
        assert_eq!(
            b.add_function(ComponentId(0), "f", 1.0, FunctionKind::Pure),
            Err(AppError::UnknownComponent(ComponentId(0)))
        );
        let c = b.begin_component("c");
        assert_eq!(
            b.add_function(c, "f", -1.0, FunctionKind::Pure),
            Err(AppError::InvalidWeight(-1.0))
        );
        let f = b.add_function(c, "f", 1.0, FunctionKind::Pure).unwrap();
        assert_eq!(b.add_call(f, f, 1.0), Err(AppError::SelfCall(f)));
        assert_eq!(
            b.add_call(f, FunctionId(9), 1.0),
            Err(AppError::UnknownFunction(FunctionId(9)))
        );
        assert_eq!(b.add_call(f, f, f64::NAN), Err(AppError::SelfCall(f)));
    }

    #[test]
    fn call_volume_validation() {
        let mut b = ApplicationBuilder::new("x");
        let c = b.begin_component("c");
        let f = b.add_function(c, "f", 1.0, FunctionKind::Pure).unwrap();
        let g = b.add_function(c, "g", 1.0, FunctionKind::Pure).unwrap();
        assert_eq!(b.add_call(f, g, -3.0), Err(AppError::InvalidWeight(-3.0)));
        assert!(b.add_call(f, g, 0.0).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let app = sample();
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(app, back);
    }

    #[test]
    fn display_impls() {
        assert_eq!(FunctionId(3).to_string(), "f3");
        assert_eq!(ComponentId(1).to_string(), "c1");
        assert!(AppError::SelfCall(FunctionId(1)).to_string().contains("f1"));
    }
}
